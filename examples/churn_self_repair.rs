//! Churn and self-repair (§3.1.1): peers join and crash under a Poisson
//! process while the K-nary tree runs periodic soft-state maintenance and
//! Chord runs stabilization; lookups keep succeeding through successor
//! lists, and the tree converges back to a consistent state.
//!
//! ```text
//! cargo run --release --example churn_self_repair
//! ```

use proxbal::chord::{ChordNetwork, RoutingState};
use proxbal::ktree::KTree;
use proxbal::sim::churn::{run_churn, ChurnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);

    let mut net = ChordNetwork::new();
    for _ in 0..128 {
        net.join_peer(5, &mut rng);
    }
    let mut tree = KTree::build(&net, 2);
    let mut routing = RoutingState::build(&net);

    println!(
        "start: {} peers, {} virtual servers, tree of {} KT nodes (height {})",
        net.alive_peers().len(),
        net.alive_vs_count(),
        tree.len(),
        tree.height()
    );

    let cfg = ChurnConfig {
        join_rate: 0.08,
        crash_rate: 0.08,
        vs_per_join: 5,
        maintenance_interval: 10,
        stabilize_interval: 10,
        duration: 2_000,
    };
    let stats = run_churn(&mut net, &mut tree, &mut routing, &cfg, &mut rng);

    println!(
        "churn: {} joins, {} crashes over {} time units",
        stats.joins, stats.crashes, cfg.duration
    );
    println!(
        "tree maintenance: {} rounds, {} total mutations (grow/prune/replant)",
        stats.maintenance_rounds, stats.tree_mutations
    );
    println!(
        "lookups during churn: {} sampled, {:.1}% reached the correct owner",
        stats.lookups,
        100.0 * stats.lookup_success_rate
    );
    println!(
        "after churn stopped the tree stabilized in {} extra rounds",
        stats.final_repair_rounds
    );
    println!(
        "end: {} peers, {} virtual servers, tree of {} KT nodes (height {})",
        net.alive_peers().len(),
        net.alive_vs_count(),
        tree.len(),
        tree.height()
    );

    net.check_invariants().expect("chord invariants hold");
    tree.check_invariants(&net).expect("tree invariants hold");
    println!("all structural invariants verified.");
}
