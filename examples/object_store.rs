//! Object-level workload: a DHT storing many objects with Zipf-skewed
//! popularity (a few hot objects dominate), the microfoundation behind the
//! paper's load models. The hot keys create hotspot virtual servers; the
//! balancer spreads them to high-capacity peers.
//!
//! ```text
//! cargo run --release --example object_store
//! ```

use proxbal::chord::ChordNetwork;
use proxbal::core::{BalancerConfig, LoadBalancer, LoadState, NodeClass};
use proxbal::workload::{CapacityProfile, ObjectWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(61);

    let mut net = ChordNetwork::new();
    for _ in 0..256 {
        net.join_peer(5, &mut rng);
    }

    // 100k objects, Zipf(1.1) popularity: the head of the distribution is a
    // handful of very hot keys.
    let workload = ObjectWorkload::zipf(100_000, 1_000_000.0, 1.1);
    let objects = workload.generate(&mut rng);
    println!(
        "{} objects over {} virtual servers; hottest object carries {:.1}% of all load",
        objects.len(),
        net.alive_vs_count(),
        100.0 * objects.iter().map(|o| o.load).fold(0.0f64, f64::max) / 1_000_000.0
    );

    let mut loads = LoadState::from_objects(&net, &CapacityProfile::gnutella(), &objects, &mut rng);

    let hottest_vs = |net: &ChordNetwork, loads: &LoadState| -> f64 {
        net.ring()
            .iter()
            .map(|(_, v)| loads.vs_load(v))
            .fold(0.0f64, f64::max)
    };
    println!(
        "hottest virtual server before balancing: {:.3e}",
        hottest_vs(&net, &loads)
    );

    // Splitting lets even a hotspot virtual server bigger than any light
    // node's room be divided and placed.
    let balancer = LoadBalancer::new(BalancerConfig {
        max_splits: 32,
        ..BalancerConfig::default()
    });
    let report = balancer
        .run(&mut net, &mut loads, None, &mut rng)
        .expect("attached network");

    println!(
        "balanced: {} heavy -> {} heavy, {} transfers ({} splits of oversized servers)",
        report.before.get(&NodeClass::Heavy).unwrap_or(&0),
        report.heavy_after(),
        report.transfers.len(),
        net.alive_vs_count() - 256 * 5,
    );

    // Where did the hot load end up? Check the capacity of its new host.
    let (hot_vs, hot_load) = net
        .ring()
        .iter()
        .map(|(_, v)| (v, loads.vs_load(v)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let host = net.vs(hot_vs).host;
    println!(
        "hottest virtual server after balancing: {:.3e}, hosted by a capacity-{} peer",
        hot_load,
        loads.capacity(host)
    );
    net.check_invariants().expect("invariants hold");
}
