//! Periodic re-balancing under load drift — stress-testing the paper's
//! stability assumption ("the load on a virtual server is stable over the
//! timescale it takes for the load balancing algorithm to perform") by
//! letting per-virtual-server loads follow a geometric random walk while
//! the balancer runs every few steps.
//!
//! ```text
//! cargo run --release --example drifting_loads
//! ```

use proxbal::chord::ChordNetwork;
use proxbal::core::{BalancerConfig, LoadState};
use proxbal::sim::drift::{run_drift, DriftConfig};
use proxbal::workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut net = ChordNetwork::new();
    for _ in 0..256 {
        net.join_peer(5, &mut rng);
    }
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1_000_000.0, 10_000.0),
        &mut rng,
    );

    let cfg = DriftConfig {
        steps: 50,
        rebalance_every: 10,
        sigma: 0.1,
    };
    // Virtual-server splitting handles the oversized-VS pile-up that
    // repeated balancing creates on high-capacity peers.
    let balancer_cfg = BalancerConfig {
        max_splits: 16,
        ..BalancerConfig::default()
    };
    let stats = run_drift(&mut net, &mut loads, &cfg, balancer_cfg, None, &mut rng);

    println!("step  gini   heavy  moved-this-step");
    for s in &stats.timeline {
        let marker = if s.moved > 0.0 { "  <- rebalance" } else { "" };
        println!(
            "{:>4}  {:>5.3}  {:>5}  {:>12.3e}{marker}",
            s.step, s.gini, s.heavy, s.moved
        );
    }
    println!(
        "\n{} rebalances moved {:.3e} load total; worst heavy count {}",
        stats.rebalances,
        stats.total_moved,
        stats.max_heavy()
    );
    net.check_invariants().expect("invariants hold");
}
