//! The capacity-alignment experiment behind Figures 5 and 6: after
//! balancing, node load must track the capacity skew — "have higher
//! capacity nodes carry more loads".
//!
//! Runs both load models (Gaussian and the heavy-tailed Pareto) and prints
//! the per-capacity-class mean load before and after balancing.
//!
//! ```text
//! cargo run --release --example heterogeneous_capacity
//! ```

use proxbal::sim::experiments::fig56_class_loads;
use proxbal::sim::metrics::Summary;
use proxbal::sim::{Scenario, TopologyKind};
use proxbal::workload::LoadModel;

fn main() {
    for (label, model) in [
        ("Gaussian", LoadModel::gaussian(1_000_000.0, 10_000.0)),
        ("Pareto(alpha=1.5)", LoadModel::pareto(1_000_000.0)),
    ] {
        let mut scenario = Scenario::builder().seed(7).build();
        scenario.peers = 1024; // example-sized; repro --fig 5/6 runs 4096
        scenario.topology = TopologyKind::None;
        scenario.load = model;
        let mut prepared = scenario.prepare();
        let out = fig56_class_loads(&mut prepared);

        println!("── {label} ──");
        println!(
            "{:>10} {:>6} {:>16} {:>16} {:>10}",
            "capacity", "nodes", "mean load pre", "mean load post", "post/cap"
        );
        for (i, cap) in out.class_capacity.iter().enumerate() {
            let b = Summary::of(&out.before[i]);
            let a = Summary::of(&out.after[i]);
            if b.count == 0 {
                continue;
            }
            println!(
                "{:>10} {:>6} {:>16.1} {:>16.1} {:>10.2}",
                cap,
                b.count,
                b.mean,
                a.mean,
                a.mean / cap
            );
        }
        // The "post/cap" column is the per-class unit load: roughly equal
        // across classes once the two skews (load, capacity) are aligned.
        println!();
    }
}
