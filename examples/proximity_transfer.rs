//! The headline experiment (Figure 7): on a transit-stub Internet topology,
//! proximity-aware virtual-server assignment moves most load between
//! physically close nodes, while the proximity-ignorant sweep scatters
//! transfers across the wide area.
//!
//! ```text
//! cargo run --release --example proximity_transfer
//! ```

use proxbal::sim::experiments::fig78_moved_load;
use proxbal::sim::{Scenario, TopologyKind};

fn main() {
    let mut scenario = Scenario::builder().seed(3).build();
    scenario.peers = 1024; // example-sized; `repro --fig 7` runs 4096
    scenario.topology = TopologyKind::Ts5kLarge;
    let prepared = scenario.prepare();

    println!(
        "overlay: {} peers on a {}-node transit-stub topology, {} landmarks",
        prepared.net.alive_peers().len(),
        prepared.topo.as_ref().unwrap().node_count(),
        prepared.landmarks.len()
    );

    let out = fig78_moved_load(&prepared);

    println!("\n{:>24} {:>14} {:>14}", "", "prox-aware", "prox-ignorant");
    for d in [1u32, 2, 5, 10, 15, 20] {
        println!(
            "{:>24} {:>13.1}% {:>13.1}%",
            format!("moved load within {d} hops"),
            100.0 * out.aware.fraction_within(d),
            100.0 * out.ignorant.fraction_within(d)
        );
    }
    println!(
        "{:>24} {:>14.2} {:>14.2}",
        "mean transfer distance",
        out.aware.mean_distance(),
        out.ignorant.mean_distance()
    );
    println!(
        "\nboth modes fully balance: heavy after = {} (aware), {} (ignorant)",
        out.aware_report.heavy_after(),
        out.ignorant_report.heavy_after()
    );
    println!(
        "assignments made at deep rendezvous points pair physically close \
         nodes;\nthe aware run produced {} of its {} assignments below tree \
         depth 8.",
        out.aware_report
            .vsa
            .assignments_per_depth
            .iter()
            .skip(8)
            .sum::<usize>(),
        out.aware_report.vsa.assignments.len()
    );
}
