//! Quickstart: build a small heterogeneous DHT, run one load-balancing
//! pass, and print the before/after picture.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use proxbal::chord::ChordNetwork;
use proxbal::core::{BalancerConfig, LoadBalancer, LoadState, NodeClass};
use proxbal::workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A Chord overlay of 256 peers, 5 virtual servers each.
    let mut net = ChordNetwork::new();
    for _ in 0..256 {
        net.join_peer(5, &mut rng);
    }
    println!(
        "overlay: {} peers hosting {} virtual servers",
        net.alive_peers().len(),
        net.alive_vs_count()
    );

    // 2. Skewed loads (Gaussian over owned ring fractions) and the paper's
    //    Gnutella-like capacity profile (1 … 10,000, heavily skewed).
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1_000_000.0, 10_000.0),
        &mut rng,
    );

    let unit_loads = |net: &ChordNetwork, loads: &LoadState| -> Vec<f64> {
        net.alive_peers()
            .iter()
            .map(|&p| loads.unit_load(net, p))
            .collect()
    };
    let before = unit_loads(&net, &loads);
    println!(
        "before: max unit load {:>9.1}   mean {:>7.1}",
        before.iter().fold(0.0f64, |a, &b| a.max(b)),
        before.iter().sum::<f64>() / before.len() as f64
    );

    // 3. One balancing pass: LBI aggregation → classification → virtual
    //    server assignment → transfer.
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer
        .run(&mut net, &mut loads, None, &mut rng)
        .expect("attached network");

    println!(
        "classified: {} heavy / {} light / {} neutral",
        report.before.get(&NodeClass::Heavy).unwrap_or(&0),
        report.before.get(&NodeClass::Light).unwrap_or(&0),
        report.before.get(&NodeClass::Neutral).unwrap_or(&0),
    );
    println!(
        "balanced in {} LBI + {} VSA message rounds, {} transfers",
        report.lbi_rounds,
        report.vsa.rounds,
        report.transfers.len()
    );

    let after = unit_loads(&net, &loads);
    println!(
        "after : max unit load {:>9.1}   mean {:>7.1}   heavy remaining: {}",
        after.iter().fold(0.0f64, |a, &b| a.max(b)),
        after.iter().sum::<f64>() / after.len() as f64,
        report.heavy_after()
    );
}
