//! # proxbal — proximity-aware load balancing for structured P2P systems
//!
//! A full reproduction of **Zhu & Hu, "Towards Efficient Load Balancing in
//! Structured P2P Systems" (IPDPS 2004)** as a Rust workspace: the
//! proximity-aware virtual-server load balancer plus every substrate it
//! needs, built from scratch —
//!
//! * [`chord`] — a Chord DHT simulator (32-bit ring, virtual servers,
//!   finger tables, iterative lookup, churn);
//! * [`ktree`] — the self-organized distributed K-nary tree for
//!   aggregation/dissemination (§3.1);
//! * [`hilbert`] — m-dimensional Hilbert curves and the landmark-vector →
//!   DHT-key mapping (§4.2.1);
//! * [`topology`] — GT-ITM-style transit-stub Internet topologies with the
//!   paper's 3:1 interdomain:intradomain hop costs (§5.1);
//! * [`workload`] — Gaussian/Pareto load models and the Gnutella capacity
//!   profile (§5.1);
//! * [`core`] — the four-phase load balancer itself (LBI aggregation,
//!   classification, VSA, VST) and baselines (CFS shedding, random
//!   matching);
//! * [`sim`] — scenarios (via [`sim::ScenarioBuilder`]), metrics, a
//!   discrete-event engine, churn, the continuous-operation engine
//!   ([`sim::run_engine`]) and the drivers regenerating every figure of
//!   the paper.
//!
//! This facade crate re-exports the workspace so `use proxbal::…` works
//! from examples and downstream code.
//!
//! ## Quickstart
//!
//! ```
//! use proxbal::core::{BalancerConfig, LoadBalancer, LoadState};
//! use proxbal::chord::ChordNetwork;
//! use proxbal::workload::{CapacityProfile, LoadModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//!
//! // A DHT of 64 peers, each hosting 5 virtual servers.
//! let mut net = ChordNetwork::new();
//! for _ in 0..64 {
//!     net.join_peer(5, &mut rng);
//! }
//!
//! // Skewed loads and heterogeneous (Gnutella-like) capacities.
//! let mut loads = LoadState::generate(
//!     &net,
//!     &CapacityProfile::gnutella(),
//!     &LoadModel::gaussian(1e6, 1e4),
//!     &mut rng,
//! );
//!
//! // One balancing pass: aggregate → classify → assign → transfer.
//! let report = LoadBalancer::new(BalancerConfig::default())
//!     .run(&mut net, &mut loads, None, &mut rng)
//!     .expect("attached network");
//! assert_eq!(report.heavy_after(), 0);
//! ```

pub use proxbal_chord as chord;
pub use proxbal_core as core;
pub use proxbal_hilbert as hilbert;
pub use proxbal_id as id;
pub use proxbal_ktree as ktree;
pub use proxbal_sim as sim;
pub use proxbal_topology as topology;
pub use proxbal_workload as workload;
