//! Moderate-scale regression tests pinning the *shapes* of every paper
//! figure — the properties EXPERIMENTS.md reports at full scale, asserted
//! here at CI-friendly size through the `proxbal` facade.

use proxbal::sim::experiments::{
    fig4_unit_load, fig56_class_loads, fig78_moved_load, protocol_latency, rounds_scaling,
};
use proxbal::sim::metrics::gini;
use proxbal::sim::{Scenario, TopologyKind};
use proxbal::workload::LoadModel;

fn scenario(seed: u64, peers: usize, topology: TopologyKind) -> Scenario {
    let mut s = Scenario::builder().seed(seed).build();
    s.peers = peers;
    s.topology = topology;
    s
}

#[test]
fn fig4_shape_majority_heavy_then_none() {
    let mut prepared = scenario(81, 512, TopologyKind::None).prepare();
    let out = fig4_unit_load(&mut prepared);
    // Paper: "The percentage of heavy nodes are about 75%".
    let frac = out.report.heavy_before_fraction();
    assert!(
        (0.55..0.90).contains(&frac),
        "heavy-before fraction {frac:.2} outside the paper's regime"
    );
    // Paper: "all heavy nodes become light".
    assert_eq!(out.report.heavy_after(), 0);
    // Inequality collapses.
    assert!(gini(&out.after) < 0.7 * gini(&out.before));
}

#[test]
fn fig5_fig6_shape_load_tracks_capacity() {
    for load in [LoadModel::gaussian(1e6, 1e4), LoadModel::pareto(1e6)] {
        let mut s = scenario(82, 512, TopologyKind::None);
        s.load = load;
        let mut prepared = s.prepare();
        let out = fig56_class_loads(&mut prepared);
        // Post-balance unit load (mean load / capacity) within a factor ~3
        // across populated high-capacity classes: the two skews aligned.
        let mut unit_means = Vec::new();
        for (i, &cap) in out.class_capacity.iter().enumerate() {
            if out.after[i].len() >= 10 && cap >= 100.0 {
                let mean = out.after[i].iter().sum::<f64>() / out.after[i].len() as f64;
                unit_means.push(mean / cap);
            }
        }
        assert!(unit_means.len() >= 2);
        let lo = unit_means.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = unit_means.iter().copied().fold(0.0f64, f64::max);
        assert!(
            hi / lo < 3.0,
            "{load:?}: unit loads should align across classes: {unit_means:?}"
        );
    }
}

#[test]
fn fig7_shape_aware_dominates_on_clustered_topology() {
    let prepared = scenario(83, 1024, TopologyKind::Ts5kLarge).prepare();
    let out = fig78_moved_load(&prepared);
    // The aware scheme must land a large share of moved load inside stub
    // domains (≤ 2 hops) — the ignorant scheme lands almost none.
    assert!(out.aware.fraction_within(2) > 0.25);
    assert!(out.ignorant.fraction_within(2) < 0.10);
    // Within-transit-domain share (≤ 10 hops): aware strongly ahead.
    assert!(out.aware.fraction_within(10) > 0.6);
    assert!(out.aware.fraction_within(10) > 1.8 * out.ignorant.fraction_within(10));
}

#[test]
fn fig8_shape_weaker_but_persistent_advantage() {
    let prepared = scenario(84, 1024, TopologyKind::Ts5kSmall).prepare();
    let out = fig78_moved_load(&prepared);
    // Scattered peers: locality shrinks for both, but aware still wins.
    assert!(out.aware.mean_distance() < out.ignorant.mean_distance());
    // And the advantage is smaller than on ts5k-large (the paper's point).
    let large = fig78_moved_load(&scenario(84, 1024, TopologyKind::Ts5kLarge).prepare());
    let gain_small = out.ignorant.mean_distance() - out.aware.mean_distance();
    let gain_large = large.ignorant.mean_distance() - large.aware.mean_distance();
    assert!(
        gain_large > gain_small,
        "ts5k-large gain {gain_large:.2} should exceed ts5k-small gain {gain_small:.2}"
    );
}

#[test]
fn rounds_shape_logarithmic_scaling() {
    let rows = rounds_scaling(&[128, 512, 2048], &[2], 85, 2);
    // 16× more peers: rounds grow by a bounded additive amount (log), not
    // multiplicatively.
    let r128 = rows.iter().find(|r| r.peers == 128).unwrap();
    let r2048 = rows.iter().find(|r| r.peers == 2048).unwrap();
    let growth = r2048.lbi_rounds as i64 - r128.lbi_rounds as i64;
    assert!(
        (0..=10).contains(&growth),
        "16x size should add ~2·log2(16)=8 rounds, saw {growth}"
    );
}

#[test]
fn latency_shape_k8_faster_than_k2() {
    let rows = protocol_latency(&[256], &[2, 8], &[0.0], 86, 2);
    let t2 = rows.iter().find(|r| r.k == 2).unwrap();
    let t8 = rows.iter().find(|r| r.k == 8).unwrap();
    assert!(
        t8.aggregation < t2.aggregation,
        "K=8 should aggregate faster: {} vs {}",
        t8.aggregation,
        t2.aggregation
    );
    assert!(t8.messages < t2.messages);
}
