//! Cross-crate infrastructure tests: the K-nary tree over a live Chord
//! network under churn, LBI aggregation correctness through the tree, and
//! protocol latency over the underlay.

use proxbal::chord::{ChordNetwork, RoutingState};
use proxbal::core::{Lbi, LoadState};
use proxbal::ktree::KTree;
use proxbal::sim::churn::{run_churn, ChurnConfig};
use proxbal::sim::latency::{aggregation_latency, root_path_latencies};
use proxbal::sim::{Scenario, TopologyKind};
use proxbal::workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

#[test]
fn lbi_through_tree_equals_ground_truth_after_churn() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = ChordNetwork::new();
    for _ in 0..96 {
        net.join_peer(4, &mut rng);
    }
    let mut tree = KTree::build(&net, 2);

    // Churn, then repair.
    for p in net.alive_peers().into_iter().take(20) {
        net.crash_peer(p);
    }
    for _ in 0..10 {
        net.join_peer(4, &mut rng);
    }
    tree.maintain_until_stable(&net, 128);
    tree.check_invariants(&net).unwrap();

    // LBI aggregation over the repaired tree matches central totals.
    let loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1e6, 1e4),
        &mut rng,
    );
    let mut inputs: HashMap<_, Lbi> = HashMap::new();
    for p in net.alive_peers() {
        let vs = net.vss_of(p)[0];
        inputs.insert(tree.report_target(&net, vs), loads.node_lbi(&net, p));
    }
    let out = tree.aggregate(inputs);
    let got = out.root_value.unwrap();
    let want = loads.totals(&net);
    assert!((got.load - want.load).abs() <= 1e-6 * want.load);
    assert!((got.capacity - want.capacity).abs() < 1e-9);
    assert_eq!(got.min_vs_load, want.min_vs_load);
}

#[test]
fn sustained_churn_with_lookups() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = ChordNetwork::new();
    for _ in 0..64 {
        net.join_peer(4, &mut rng);
    }
    let mut tree = KTree::build(&net, 4);
    let mut routing = RoutingState::build(&net);
    let cfg = ChurnConfig {
        join_rate: 0.1,
        crash_rate: 0.1,
        vs_per_join: 4,
        maintenance_interval: 8,
        stabilize_interval: 8,
        duration: 1500,
    };
    let stats = run_churn(&mut net, &mut tree, &mut routing, &cfg, &mut rng);
    assert!(stats.joins > 50);
    assert!(stats.crashes > 50);
    assert!(
        stats.lookup_success_rate > 0.8,
        "{}",
        stats.lookup_success_rate
    );
    net.check_invariants().unwrap();
    tree.check_invariants(&net).unwrap();
}

#[test]
fn aggregation_latency_reflects_topology() {
    let mut scenario = Scenario::builder().small().seed(3).build();
    scenario.peers = 96;
    scenario.topology = TopologyKind::Tiny;
    let prepared = scenario.prepare();
    let tree = KTree::build(&prepared.net, 2);
    let oracle = prepared.oracle.as_ref().unwrap();

    let lat = aggregation_latency(&prepared.net, oracle, &tree);
    assert!(lat > 0);
    // Bounded by (max message depth) × (graph diameter).
    let row0 = oracle.row(0);
    let row0_max = (0..row0.len()).map(|i| row0.get(i)).max().unwrap();
    let diameter = (0..prepared.topo.as_ref().unwrap().node_count() as u32)
        .map(|n| row0_max.max(oracle.distance(0, n)))
        .max()
        .unwrap();
    let bound = u64::from(tree.max_message_depth()) * u64::from(2 * diameter);
    assert!(lat <= bound, "latency {lat} exceeds bound {bound}");

    // Per-node path latencies are monotone toward leaves.
    let paths = root_path_latencies(&prepared.net, oracle, &tree);
    for id in tree.iter_ids() {
        if let Some(parent) = tree.node(id).parent {
            assert!(paths[&id] >= paths[&parent]);
        }
    }
}

#[test]
fn balance_runs_back_to_back_converge() {
    // Running the balancer repeatedly must be stable: after the first pass
    // removes all heavy nodes, further passes move (almost) nothing.
    let mut scenario = Scenario::builder().small().seed(5).build();
    scenario.peers = 192;
    scenario.topology = TopologyKind::None;
    let mut prepared = scenario.prepare();
    let balancer = proxbal::core::LoadBalancer::new(proxbal::core::BalancerConfig::default());
    let mut rng = prepared.derived_rng(5);

    let first = balancer
        .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
        .unwrap();
    assert!(!first.transfers.is_empty());
    assert_eq!(first.heavy_after(), 0);

    let second = balancer
        .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
        .unwrap();
    let moved_first = proxbal::core::total_moved_load(&first.transfers);
    let moved_second = proxbal::core::total_moved_load(&second.transfers);
    assert!(
        moved_second <= moved_first * 0.05,
        "second pass should be a no-op: {moved_first} then {moved_second}"
    );
}

#[test]
fn tree_tracks_network_growth_incrementally() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut net = ChordNetwork::new();
    net.join_peer(3, &mut rng);
    let mut tree = KTree::build(&net, 2);
    // Interleave joins with maintenance; the tree must track every step and
    // stay consistent at stabilization points.
    for wave in 0..6 {
        for _ in 0..8 {
            net.join_peer(3, &mut rng);
        }
        tree.maintain_until_stable(&net, 128);
        tree.check_invariants(&net)
            .unwrap_or_else(|e| panic!("wave {wave}: {e}"));
        for (_, vs) in net.ring().iter() {
            assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
        }
    }
}
