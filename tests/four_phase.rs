//! End-to-end integration tests of the four-phase balancer across the whole
//! stack (chord + ktree + workload + core).

use proxbal::chord::ChordNetwork;
use proxbal::core::{
    BalancerConfig, ClassifyParams, LoadBalancer, LoadState, NodeClass, ProximityMode,
};
use proxbal::sim::metrics::gini;
use proxbal::sim::{Scenario, TopologyKind};
use proxbal::workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_loads(net: &ChordNetwork, loads: &LoadState) -> Vec<f64> {
    net.alive_peers()
        .iter()
        .map(|&p| loads.unit_load(net, p))
        .collect()
}

#[test]
fn full_run_balances_and_preserves_invariants() {
    let mut scenario = Scenario::builder().small().seed(100).build();
    scenario.peers = 256;
    scenario.topology = TopologyKind::None;
    let mut prepared = scenario.prepare();

    let total_before = prepared.loads.totals(&prepared.net).load;
    let gini_before = gini(&unit_loads(&prepared.net, &prepared.loads));

    let balancer = LoadBalancer::new(BalancerConfig::default());
    let mut rng = prepared.derived_rng(1);
    let report = balancer
        .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
        .unwrap();

    prepared.net.check_invariants().unwrap();
    let total_after = prepared.loads.totals(&prepared.net).load;
    assert!((total_before - total_after).abs() < 1e-6 * total_before);

    let gini_after = gini(&unit_loads(&prepared.net, &prepared.loads));
    assert!(
        gini_after < gini_before,
        "balance must reduce unit-load inequality: {gini_before} -> {gini_after}"
    );
    assert_eq!(report.heavy_after(), 0, "all heavy nodes become light");
    assert!(report.before[&NodeClass::Heavy] > 0);
    // Every transfer's VS now lives at its assigned destination.
    for t in &report.transfers {
        assert_eq!(prepared.net.vs(t.assignment.vs).host, t.assignment.to);
    }
}

#[test]
fn works_for_both_load_models_and_degrees() {
    for (model, k) in [
        (LoadModel::gaussian(1e6, 1e4), 2usize),
        (LoadModel::gaussian(1e6, 1e4), 8),
        (LoadModel::pareto(1e6), 2),
        (LoadModel::pareto(1e6), 8),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = ChordNetwork::new();
        for _ in 0..128 {
            net.join_peer(5, &mut rng);
        }
        let mut loads = LoadState::generate(&net, &CapacityProfile::gnutella(), &model, &mut rng);
        let balancer = LoadBalancer::new(BalancerConfig {
            k,
            ..BalancerConfig::default()
        });
        let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
        let heavy_before = report.before[&NodeClass::Heavy];
        assert!(heavy_before > 0, "model {model:?} produced no heavy nodes");
        assert!(
            report.heavy_after() * 10 <= heavy_before,
            "model {model:?} k={k}: {heavy_before} -> {}",
            report.heavy_after()
        );
        net.check_invariants().unwrap();
    }
}

#[test]
fn epsilon_trades_movement_for_balance() {
    // Larger ε ⇒ (weakly) less load moved, at looser balance. This is the
    // trade-off §3.3 describes.
    let mut moved = Vec::new();
    for eps in [0.0, 0.2, 0.5] {
        let mut scenario = Scenario::builder().small().seed(200).build();
        scenario.peers = 256;
        scenario.topology = TopologyKind::None;
        scenario.balancer = BalancerConfig {
            epsilon: eps,
            ..BalancerConfig::default()
        };
        let mut prepared = scenario.prepare();
        let balancer = LoadBalancer::new(prepared.scenario.balancer);
        let mut rng = prepared.derived_rng(2);
        let report = balancer
            .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
            .unwrap();
        moved.push(proxbal::core::total_moved_load(&report.transfers));
        // ε = 0 may leave a few stragglers (whole virtual servers cannot hit
        // an exact fair share — the very trade-off ε exists for); relaxed
        // targets must fully converge.
        let heavy_before = report.before[&NodeClass::Heavy];
        assert!(
            report.heavy_after() * 2 <= heavy_before,
            "eps={eps}: {} of {heavy_before} still heavy",
            report.heavy_after()
        );
        if eps > 0.0 {
            assert_eq!(report.heavy_after(), 0, "eps={eps}");
        }
    }
    assert!(
        moved[0] > moved[2],
        "eps=0 should move more load than eps=0.5: {moved:?}"
    );
}

#[test]
fn higher_capacity_nodes_carry_more_after_balancing() {
    let mut scenario = Scenario::builder().small().seed(300).build();
    scenario.peers = 512;
    scenario.topology = TopologyKind::None;
    let mut prepared = scenario.prepare();
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let mut rng = prepared.derived_rng(3);
    let _ = balancer
        .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
        .unwrap();

    let mut per_class: std::collections::BTreeMap<usize, (f64, usize)> = Default::default();
    for p in prepared.net.alive_peers() {
        let class = prepared.loads.class(p).unwrap().0;
        let e = per_class.entry(class).or_insert((0.0, 0));
        e.0 += prepared.loads.node_load(&prepared.net, p);
        e.1 += 1;
    }
    let avgs: Vec<f64> = per_class
        .values()
        .filter(|(_, n)| *n > 0)
        .map(|(s, n)| s / *n as f64)
        .collect();
    for w in avgs.windows(2) {
        assert!(w[1] > w[0], "load must track capacity: {avgs:?}");
    }
}

#[test]
fn stale_assignments_are_skipped_when_peers_crash_between_vsa_and_vst() {
    // Simulate a crash between assignment and transfer by running VSA
    // manually, crashing a source, then executing the transfers.
    let mut rng = StdRng::seed_from_u64(9);
    let mut net = ChordNetwork::new();
    for _ in 0..64 {
        net.join_peer(4, &mut rng);
    }
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1e6, 1e4),
        &mut rng,
    );
    let params = ClassifyParams::default();
    let assignments = proxbal::core::baselines::random_matching(&net, &loads, &params, &mut rng);
    assert!(assignments.len() > 3);

    let crash_src = assignments[0].from;
    let crash_dst = assignments
        .iter()
        .map(|a| a.to)
        .find(|&p| p != crash_src)
        .unwrap();
    net.crash_peer(crash_src);
    net.crash_peer(crash_dst);

    let records =
        proxbal::core::execute_transfers(&mut net, &mut loads, &assignments, None).unwrap();
    net.check_invariants().unwrap();
    for r in &records {
        assert_ne!(r.assignment.from, crash_src);
        assert_ne!(r.assignment.to, crash_dst);
    }
}

#[test]
fn ignorant_mode_requires_no_underlay_aware_panics_without() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = ChordNetwork::new();
    for _ in 0..16 {
        net.join_peer(3, &mut rng);
    }
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1e5, 1e3),
        &mut rng,
    );
    // Ignorant without underlay: fine.
    let _ = LoadBalancer::new(BalancerConfig::default())
        .run(&mut net, &mut loads, None, &mut rng)
        .unwrap();
    // Aware without underlay: must panic.
    let result = std::panic::catch_unwind(move || {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = BalancerConfig {
            mode: ProximityMode::Aware(Default::default()),
            ..BalancerConfig::default()
        };
        LoadBalancer::new(cfg)
            .run(&mut net, &mut loads, None, &mut rng)
            .unwrap()
    });
    assert!(result.is_err());
}
