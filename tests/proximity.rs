//! Integration tests of the proximity-aware pipeline over real transit-stub
//! topologies (topology + hilbert + chord + ktree + core together).

use proxbal::sim::experiments::fig78_moved_load;
use proxbal::sim::{Scenario, TopologyKind};

fn moved_load_scenario(topology: TopologyKind, peers: usize, seed: u64) -> Scenario {
    let mut s = Scenario::builder().seed(seed).build();
    s.peers = peers;
    s.topology = topology;
    s
}

#[test]
fn aware_beats_ignorant_on_ts5k_large() {
    let prepared = moved_load_scenario(TopologyKind::Ts5kLarge, 768, 41).prepare();
    let out = fig78_moved_load(&prepared);

    // Both modes balance completely.
    assert_eq!(out.aware_report.heavy_after(), 0);
    assert_eq!(out.ignorant_report.heavy_after(), 0);

    // The aware scheme concentrates moved load at short distances.
    let aware2 = out.aware.fraction_within(2);
    let ign2 = out.ignorant.fraction_within(2);
    assert!(
        aware2 > 5.0 * ign2,
        "within 2 hops: aware {aware2:.3} vs ignorant {ign2:.3}"
    );
    let aware10 = out.aware.fraction_within(10);
    let ign10 = out.ignorant.fraction_within(10);
    assert!(
        aware10 > 1.5 * ign10,
        "within 10 hops: aware {aware10:.3} vs ignorant {ign10:.3}"
    );
    assert!(
        out.aware.mean_distance() < out.ignorant.mean_distance(),
        "mean distance must drop"
    );
}

#[test]
fn aware_still_wins_on_ts5k_small() {
    let prepared = moved_load_scenario(TopologyKind::Ts5kSmall, 768, 43).prepare();
    let out = fig78_moved_load(&prepared);
    assert_eq!(out.aware_report.heavy_after(), 0);
    // Paper: "The proximity-aware load balancing approach still performs
    // much better … in spite of the fact that most of the nodes are
    // scattered in the entire Internet."
    assert!(
        out.aware.mean_distance() < out.ignorant.mean_distance(),
        "aware {:.2} vs ignorant {:.2}",
        out.aware.mean_distance(),
        out.ignorant.mean_distance()
    );
    assert!(out.aware.fraction_within(10) > out.ignorant.fraction_within(10));
}

#[test]
fn aware_assignments_happen_deeper_in_the_tree() {
    // Proximity publication clusters records, so rendezvous points sit
    // deeper (closer to leaves) than in the ignorant sweep on average.
    let prepared = moved_load_scenario(TopologyKind::Ts5kLarge, 512, 47).prepare();
    let out = fig78_moved_load(&prepared);
    let mean_depth = |per_depth: &[usize]| -> f64 {
        let total: usize = per_depth.iter().sum();
        per_depth
            .iter()
            .enumerate()
            .map(|(d, &n)| d as f64 * n as f64)
            .sum::<f64>()
            / total.max(1) as f64
    };
    let aware = mean_depth(&out.aware_report.vsa.assignments_per_depth);
    let ignorant = mean_depth(&out.ignorant_report.vsa.assignments_per_depth);
    assert!(
        aware > ignorant,
        "aware mean rendezvous depth {aware:.2} should exceed ignorant {ignorant:.2}"
    );
}

#[test]
fn transfer_distances_match_oracle() {
    let prepared = moved_load_scenario(TopologyKind::Tiny, 48, 53).prepare();
    let out = fig78_moved_load(&prepared);
    let oracle = prepared.oracle.as_ref().unwrap();
    for t in &out.aware_report.transfers {
        let from = prepared.net.peer(t.assignment.from).underlay;
        let to = prepared.net.peer(t.assignment.to).underlay;
        assert_eq!(t.distance, Some(oracle.distance(from, to)));
    }
}

#[test]
fn deterministic_given_seed() {
    let a = fig78_moved_load(&moved_load_scenario(TopologyKind::Tiny, 64, 77).prepare());
    let b = fig78_moved_load(&moved_load_scenario(TopologyKind::Tiny, 64, 77).prepare());
    assert_eq!(
        a.aware_report.transfers.len(),
        b.aware_report.transfers.len()
    );
    assert_eq!(a.aware.cdf(), b.aware.cdf());
    assert_eq!(a.ignorant.cdf(), b.ignorant.cdf());
}
