//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the compat `serde`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed directly from the `proc_macro::TokenStream` and the impl is
//! emitted as source text. Supported shapes — exactly what this workspace
//! derives — are non-generic structs (named, tuple, unit) and non-generic
//! enums (unit, tuple and struct variants), with no `#[serde(...)]`
//! attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive({name}): generic types are not supported by the compat serde_derive");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body {other:?}"),
            };
            Item {
                name,
                shape: Shape::Struct(fields),
            }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item {
                name,
                shape: Shape::Enum(parse_variants(body)),
            }
        }
        other => panic!("cannot derive for {other}"),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // Optional restriction: pub(crate), pub(in path).
                if matches!(&toks.peek(), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...`, skipping types with bracket-depth tracking
/// (`HashMap<K, V>` has commas that do not separate fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut toks = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => panic!("expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        for tok in toks.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => "::serde::Content::Null".to_string(),
        Shape::Struct(Fields::Named(fields)) => named_to_content(fields, "self."),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Content::Str(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let payload = named_to_content(fnames, "");
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            fnames.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// `Content::Map` expression for named fields; `prefix` is `self.` for
/// structs and empty for enum-variant bindings.
fn named_to_content(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_content(&{prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => {
            let assigns = named_from_content(fields, "__m");
            format!(
                "let __m = __c.as_map().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected map\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {assigns} }})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| \
                 ::serde::DeError::new(\"{name}: expected sequence\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::new(\"{name}: wrong tuple arity\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_content(__v)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __s = __v.as_seq().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{vname}: expected sequence\"))?;\n\
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::new(\"{name}::{vname}: wrong arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fnames) => {
                        let assigns = named_from_content(fnames, "__m");
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __m = __v.as_map().ok_or_else(|| \
                             ::serde::DeError::new(\"{name}::{vname}: expected map\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{ {assigns} }})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"{name}: unknown variant {{__other}}\"))),\n\
                 }}\n}}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 \"{name}: expected a variant name or single-entry map\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

/// `field: from_content(field(map, "field"))?, ...` assignments.
fn named_from_content(fields: &[String], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\
                 ::serde::Content::field({map_var}, \"{f}\"))?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}
