//! Minimal offline replacement for `criterion`.
//!
//! Implements the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `BatchSize`, `criterion_group!` and
//! `criterion_main!` — as a plain wall-clock harness. There is no
//! statistical analysis: each benchmark runs `sample_size` timed iterations
//! and reports mean time per iteration.
//!
//! Flag handling mirrors what cargo passes to `harness = false` bench
//! targets: `--bench` (ignored), `--test` (switches to one-iteration smoke
//! mode so `cargo test --benches` stays fast) and a bare positional argument
//! (substring filter on `group/function` ids).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: a function name, a parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups whose name already says what runs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// How `iter_batched` amortizes setup (ignored: setup is always excluded
/// from timing here).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration inputs built by `setup`; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    ran: usize,
}

impl Criterion {
    /// Builds a harness from the process arguments cargo passes to
    /// `harness = false` bench targets.
    pub fn from_args() -> Self {
        let mut criterion = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => criterion.test_mode = true,
                a if a.starts_with('-') => {} // --bench and friends: ignore
                a => criterion.filter = Some(a.to_string()),
            }
        }
        criterion
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.run(&id.id, 20, f);
        self
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&self) {
        eprintln!(
            "criterion-compat: {} benchmark(s) {}",
            self.ran,
            if self.test_mode {
                "smoke-tested"
            } else {
                "run"
            }
        );
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let iterations = if self.test_mode {
            1
        } else {
            sample_size as u64
        };
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.ran += 1;
        let per_iter = bencher.elapsed.as_secs_f64() / iterations.max(1) as f64;
        eprintln!("{id:<50} time: [{}]", format_seconds(per_iter));
    }
}

/// A set of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, self.sample_size, f);
        self
    }

    /// Runs `f(bencher, input)` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, sample_size: usize, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        self.criterion.run_one(&full, sample_size, f);
    }
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            ran: 0,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.ran, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            ran: 0,
        };
        let mut group = c.benchmark_group("g");
        group.bench_function("keep_me", |b| b.iter(|| 0));
        group.bench_function("drop_me", |b| b.iter(|| 0));
        group.finish();
        assert_eq!(c.ran, 1);
    }
}
