//! Minimal offline replacement for `serde_json`, bridging the compat
//! `serde::Content` data model to JSON text. Supports the workspace's
//! surface: [`Value`], [`Map`], [`json!`], [`to_value`], [`to_string`],
//! [`to_string_pretty`] and [`from_str`].

use serde::{Content, DeError};
use std::fmt;

/// JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map<String, Value>),
}

/// JSON number: unsigned, signed or floating.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

/// Insertion-ordered string-keyed map (association list; the workspace's
/// objects are small).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `key → value`, replacing (in place) any existing entry.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True iff `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Value {
    /// Looks up `key` if the value is an object (mirrors serde_json's
    /// `Value::get` for string keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// The value if it is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::F64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as u64 if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Error type for conversions and parsing.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- Content ↔ Value -------------------------------------------------------

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number::U64(*v)),
        Content::I64(v) => Value::Number(Number::I64(*v)),
        Content::F64(v) => Value::Number(Number::F64(*v)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::U64(n)) => Content::U64(*n),
        Value::Number(Number::I64(n)) => Content::I64(*n),
        Value::Number(Number::F64(n)) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl serde::Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl serde::Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(content_to_value(c))
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.to_content()))
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&content_to_value(&value.to_content()), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&content_to_value(&value.to_content()), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_content(&value_to_content(&value))?)
}

// ---- Writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                if v == v.trunc() && v.abs() < 1e15 {
                    // Keep integral floats distinguishable as floats.
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // JSON has no Inf/NaN; serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|e| Error(format!("bad number {text:?}: {e}")))
    }
}

// ---- json! macro -----------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Object values may be nested
/// `{ ... }` / `[ ... ]` literals or arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let __array: ::std::vec::Vec<$crate::Value> = {
            let mut __array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_internal_array!(__array, $($tt)*);
            __array
        };
        $crate::Value::Array(__array)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __object = $crate::Map::new();
        $crate::json_internal_object!(__object, $($tt)*);
        $crate::Value::Object(__object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    ($map:ident,) => {};
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
        $crate::json_internal_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
        $crate::json_internal_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $crate::json_internal_object!($map, $($($rest)*)?);
    };
    ($map:ident, $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert(::std::string::String::from($key), $crate::json!($value));
        $crate::json_internal_object!($map, $($($rest)*)?);
    };
    ($map:ident) => {};
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    ($array:ident,) => {};
    ($array:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $array.push($crate::json!({ $($inner)* }));
        $crate::json_internal_array!($array, $($($rest)*)?);
    };
    ($array:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $array.push($crate::json!([ $($inner)* ]));
        $crate::json_internal_array!($array, $($($rest)*)?);
    };
    ($array:ident, null $(, $($rest:tt)*)?) => {
        $array.push($crate::Value::Null);
        $crate::json_internal_array!($array, $($($rest)*)?);
    };
    ($array:ident, $value:expr $(, $($rest:tt)*)?) => {
        $array.push($crate::json!($value));
        $crate::json_internal_array!($array, $($($rest)*)?);
    };
    ($array:ident) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let v = json!({
            "a": 1,
            "b": [1.5, "x", null, true],
            "nested": { "k": 2 },
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\"b\nc", "n": -3, "f": 2.5e3}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("s").unwrap().as_str().unwrap(), "a\"b\nc");
        assert_eq!(obj.get("n").unwrap().as_f64().unwrap(), -3.0);
        assert_eq!(obj.get("f").unwrap().as_f64().unwrap(), 2500.0);
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("k".into(), json!(1));
        m.insert("k".into(), json!(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k").unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.1, 1.0, -2.5, 1e-9, 123456789.123] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }
}
