//! Minimal offline replacement for `parking_lot`: thin wrappers over
//! `std::sync` primitives with the parking_lot API (non-poisoning `lock()` /
//! `read()` / `write()` that return guards directly).

use std::sync;

/// Mutual-exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// Reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
