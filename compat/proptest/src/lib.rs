//! Minimal offline replacement for `proptest`.
//!
//! Implements the subset the workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, parameters in both
//! `name: Type` (via [`arbitrary::Arbitrary`]) and `name in strategy` (via
//! [`strategy::Strategy`], where strategies are plain ranges) forms, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! No shrinking: a failing case reports its deterministic per-case seed so it
//! can be replayed by re-running the test. Case count defaults to 64 and can
//! be overridden per-block with `ProptestConfig::with_cases(n)` or globally
//! with the `PROPTEST_CASES` environment variable.

use rand::SeedableRng;

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Test-runner internals (RNG type, failure type and driver loop).
pub mod test_runner {
    /// The generator handed to property bodies.
    pub type TestRng = rand::rngs::StdRng;

    /// Why a test case failed (the error type property bodies return).
    #[derive(Clone, Debug, PartialEq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// Upstream distinguishes rejects from failures; here both abort
        /// the case with a message.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    impl From<String> for TestCaseError {
        fn from(reason: String) -> Self {
            TestCaseError(reason)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(reason: &str) -> Self {
            TestCaseError(reason.to_string())
        }
    }
}

/// FNV-1a, used to derive a stable per-property seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives `property` for the configured number of cases, panicking with the
/// case seed on the first failure. Called by the [`proptest!`] expansion.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut test_runner::TestRng, u64) -> Result<(), test_runner::TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let name_seed = fnv1a(name.as_bytes());
    for case in 0..cases as u64 {
        let seed = name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = test_runner::TestRng::seed_from_u64(seed);
        if let Err(message) = property(&mut rng, case) {
            panic!("property {name} failed at case {case}/{cases} (seed {seed:#018x}): {message}");
        }
    }
}

/// `Arbitrary`: types generatable from nothing but randomness.
pub mod arbitrary {
    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// A type with a canonical "any value" generator.
    pub trait Arbitrary: Sized {
        /// One uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_gen {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }
}

/// `Strategy`: value generators written as expressions (`lo..hi` ranges).
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::distributions::uniform::SampleUniform;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A reusable recipe for generating values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy always producing clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each `fn` becomes a `#[test]` running many
/// random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::run_cases(
                &__config,
                ::core::stringify!($name),
                |__rng: &mut $crate::test_runner::TestRng,
                 __case: u64|
                 -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    let _ = __case;
                    $crate::__proptest_bind! { __rng, $($params)* }
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $var:ident : $ty:ty) => {
        let $var: $ty = <$ty as $crate::arbitrary::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident, $var:ident in $strategy:expr, $($rest:tt)*) => {
        let $var = $crate::strategy::Strategy::sample(&($strategy), $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $var:ident in $strategy:expr) => {
        let $var = $crate::strategy::Strategy::sample(&($strategy), $rng);
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{}` == `{}` ({:?} != {:?})",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __left,
                    __right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(*__left == *__right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed ({:?} != {:?}): {}",
                    __left,
                    __right,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if *__left == *__right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{}` != `{}` (both {:?})",
                    ::core::stringify!($left),
                    ::core::stringify!($right),
                    __left
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn arbitrary_and_strategy_params(a: u32, b in 10u64..20, f in 0.0f64..=1.0) {
            let _ = a;
            prop_assert!((10..20).contains(&b));
            prop_assert!((0.0..=1.0).contains(&f), "f = {}", f);
        }

        fn trailing_comma_params(
            x in 1usize..5,
            y: u64,
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert_ne!(x, 0);
            let _ = y;
        }
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases(
                &ProptestConfig::with_cases(5),
                "always_fails",
                |_rng, _case| Err(crate::test_runner::TestCaseError::fail("boom")),
            );
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(8), "det", |rng, _| {
            first.push(rand::Rng::gen::<u64>(rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(8), "det", |rng, _| {
            second.push(rand::Rng::gen::<u64>(rng));
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), 8);
    }
}
