//! Minimal offline replacement for `serde`.
//!
//! Instead of serde's visitor architecture, this crate uses a concrete
//! self-describing data model: [`Content`]. [`Serialize`] renders a value
//! into a `Content` tree; [`Deserialize`] rebuilds a value from one.
//! `serde_json` (the compat version) converts `Content` to/from JSON text.
//!
//! The `derive` feature forwards to the compat `serde_derive` proc macro,
//! which generates both trait impls for plain (non-generic, attribute-free)
//! structs and enums — exactly the shapes this workspace derives.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// Self-describing value tree — the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String (also unit enum variants).
    Str(String),
    /// Sequence (vectors, tuples, tuple variants).
    Seq(Vec<Content>),
    /// Map with string keys, insertion-ordered (structs, maps, struct
    /// variants).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in map entries; absent keys read as [`Content::Null`]
    /// (so `Option` fields tolerate missing keys).
    pub fn field<'a>(entries: &'a [(String, Content)], key: &str) -> &'a Content {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&Content::Null)
    }

    /// Renders a map key. Panics on non-scalar keys (the derive only maps
    /// scalar-keyed maps).
    pub fn key_string(&self) -> String {
        match self {
            Content::Str(s) => s.clone(),
            Content::U64(v) => v.to_string(),
            Content::I64(v) => v.to_string(),
            Content::Bool(v) => v.to_string(),
            other => panic!("unsupported map key {other:?}"),
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Values renderable into the [`Content`] data model.
pub trait Serialize {
    /// Renders `self`.
    fn to_content(&self) -> Content;
}

/// Values rebuildable from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or explains why it cannot.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_scalar_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    // Stringified map keys round-trip through here.
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|e| DeError::new(format!("integer key: {e}")))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_scalar_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if *self >= 0 {
                    Content::U64(*self as u64)
                } else {
                    Content::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new("integer out of range"))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|e| DeError::new(format!("integer key: {e}")))?,
                    other => return Err(DeError::new(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(v).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
impl_scalar_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected float, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(v) => Ok(*v),
            Content::Str(s) => s
                .parse::<bool>()
                .map_err(|e| DeError::new(format!("bool key: {e}"))),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::new("expected single character")),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}
impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::new(format!("expected null, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::new("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::new("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got {} elements", seq.len())));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(
        entries
            .map(|(k, v)| (k.to_content().key_string(), v.to_content()))
            .collect(),
    )
}

fn map_from_content<K: Deserialize, V: Deserialize>(c: &Content) -> Result<Vec<(K, V)>, DeError> {
    c.as_map()
        .ok_or_else(|| DeError::new("expected map"))?
        .iter()
        .map(|(k, v)| {
            Ok((
                K::from_content(&Content::Str(k.clone()))?,
                V::from_content(v)?,
            ))
        })
        .collect()
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Deterministic output: entries sorted by rendered key.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content().key_string(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(map_from_content::<K, V>(c)?.into_iter().collect())
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Content::Seq(items)
    }
}
impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_missing_fields() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::U64(3)).unwrap(),
            Some(3)
        );
        let entries = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(Content::field(&entries, "missing"), &Content::Null);
    }

    #[test]
    fn maps_with_integer_keys_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(1u32, "y".to_string());
        let back = BTreeMap::<u32, String>::from_content(&m.to_content()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1u32, 2.5f64, "z".to_string());
        let back = <(u32, f64, String)>::from_content(&t.to_content()).unwrap();
        assert_eq!(t, back);
    }
}
