//! Minimal offline replacement for the `rand` crate (0.8 surface).
//!
//! The build environment cannot reach a crates.io mirror, so this crate
//! implements exactly the API the workspace uses: [`RngCore`],
//! [`SeedableRng`] (with `seed_from_u64`), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`] (xoshiro256++ seeded
//! through SplitMix64) and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Determinism is the only contract the workspace relies on: the same seed
//! always yields the same stream. The streams do **not** match upstream
//! `rand` bit-for-bit (upstream uses ChaCha12 for `StdRng`), which is fine —
//! every consumer derives its expectations from the stream itself.

/// Core random-number source: 32/64-bit outputs and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A source constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the scheme upstream `rand` documents for this constructor).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers, `[0, 1)`
    /// for floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution traits and the [`Standard`](distributions::Standard)
/// distribution.
pub mod distributions {
    use super::RngCore;

    /// A way of sampling values of `T` from randomness.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution per type.
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
        u64 => next_u64, usize => next_u64,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform range sampling (`gen_range` support).
    pub mod uniform {
        use super::super::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Types that can be sampled uniformly from a sub-range.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[lo, hi)` (`inclusive` widens to
            /// `[lo, hi]`).
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self;
        }

        /// Range forms accepted by `gen_range`.
        pub trait SampleRange<T> {
            /// Samples one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "cannot sample empty range");
                T::sample_in(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                T::sample_in(rng, lo, hi, true)
            }
        }

        // Unbiased integer sampling via Lemire's widening multiply over the
        // span. The span always fits the next-wider unsigned type.
        macro_rules! impl_sample_uniform_int {
            ($($t:ty => $u:ty, $wide:ty, $next:ident);* $(;)?) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(
                        rng: &mut R, lo: Self, hi: Self, inclusive: bool,
                    ) -> Self {
                        let span = (hi as $u).wrapping_sub(lo as $u) as $wide
                            + if inclusive { 1 } else { 0 };
                        let wide_bits = <$u>::BITS;
                        if span == 0 || span > <$u>::MAX as $wide {
                            // Full type range.
                            return rng.$next() as $t;
                        }
                        let r = rng.$next() as $u as $wide;
                        let hi_part = ((r * span) >> wide_bits) as $u;
                        lo.wrapping_add(hi_part as $t)
                    }
                }
            )*};
        }
        impl_sample_uniform_int! {
            u8 => u32, u64, next_u32;
            u16 => u32, u64, next_u32;
            u32 => u32, u64, next_u32;
            u64 => u64, u128, next_u64;
            usize => u64, u128, next_u64;
            i8 => u32, u64, next_u32;
            i16 => u32, u64, next_u32;
            i32 => u32, u64, next_u32;
            i64 => u64, u128, next_u64;
            isize => u64, u128, next_u64;
        }

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_in<R: RngCore + ?Sized>(
                        rng: &mut R, lo: Self, hi: Self, _inclusive: bool,
                    ) -> Self {
                        let unit = (rng.next_u64() >> 11) as $t
                            * (1.0 / (1u64 << 53) as $t);
                        let v = lo + (hi - lo) * unit;
                        // Guard against rounding up to an exclusive bound.
                        if v >= hi && lo < hi { lo } else { v }
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast and statistically strong; deterministic per seed (the
    /// only property the simulations depend on).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility (upstream's small fast generator).
    pub type SmallRng = StdRng;
}

/// Random slice operations.
pub mod seq {
    use super::distributions::uniform::SampleRange;
    use super::RngCore;

    /// `choose` / `shuffle` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element (`None` if empty).
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: RngCore + ?Sized;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: RngCore + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                self.get((0..self.len()).sample_single(rng))
            }
        }

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore + ?Sized,
        {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::uniform::SampleUniform;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = u32::sample_in(&mut rng, 0, u32::MAX, true);
        let _ = u64::sample_in(&mut rng, 0, u64::MAX, true);
    }

    #[test]
    fn shuffle_and_choose() {
        use super::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
