#!/usr/bin/env bash
# Bench-drift gate: re-derives the deterministic metrics of the committed
# BENCH_repro.json (small-scale timing run + fault-injection sweep +
# continuous-operation engine) and fails if any of them changed. Wall-clock and throughput fields are
# machine-dependent and are filtered out before the comparison — the gate
# guards *results* (message counts, completion rates, imbalance, repair
# work), not speed.
#
#   scripts/bench_drift.sh
#
# Expects `cargo build --release` to have run already (CI does this in
# the check job; locally run it first or let this script pay the build).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x target/release/repro ]]; then
  echo "==> building repro"
  cargo build --release -p proxbal-bench
fi

REPRO="$PWD/target/release/repro"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Re-derive the small-scale timing entry and the fault sweep in a scratch
# directory so the committed file is never touched.
(cd "$WORK" \
  && timeout 900 "$REPRO" --timing --scale small > /dev/null \
  && timeout 900 "$REPRO" --faults 0.1 --scale small > /dev/null \
  && timeout 900 "$REPRO" engine --scale small > /dev/null)

# Strip fields that legitimately vary run-to-run or machine-to-machine.
VOLATILE='"(wall_s|total_wall_s|graphs_per_s|threads|peak_rss_bytes|prepare_wall_s|aware_wall_s|ignorant_wall_s|tree_wall_s|lbi_wall_s|aggregate_wall_s|vsa_wall_s|transfer_wall_s|alloc_count|alloc_bytes|peak_alloc_bytes)"'
filter() {
  python3 -c '
import json, re, sys
volatile = re.compile(sys.argv[2])
def scrub(v):
    if isinstance(v, dict):
        return {k: scrub(x) for k, x in v.items() if not volatile.fullmatch(k)}
    if isinstance(v, list):
        return [scrub(x) for x in v]
    return v
doc = scrub(json.load(open(sys.argv[1])))
json.dump(doc, sys.stdout, indent=2, sort_keys=True)
' "$1" 'wall_s|total_wall_s|graphs_per_s|threads|peak_rss_bytes|prepare_wall_s|aware_wall_s|ignorant_wall_s|tree_wall_s|lbi_wall_s|aggregate_wall_s|vsa_wall_s|transfer_wall_s|alloc_count|alloc_bytes|peak_alloc_bytes'
}

# Compare only the entries the scratch run regenerated (small + faults):
# full, xl and xl2 are too slow for a per-PR gate and are covered by nightly
# (scripts/check.sh --xl-smoke re-derives the xl2 pipeline at reduced peers).
pick() {
  python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
sub = {k: doc[k] for k in ("small", "faults", "engine") if k in doc}
json.dump(sub, open(sys.argv[2], "w"), indent=2)
' "$1" "$2"
}

# The xl and xl2 entries are not re-derived here, but their presence and
# shape are still gated: a PR that drops the million-peer entry or strips
# a deterministic field from it fails fast instead of silently un-gating
# the nightly comparison.
python3 -c '
import json, sys
doc = json.load(open("BENCH_repro.json"))
entry = doc.get("xl2")
if entry is None:
    sys.exit("BENCH_repro.json: missing the xl2 (million-peer) entry")
required = ("seed", "peers", "underlay_nodes", "virtual_servers",
            "oracle_capacity", "shards", "refine_sources", "lbi_messages",
            "vsa_record_hops", "aware_frac2", "aware_frac10", "heavy_after",
            "alloc_count", "alloc_bytes", "peak_alloc_bytes")
missing = [k for k in required if k not in entry]
if missing:
    sys.exit(f"BENCH_repro.json: xl2 entry lacks deterministic fields: {missing}")
if entry["peers"] != 1048576:
    sys.exit("BENCH_repro.json: xl2 entry is not the 1M-peer run (%s peers)" % entry["peers"])
'

pick BENCH_repro.json "$WORK/committed_sub.json"
pick "$WORK/BENCH_repro.json" "$WORK/fresh_sub.json"
filter "$WORK/committed_sub.json" > "$WORK/committed.txt"
filter "$WORK/fresh_sub.json" > "$WORK/fresh.txt"

if ! diff -u "$WORK/committed.txt" "$WORK/fresh.txt"; then
  echo >&2
  echo "BENCH_repro.json drift: deterministic metrics changed." >&2
  echo "If the change is intentional, regenerate the entries with:" >&2
  echo "  ./target/release/repro --timing --scale small" >&2
  echo "  ./target/release/repro --faults 0.1 --scale small" >&2
  echo "  ./target/release/repro engine --scale small" >&2
  echo "and commit the updated BENCH_repro.json." >&2
  exit 1
fi

echo "==> bench metrics match the committed BENCH_repro.json"
