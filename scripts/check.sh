#!/usr/bin/env bash
# Pre-PR gate: everything that must be green before a change ships.
#
#   scripts/check.sh [--xl-smoke] [--faults-smoke] [--engine-smoke] [--round-smoke]
#                    [--analyze-smoke] [--profile-smoke]
#
# Runs, in order:
#   1. tier-1 verify (ROADMAP.md): release build + root test suite
#   2. the full workspace test suite
#   3. formatting check (no diffs allowed)
#   4. clippy over every target, warnings denied
#   5. trace smoke: `repro --fig 7 --scale small --trace` at 1 and 8
#      threads; the chrome trace and the ndjson event log must be
#      byte-identical across thread counts
#
# --xl-smoke additionally runs the 65k-peer / ts50k scale pass
# (`repro --scale xl --fig 7`) under a generous timeout. It takes a few
# minutes and needs ~2 GiB of RAM, so it's opt-in rather than part of
# the default gate.
#
# --faults-smoke additionally runs the fault-injection sweep at small
# scale twice (1 thread and 8 threads) and fails if the two runs don't
# produce byte-identical sweep tables — the determinism contract of the
# fault layer.
#
# --engine-smoke additionally runs the continuous-operation engine
# (`repro engine --scale small`) traced at 1 and 8 threads and fails
# unless the per-epoch time series, the BENCH entry and both trace files
# are byte-identical — the determinism contract of the engine.
#
# --round-smoke additionally runs a reduced-peers xl2 single round traced
# at 1 and 8 threads and fails unless stdout (walls scrubbed) and both
# trace files are byte-identical — the determinism contract of the
# intra-round parallel sections (LBI generation, aggregation,
# classification, shed/light extraction, transfer refinement).
#
# --analyze-smoke additionally runs the committed engine scenario once,
# evaluates the committed behavioral gates (`gates/*.toml`) against its
# report + trace at 1, 2 and 8 analyzer threads (all must pass, all
# byte-identical), and then checks the negative path: an impossible gate
# must exit nonzero with a violation table naming it.
#
# --profile-smoke additionally runs a profiled reduced-peers xl2
# (`repro xl2 --peers 16384 --profile`) at 1 and 8 threads and fails
# unless the virtual-time flamegraph artifacts (collapsed stacks +
# speedscope JSON) are byte-identical across thread counts and the
# volatile artifacts exist — the determinism contract of the profiling
# layer (DESIGN.md §5c).
set -euo pipefail
cd "$(dirname "$0")/.."

XL_SMOKE=0
FAULTS_SMOKE=0
ENGINE_SMOKE=0
ROUND_SMOKE=0
ANALYZE_SMOKE=0
PROFILE_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --xl-smoke) XL_SMOKE=1 ;;
    --faults-smoke) FAULTS_SMOKE=1 ;;
    --engine-smoke) ENGINE_SMOKE=1 ;;
    --round-smoke) ROUND_SMOKE=1 ;;
    --analyze-smoke) ANALYZE_SMOKE=1 ;;
    --profile-smoke) PROFILE_SMOKE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

REPRO="$PWD/target/release/repro"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Drops everything that may legitimately differ between two xl2 runs:
# trailing per-line wall-clocks, the prepare/total summary lines, and the
# wrote-filename lines (trace paths differ between the compared runs).
scrub_xl2() { sed -E 's/ +[0-9.]+s$//' "$1" | grep -v -e "^prepare:" -e "^total:" -e "^wrote "; }

echo "==> trace smoke: repro --fig 7 --scale small --trace (threads 1 vs 8)"
(cd "$SMOKE_DIR" && timeout 600 "$REPRO" --fig 7 --scale small --threads 1 --trace t1.json > trace1.txt \
                 && timeout 600 "$REPRO" --fig 7 --scale small --threads 8 --trace t8.json > trace8.txt)
cmp "$SMOKE_DIR/t1.json" "$SMOKE_DIR/t8.json" || {
  echo "chrome trace differs across thread counts" >&2; exit 1; }
cmp "$SMOKE_DIR/t1.ndjson" "$SMOKE_DIR/t8.ndjson" || {
  echo "trace event log differs across thread counts" >&2; exit 1; }
# Stdout (summary table included) is deterministic too; only the
# wall-clock line and the wrote-filename line may differ.
diff <(grep -v -e "wall" -e "^wrote " "$SMOKE_DIR/trace1.txt") \
     <(grep -v -e "wall" -e "^wrote " "$SMOKE_DIR/trace8.txt") || {
  echo "traced repro output differs across thread counts" >&2; exit 1; }

if [[ "$XL_SMOKE" == "1" ]]; then
  echo "==> xl smoke: repro --scale xl --fig 7"
  timeout 1800 ./target/release/repro --scale xl --fig 7
  # xl2 at reduced peers: the full sharded + landmark-approximate pipeline,
  # byte-identical across thread counts. A --peers override never writes a
  # BENCH entry, so stdout is the whole contract (minus walls and RSS).
  echo "==> xl2 smoke: repro xl2 --peers 65536 (threads 1 vs 8)"
  (cd "$SMOKE_DIR" && timeout 1800 "$REPRO" xl2 --peers 65536 --threads 1 > xl2_t1.txt \
                   && timeout 1800 "$REPRO" xl2 --peers 65536 --threads 8 > xl2_t8.txt)
  diff <(scrub_xl2 "$SMOKE_DIR/xl2_t1.txt") <(scrub_xl2 "$SMOKE_DIR/xl2_t8.txt") || {
    echo "xl2 output differs across thread counts" >&2; exit 1; }
fi

if [[ "$FAULTS_SMOKE" == "1" ]]; then
  echo "==> faults smoke: repro --faults 0.1 --scale small (threads 1 vs 8)"
  (cd "$SMOKE_DIR" && timeout 600 "$REPRO" --faults 0.1 --scale small --threads 1 > t1.txt \
                   && mv BENCH_repro.json bench_t1.json \
                   && timeout 600 "$REPRO" --faults 0.1 --scale small --threads 8 > t8.txt \
                   && mv BENCH_repro.json bench_t8.json)
  # The sweep table is deterministic; only the wall-clock line may differ.
  diff <(grep -v "wall" "$SMOKE_DIR/t1.txt") <(grep -v "wall" "$SMOKE_DIR/t8.txt") || {
    echo "fault sweep output differs across thread counts" >&2; exit 1; }
  diff "$SMOKE_DIR/bench_t1.json" "$SMOKE_DIR/bench_t8.json" || {
    echo "fault sweep JSON differs across thread counts" >&2; exit 1; }
fi

if [[ "$ROUND_SMOKE" == "1" ]]; then
  echo "==> round smoke: repro xl2 --peers 16384 --trace (threads 1 vs 8)"
  (cd "$SMOKE_DIR" && timeout 900 "$REPRO" xl2 --peers 16384 --threads 1 --trace r1.json > round_t1.txt \
                   && timeout 900 "$REPRO" xl2 --peers 16384 --threads 8 --trace r8.json > round_t8.txt)
  cmp "$SMOKE_DIR/r1.json" "$SMOKE_DIR/r8.json" || {
    echo "round chrome trace differs across thread counts" >&2; exit 1; }
  cmp "$SMOKE_DIR/r1.ndjson" "$SMOKE_DIR/r8.ndjson" || {
    echo "round trace event log differs across thread counts" >&2; exit 1; }
  diff <(scrub_xl2 "$SMOKE_DIR/round_t1.txt") <(scrub_xl2 "$SMOKE_DIR/round_t8.txt") || {
    echo "round output differs across thread counts" >&2; exit 1; }
  # The intra-round spans actually landed in the event log.
  for span in round/lbi round/aggregate round/vsa round/transfer; do
    grep -q "$span" "$SMOKE_DIR/r1.ndjson" || {
      echo "round smoke: span $span missing from the trace" >&2; exit 1; }
  done
fi

if [[ "$ENGINE_SMOKE" == "1" ]]; then
  echo "==> engine smoke: repro engine --scale small (threads 1 vs 8)"
  (cd "$SMOKE_DIR" && timeout 600 "$REPRO" engine --scale small --epochs 12 --threads 1 --trace e1.json > e1.txt \
                   && mv BENCH_repro.json bench_e1.json \
                   && timeout 600 "$REPRO" engine --scale small --epochs 12 --threads 8 --trace e8.json > e8.txt \
                   && mv BENCH_repro.json bench_e8.json)
  # The per-epoch series is deterministic; only the wall-clock line, the
  # wrote-filename line (trace paths differ between the compared runs) and
  # the volatile wall/threads fields of the BENCH entry may differ.
  diff <(grep -v -e "wall" -e "^wrote " "$SMOKE_DIR/e1.txt") \
       <(grep -v -e "wall" -e "^wrote " "$SMOKE_DIR/e8.txt") || {
    echo "engine time series differs across thread counts" >&2; exit 1; }
  diff <(grep -v -E '"(total_wall_s|threads)"' "$SMOKE_DIR/bench_e1.json") \
       <(grep -v -E '"(total_wall_s|threads)"' "$SMOKE_DIR/bench_e8.json") || {
    echo "engine BENCH entry differs across thread counts" >&2; exit 1; }
  cmp "$SMOKE_DIR/e1.json" "$SMOKE_DIR/e8.json" || {
    echo "engine chrome trace differs across thread counts" >&2; exit 1; }
  cmp "$SMOKE_DIR/e1.ndjson" "$SMOKE_DIR/e8.ndjson" || {
    echo "engine trace event log differs across thread counts" >&2; exit 1; }
fi

if [[ "$PROFILE_SMOKE" == "1" ]]; then
  echo "==> profile smoke: repro xl2 --peers 16384 --profile (threads 1 vs 8)"
  (cd "$SMOKE_DIR" && timeout 900 "$REPRO" xl2 --peers 16384 --threads 1 --profile p1 > prof_t1.txt \
                   && timeout 900 "$REPRO" xl2 --peers 16384 --threads 8 --profile p8 --progress > prof_t8.txt)
  # Virtual-time flamegraphs are pure functions of the trace: byte-identical.
  cmp "$SMOKE_DIR/p1/flame.virt.folded" "$SMOKE_DIR/p8/flame.virt.folded" || {
    echo "virtual-time folded stacks differ across thread counts" >&2; exit 1; }
  cmp "$SMOKE_DIR/p1/flame.virt.speedscope.json" "$SMOKE_DIR/p8/flame.virt.speedscope.json" || {
    echo "virtual-time speedscope profile differs across thread counts" >&2; exit 1; }
  cmp "$SMOKE_DIR/p1/trace_summary.txt" "$SMOKE_DIR/p8/trace_summary.txt" || {
    echo "trace summary differs across thread counts" >&2; exit 1; }
  # Volatile artifacts exist and carry the profiled phases.
  for f in flame.wall.folded resources.txt; do
    [[ -s "$SMOKE_DIR/p1/$f" ]] || { echo "profile smoke: $f missing or empty" >&2; exit 1; }
  done
  grep -q "^xl2" "$SMOKE_DIR/p1/resources.txt" || {
    echo "profile smoke: xl2 phase missing from resources.txt" >&2; exit 1; }
  grep -q "round/lbi" "$SMOKE_DIR/p1/flame.virt.folded" || {
    echo "profile smoke: round spans missing from the flamegraph" >&2; exit 1; }
  # Stdout stays deterministic modulo walls and wrote-filename lines.
  diff <(scrub_xl2 "$SMOKE_DIR/prof_t1.txt") <(scrub_xl2 "$SMOKE_DIR/prof_t8.txt") || {
    echo "profiled xl2 output differs across thread counts" >&2; exit 1; }
fi

if [[ "$ANALYZE_SMOKE" == "1" ]]; then
  echo "==> analyze smoke: committed engine scenario vs gates/ (threads 1/2/8)"
  GATES="$PWD/gates"
  (cd "$SMOKE_DIR" && timeout 900 "$REPRO" engine --trace ae.json --json ae-report.json > /dev/null)
  for t in 1 2 8; do
    (cd "$SMOKE_DIR" && "$REPRO" analyze ae-report.json ae.ndjson \
        --gates "$GATES" --out "gates_t$t.json" --threads "$t" > "analyze_t$t.txt") || {
      echo "committed gates failed at $t analyzer thread(s)" >&2
      cat "$SMOKE_DIR/analyze_t$t.txt" >&2
      exit 1
    }
  done
  for t in 2 8; do
    cmp "$SMOKE_DIR/analyze_t1.txt" "$SMOKE_DIR/analyze_t$t.txt" || {
      echo "analyze table differs between 1 and $t threads" >&2; exit 1; }
    cmp "$SMOKE_DIR/gates_t1.json" "$SMOKE_DIR/gates_t$t.json" || {
      echo "analyze gate report differs between 1 and $t threads" >&2; exit 1; }
  done
  # Negative path: a violated gate must fail loudly and name itself.
  printf '[[gate]]\nname = "impossible"\nsource = "report"\nkind = "scalar"\nexpr = "max(heavy)"\nop = "<="\nthreshold = -1\n' \
    > "$SMOKE_DIR/bad_gate.toml"
  if (cd "$SMOKE_DIR" && "$REPRO" analyze ae-report.json --gates bad_gate.toml > bad.txt); then
    echo "analyze smoke: impossible gate did not fail the run" >&2; exit 1
  fi
  grep -q "impossible" "$SMOKE_DIR/bad.txt" && grep -q "FAIL" "$SMOKE_DIR/bad.txt" || {
    echo "analyze smoke: violation table does not name the broken gate" >&2; exit 1; }
fi

echo "==> all checks passed"
