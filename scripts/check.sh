#!/usr/bin/env bash
# Pre-PR gate: everything that must be green before a change ships.
#
#   scripts/check.sh
#
# Runs, in order:
#   1. tier-1 verify (ROADMAP.md): release build + root test suite
#   2. the full workspace test suite
#   3. formatting check (no diffs allowed)
#   4. clippy over every target, warnings denied
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
