#!/usr/bin/env bash
# Pre-PR gate: everything that must be green before a change ships.
#
#   scripts/check.sh [--xl-smoke]
#
# Runs, in order:
#   1. tier-1 verify (ROADMAP.md): release build + root test suite
#   2. the full workspace test suite
#   3. formatting check (no diffs allowed)
#   4. clippy over every target, warnings denied
#
# --xl-smoke additionally runs the 65k-peer / ts50k scale pass
# (`repro --scale xl --fig 7`) under a generous timeout. It takes a few
# minutes and needs ~2 GiB of RAM, so it's opt-in rather than part of
# the default gate.
set -euo pipefail
cd "$(dirname "$0")/.."

XL_SMOKE=0
for arg in "$@"; do
  case "$arg" in
    --xl-smoke) XL_SMOKE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$XL_SMOKE" == "1" ]]; then
  echo "==> xl smoke: repro --scale xl --fig 7"
  timeout 1800 ./target/release/repro --scale xl --fig 7
fi

echo "==> all checks passed"
