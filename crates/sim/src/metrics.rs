//! Measurement helpers shared by tests, examples and the figure
//! regenerators.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Load moved per physical distance — the data behind Figures 7 and 8
/// ("the x-axis denotes the distance of virtual server transferring in terms
/// of hops, while the y-axis represents the percentage of total moved
/// load").
///
/// ```
/// use proxbal_sim::metrics::DistanceHistogram;
///
/// let mut h = DistanceHistogram::new();
/// h.add(2, 70.0);  // 70 units of load moved over 2 hops
/// h.add(12, 30.0);
/// assert!((h.fraction_within(2) - 0.7).abs() < 1e-12);
/// assert!((h.mean_distance() - 5.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DistanceHistogram {
    bins: BTreeMap<u32, f64>,
    total: f64,
}

impl DistanceHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `load` moved over `distance` latency units.
    pub fn add(&mut self, distance: u32, load: f64) {
        assert!(load >= 0.0);
        *self.bins.entry(distance).or_insert(0.0) += load;
        self.total += load;
    }

    /// Total load recorded.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Fraction of total moved load transferred over distance `≤ d`
    /// (0 if the histogram is empty).
    pub fn fraction_within(&self, d: u32) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let within: f64 = self.bins.range(..=d).map(|(_, &l)| l).sum();
        within / self.total
    }

    /// `(distance, fraction-of-total)` pairs — Figure 7(a)'s series.
    pub fn distribution(&self) -> Vec<(u32, f64)> {
        if self.total == 0.0 {
            return Vec::new();
        }
        self.bins
            .iter()
            .map(|(&d, &l)| (d, l / self.total))
            .collect()
    }

    /// `(distance, cumulative-fraction)` pairs — Figure 7(b)'s CDF.
    pub fn cdf(&self) -> Vec<(u32, f64)> {
        if self.total == 0.0 {
            return Vec::new();
        }
        let mut acc = 0.0;
        self.bins
            .iter()
            .map(|(&d, &l)| {
                acc += l;
                (d, acc / self.total)
            })
            .collect()
    }

    /// Folds another histogram into this one (used to pool the paper's
    /// "10 graphs each" replications).
    pub fn merge(&mut self, other: &DistanceHistogram) {
        for (&d, &l) in &other.bins {
            *self.bins.entry(d).or_insert(0.0) += l;
        }
        self.total += other.total;
    }

    /// Load-weighted mean transfer distance.
    pub fn mean_distance(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.bins
            .iter()
            .map(|(&d, &l)| f64::from(d) * l)
            .sum::<f64>()
            / self.total
    }
}

/// Five-number-plus-mean summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values` (returns zeros for an empty slice).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            max: *sorted.last().unwrap(),
        }
    }
}

/// The `p`-th percentile (0–100) of an **already sorted** sample, by linear
/// interpolation. Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Gini coefficient of a non-negative sample: 0 = perfectly even,
/// → 1 = concentrated. Used to quantify (im)balance of unit loads.
pub fn gini(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(values.iter().all(|&v| v >= 0.0), "gini needs non-negatives");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_fraction_and_cdf() {
        let mut h = DistanceHistogram::new();
        h.add(1, 50.0);
        h.add(2, 30.0);
        h.add(10, 20.0);
        assert_eq!(h.total(), 100.0);
        assert!((h.fraction_within(1) - 0.5).abs() < 1e-12);
        assert!((h.fraction_within(2) - 0.8).abs() < 1e-12);
        assert!((h.fraction_within(9) - 0.8).abs() < 1e-12);
        assert!((h.fraction_within(10) - 1.0).abs() < 1e-12);
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[2], (10, 1.0));
        assert!((h.mean_distance() - (50.0 + 60.0 + 200.0) / 100.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = DistanceHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.fraction_within(100), 0.0);
        assert!(h.cdf().is_empty());
        assert_eq!(h.mean_distance(), 0.0);
    }

    #[test]
    fn histogram_zero_total_never_divides() {
        // Bins may exist with zero total (only zero-load transfers were
        // recorded): every ratio must still come back 0/empty, not NaN.
        let mut h = DistanceHistogram::new();
        h.add(5, 0.0);
        h.add(9, 0.0);
        assert!(h.is_empty());
        assert_eq!(h.fraction_within(0), 0.0);
        assert_eq!(h.fraction_within(u32::MAX), 0.0);
        assert_eq!(h.mean_distance(), 0.0);
        assert!(h.distribution().is_empty());
        assert!(h.cdf().is_empty());
        assert!(!h.fraction_within(5).is_nan());
        assert!(!h.mean_distance().is_nan());
    }

    #[test]
    fn histogram_merge_handles_empty_sides() {
        let mut empty = DistanceHistogram::new();
        let mut full = DistanceHistogram::new();
        full.add(2, 70.0);
        full.add(12, 30.0);

        // empty ← full keeps full's stats; full ← empty changes nothing.
        empty.merge(&full);
        assert_eq!(empty.total(), 100.0);
        assert!((empty.fraction_within(2) - 0.7).abs() < 1e-12);
        let before = full.cdf();
        full.merge(&DistanceHistogram::new());
        assert_eq!(full.cdf(), before);

        // empty ← empty stays fully guarded.
        let mut e2 = DistanceHistogram::new();
        e2.merge(&DistanceHistogram::new());
        assert!(e2.is_empty());
        assert_eq!(e2.mean_distance(), 0.0);
    }

    #[test]
    fn histogram_accumulates_same_bin() {
        let mut h = DistanceHistogram::new();
        h.add(3, 1.0);
        h.add(3, 2.0);
        assert_eq!(h.distribution(), vec![(3, 1.0)]);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 100.0), 30.0);
        assert!((percentile_sorted(&v, 50.0) - 20.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 25.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-12);
        // All mass on one of many: → (n-1)/n.
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!((concentrated - 0.75).abs() < 1e-12);
        // More even ⇒ smaller gini.
        assert!(gini(&[1.0, 1.0, 2.0]) < gini(&[0.1, 0.1, 10.0]));
    }
}
