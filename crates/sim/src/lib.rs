//! Experiment harness for the proxbal reproduction: deterministic scenario
//! construction, metrics (CDFs, Gini, distance histograms), a discrete-event
//! engine for churn and protocol-latency studies, and the experiment
//! drivers behind every figure of the paper.
//!
//! * [`Scenario`] / [`Prepared`] — declarative experiment setup (overlay
//!   size, workload, topology, balancer config) with seeded determinism.
//! * [`metrics`] — distance-weighted load histograms (Figures 7/8), unit
//!   load scatters (Figure 4), per-capacity-class summaries (Figures 5/6),
//!   Gini/percentile helpers.
//! * [`des`] — a minimal discrete-event engine (time-ordered queue).
//! * [`churn`] — Poisson join/crash churn driving K-nary-tree maintenance,
//!   for the self-repair claims of §3.1.
//! * [`engine`] — the continuous-operation engine: churn, drift, faults,
//!   tree maintenance and periodic + emergency balancing composed on one
//!   virtual clock.
//! * [`experiments`] — one driver per paper figure/claim; the `repro`
//!   binary and the Criterion benches call these.

pub mod churn;
pub mod des;
pub mod drift;
pub mod engine;
pub mod experiments;
pub mod faults;
pub mod latency;
pub mod metrics;
pub mod parallel;
pub mod protocol;
mod scenario;
pub mod shard;

pub use engine::{
    run_engine, run_engine_traced, run_engine_with, EngineConfig, EngineReport, EpochSample,
};
pub use scenario::{
    DistanceMode, Prepared, Scenario, ScenarioBuilder, TopologyKind, XL2_ORACLE_CAPACITY,
    XL_ORACLE_CAPACITY,
};
