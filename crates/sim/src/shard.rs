//! Sharded scenario preparation for the million-peer runs.
//!
//! The serial [`Scenario::prepare`](crate::Scenario::prepare) path walks one
//! RNG through topology generation, a million `join_peer` calls, landmark
//! selection and load generation — tens of seconds of single-threaded setup
//! at xl2 scale. This module partitions the expensive parts across
//! `scenario.shards` independent workers:
//!
//! - **Ring positions** — each shard owns a contiguous peer range and draws
//!   its virtual-server positions from a shard-indexed RNG
//!   ([`crate::parallel::map_indexed`], so slot order never depends on the
//!   thread count). The draws are replayed serially in peer order through
//!   [`ChordNetwork::join_peer_at`]; the rare position collision falls back
//!   to the master RNG, exactly like the serial path resamples.
//! - **Landmark vectors** — per-shard node ranges of the hop-metric
//!   landmark matrix are transposed in parallel and concatenated in shard
//!   order ([`LandmarkOracle::from_parts`]).
//! - **KT subtrees** — [`build_tree_sharded`] grows the top of the tree
//!   serially ([`KTree::build_prefix`]), expands the frontier regions as
//!   independent fragments in bounded batches, and grafts them back in
//!   frontier order, so arena numbering is a pure function of the inputs.
//!
//! Everything that is inherently sequential — stub attachment order,
//! landmark selection, per-VS load sampling (ring-order dependent) — stays
//! on the master RNG in the serial order. The result is deterministic in
//! `(scenario, shards)` and byte-identical at any `--threads`.

use crate::parallel;
use crate::scenario::{DistanceMode, Prepared, Scenario, TopologyKind};
use proxbal_chord::ChordNetwork;
use proxbal_core::LoadState;
use proxbal_id::Id;
use proxbal_ktree::KTree;
use proxbal_topology::{
    select_landmarks, DistanceOracle, LandmarkOracle, NodeId, TransitStubConfig,
    TransitStubTopology,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// RNG stream for preparation shard `s`: the same seed/label mixer as
/// [`Prepared::derived_rng`], with a label namespace reserved for shards.
fn shard_rng(seed: u64, s: usize) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (0xA11C << 32 | s as u64))
}

/// Sharded counterpart of the serial preparation path; dispatched to by
/// [`Scenario::prepare`](crate::Scenario::prepare) whenever
/// `scenario.shards > 0`.
pub fn prepare_sharded(scenario: &Scenario, threads: usize) -> Prepared {
    prepare_sharded_run(scenario, threads, &proxbal_profile::NullSink)
}

/// [`prepare_sharded`] with per-phase heartbeat lines on `progress`
/// (topology, position batches, join replay, attach/landmarks, loads,
/// landmark vectors). Heartbeats never change the prepared result.
pub fn prepare_sharded_run(
    scenario: &Scenario,
    threads: usize,
    progress: &dyn proxbal_profile::ProgressSink,
) -> Prepared {
    let shards = scenario.shards.max(1);
    let mut rng = StdRng::seed_from_u64(scenario.seed);

    let topo = match scenario.topology {
        TopologyKind::Ts5kLarge => Some(TransitStubTopology::generate(
            TransitStubConfig::ts5k_large(),
            &mut rng,
        )),
        TopologyKind::Ts5kSmall => Some(TransitStubTopology::generate(
            TransitStubConfig::ts5k_small(),
            &mut rng,
        )),
        TopologyKind::Ts50k => Some(TransitStubTopology::generate(
            TransitStubConfig::ts50k(),
            &mut rng,
        )),
        TopologyKind::Tiny => Some(TransitStubTopology::generate(
            TransitStubConfig::tiny(),
            &mut rng,
        )),
        TopologyKind::None => None,
    };
    if let Some(ref topo) = topo {
        progress.event(&format!(
            "prepare: topology generated ({} nodes)",
            topo.graph.node_count()
        ));
    }

    // Per-shard position batches: shard `s` owns the contiguous peer range
    // [s·chunk, min((s+1)·chunk, peers)) and draws every position of every
    // peer in that range from its own stream. Pure function of the index.
    let peers = scenario.peers;
    let vs_per_peer = scenario.vs_per_peer;
    let chunk = peers.div_ceil(shards);
    let seed = scenario.seed;
    let batches: Vec<Vec<Id>> = parallel::map_indexed(shards, threads, |s| {
        let start = s * chunk;
        let end = peers.min(start + chunk);
        let mut shard_rng = shard_rng(seed, s);
        let mut out = Vec::with_capacity((end - start).saturating_mul(vs_per_peer));
        for _ in start..end {
            for _ in 0..vs_per_peer {
                out.push(Id::new(shard_rng.gen()));
            }
        }
        out
    });

    progress.event(&format!(
        "prepare: {shards} position batches drawn for {peers} peers"
    ));

    // Serial replay in peer order: the ring insert order (and therefore
    // every VsId/PeerId) is fixed by the batches alone. Collisions resample
    // from the master RNG — serial, hence deterministic.
    let mut net = ChordNetwork::new();
    let mut joined = 0usize;
    for batch in &batches {
        for positions in batch.chunks(vs_per_peer.max(1)) {
            net.join_peer_at(positions, &mut rng);
            joined += 1;
            if joined.is_multiple_of(262_144) {
                progress.event(&format!("prepare: joined {joined}/{peers} peers"));
            }
        }
    }
    drop(batches);

    let (oracle, landmarks) = if let Some(ref topo) = topo {
        let mut stubs = topo.stub_nodes();
        assert!(!stubs.is_empty());
        stubs.shuffle(&mut rng);
        for (i, p) in net.alive_peers().into_iter().enumerate() {
            net.attach(p, stubs[i % stubs.len()]);
        }
        let landmarks = select_landmarks(topo, scenario.landmarks, &mut rng);
        let cap = scenario.oracle_capacity;
        let oracle = DistanceOracle::with_capacity(Arc::new(topo.graph.clone()), cap);
        let latency_oracle =
            DistanceOracle::with_capacity(Arc::new(topo.latency_graph.clone()), cap);
        latency_oracle.precompute(&landmarks, threads);
        if cap > 0 {
            for &l in &landmarks {
                latency_oracle.pin(l);
            }
        }
        progress.event(&format!(
            "prepare: peers attached, {} landmark rows precomputed",
            landmarks.len()
        ));
        (Some((oracle, latency_oracle)), landmarks)
    } else {
        (None, Vec::new())
    };

    let loads = LoadState::generate(&net, &scenario.capacity, &scenario.load, &mut rng);
    progress.event("prepare: load state generated");

    let (oracle, latency_oracle) = match oracle {
        Some((a, b)) => (Some(a), Some(b)),
        None => (None, None),
    };
    let hop_landmarks = match (scenario.distance_mode, oracle.as_ref()) {
        (DistanceMode::Approximate, Some(oracle)) if !landmarks.is_empty() => {
            let lm = build_landmarks_sharded(oracle, &landmarks, shards, threads);
            progress.event("prepare: hop-metric landmark vectors built");
            Some(lm)
        }
        _ => None,
    };
    Prepared {
        scenario: scenario.clone(),
        net,
        loads,
        topo,
        oracle,
        latency_oracle,
        landmarks,
        hop_landmarks,
        rng,
        threads,
    }
}

/// Builds the hop-metric [`LandmarkOracle`] by transposing per-shard node
/// ranges of the landmark rows in parallel and concatenating the slices in
/// shard order — the same matrix [`LandmarkOracle::build`] produces.
pub fn build_landmarks_sharded(
    oracle: &DistanceOracle,
    landmarks: &[NodeId],
    shards: usize,
    threads: usize,
) -> LandmarkOracle {
    assert!(!landmarks.is_empty(), "need at least one landmark");
    let shards = shards.max(1);
    oracle.precompute(landmarks, threads);
    let rows: Vec<_> = landmarks.iter().map(|&l| oracle.row(l)).collect();
    let nodes = oracle.graph().node_count();
    let m = landmarks.len();
    let chunk = nodes.div_ceil(shards);
    let slices = parallel::map_indexed(shards, threads, |s| {
        let start = s * chunk;
        let end = nodes.min(start + chunk);
        let mut out = Vec::with_capacity((end - start) * m);
        for node in start..end {
            for row in &rows {
                out.push(row.get(node));
            }
        }
        out
    });
    let mut vectors = Vec::with_capacity(nodes * m);
    for slice in slices {
        vectors.extend(slice);
    }
    LandmarkOracle::from_parts(landmarks.to_vec(), nodes, vectors)
}

/// Builds the K-nary tree by growing the top `split_depth` levels serially
/// ([`KTree::build_prefix`]) and expanding each frontier region as an
/// independent fragment, grafted back in frontier order.
///
/// Fragments are built in bounded batches (a few per worker) so the
/// transient footprint is a handful of fragments, not the whole frontier at
/// once. Arena numbering is a pure function of `(net, k, split_depth)` —
/// never of `threads` — and the composed tree is node-for-node the tree
/// [`KTree::build`] grows (only slot numbering differs).
pub fn build_tree_sharded(net: &ChordNetwork, k: usize, split_depth: u32, threads: usize) -> KTree {
    let (mut tree, frontier) = KTree::build_prefix(net, k, split_depth);
    let work: Vec<_> = frontier
        .into_iter()
        .map(|id| {
            let node = tree.node(id);
            (id, node.region, node.depth)
        })
        .collect();
    let batch = (threads.max(1) * 2).max(4);
    for chunk in work.chunks(batch) {
        let fragments = parallel::map_items(chunk, threads, |_, &(_, region, depth)| {
            KTree::build_fragment(net, k, region, depth)
        });
        for (&(id, _, _), fragment) in chunk.iter().zip(fragments) {
            tree.graft(id, fragment);
        }
    }
    tree
}
