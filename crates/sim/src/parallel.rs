//! Deterministic parallel sweep engine — re-exported from
//! [`proxbal_parallel`].
//!
//! The engine started life here, driving the multi-run experiment sweeps
//! (Figure 7/8 graph replication, the ablation sweep, scaling grids, the
//! `repro` phases). It now lives in its own zero-dep crate so the inner
//! layers (`core`, `ktree`, `topology`) can parallelize *inside* a
//! balancing round without depending on the simulator; this module keeps
//! the historical `proxbal_sim::parallel::…` paths working.

pub use proxbal_parallel::{
    chunk_ranges, default_threads, fold_chunked, map_chunked, map_indexed, map_indexed_traced,
    map_items, map_items_traced,
};
