//! A minimal discrete-event engine: a time-ordered queue with stable FIFO
//! tie-breaking, used by the churn and latency simulations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in abstract latency units.
pub type SimTime = u64;

/// Per-message retry schedule with exponential backoff: attempt `n`
/// (0-based) times out after `base_timeout · backoff^n`, and a sender gives
/// up on an edge after `max_retries` failed attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Timeout of the first attempt.
    pub base_timeout: SimTime,
    /// Multiplier applied per failed attempt.
    pub backoff: u32,
    /// Failed attempts after which the sender abandons the edge (so a
    /// message gets `max_retries + 1` transmissions in total).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// The default schedule of the fault-injected protocol sims: 30 latency
    /// units base (the reliable sims' retransmit interval), doubling, give
    /// up after 5 retries.
    pub fn protocol_default() -> Self {
        RetryPolicy {
            base_timeout: 30,
            backoff: 2,
            max_retries: 5,
        }
    }

    /// Timeout of attempt `attempt` (0-based), saturating on overflow.
    pub fn timeout_after(&self, attempt: u32) -> SimTime {
        let factor = (self.backoff as SimTime).saturating_pow(attempt);
        self.base_timeout.saturating_mul(factor)
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Time-ordered event queue. Events scheduled for the same instant pop in
/// scheduling order (deterministic replay).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
            high_water: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Rewinds the queue to an empty state at time 0, keeping the heap's
    /// allocation — lets one queue (and the event objects it will hold) be
    /// pooled across many simulation runs instead of reallocating per run.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.now = 0;
        self.seq = 0;
        self.high_water = 0;
    }

    /// Peak number of simultaneously pending events since construction or
    /// the last [`EventQueue::reset`] — a pure function of the event
    /// schedule, so it is reproducible across runs and thread counts.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Schedules `event` at absolute time `at`. Panics if `at` is in the
    /// past (events may be scheduled at the current instant).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Schedules `event` `delay` units from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Drains events until the queue is empty or `horizon` is passed,
    /// calling `handler` for each. Events the handler schedules are
    /// processed too (if within the horizon). Returns the number of events
    /// processed.
    pub fn run_until(
        &mut self,
        horizon: SimTime,
        mut handler: impl FnMut(&mut Self, SimTime, E),
    ) -> usize {
        let mut processed = 0;
        loop {
            match self.heap.peek() {
                Some(e) if e.time <= horizon => {}
                _ => break,
            }
            let (t, ev) = self.pop().expect("peeked");
            handler(self, t, ev);
            processed += 1;
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn high_water_tracks_peak_depth() {
        let mut q = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        q.schedule(1, ());
        q.schedule(2, ());
        q.schedule(3, ());
        q.pop();
        q.pop();
        q.schedule(9, ());
        assert_eq!(q.high_water(), 3);
        q.reset();
        assert_eq!(q.high_water(), 0);
        q.schedule(1, ());
        assert_eq!(q.high_water(), 1);
    }

    #[test]
    fn retry_policy_backs_off_exponentially() {
        let p = RetryPolicy::protocol_default();
        assert_eq!(p.timeout_after(0), 30);
        assert_eq!(p.timeout_after(1), 60);
        assert_eq!(p.timeout_after(2), 120);
        // Saturates instead of overflowing.
        assert_eq!(p.timeout_after(200), SimTime::MAX);
    }

    #[test]
    fn run_until_respects_horizon_and_cascades() {
        let mut q = EventQueue::new();
        q.schedule(1, 0u32);
        let mut seen = Vec::new();
        let n = q.run_until(5, |q, t, depth| {
            seen.push((t, depth));
            if depth < 10 {
                q.schedule_in(2, depth + 1); // cascade: 1, 3, 5, (7 beyond)
            }
        });
        assert_eq!(n, 3);
        assert_eq!(seen, vec![(1, 0), (3, 1), (5, 2)]);
        assert_eq!(q.len(), 1); // the event at t=7 remains
    }
}
