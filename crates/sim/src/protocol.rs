//! Message-level discrete-event simulation of the tree protocols.
//!
//! The round counts of [`crate::experiments::rounds_scaling`] abstract away
//! link latencies; this module simulates the LBI aggregation and
//! dissemination phases message by message over the physical topology —
//! each tree edge costs its shortest-path latency, a parent forwards only
//! once every contributing child has reported, and messages can be lost
//! and retransmitted after a timeout. The result is the *wall-clock*
//! completion time behind the paper's "fast load balancing" claim.

use crate::des::{EventQueue, SimTime};
use proxbal_chord::ChordNetwork;
use proxbal_ktree::{KTree, KtNodeId};
use proxbal_topology::DistanceOracle;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Message-loss model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LossModel {
    /// Probability that any single message transmission is lost.
    pub loss_probability: f64,
    /// Retransmission timeout (the sender retries after this delay).
    pub retransmit_after: SimTime,
}

impl LossModel {
    /// No loss.
    pub fn reliable() -> Self {
        LossModel {
            loss_probability: 0.0,
            retransmit_after: 1,
        }
    }
}

/// Outcome of one simulated phase.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Simulated time at which the phase completed.
    pub completion: SimTime,
    /// Messages sent (including retransmissions).
    pub messages: usize,
    /// Messages lost and retransmitted.
    pub losses: usize,
}

#[derive(Debug)]
enum Event {
    /// A message from `from` arrives at `to` (tree edge).
    Deliver {
        #[allow(dead_code)] // kept for event tracing/debugging
        from: KtNodeId,
        to: KtNodeId,
    },
}

/// Latency of the tree edge between a KT node and its parent, in the
/// underlay's units. Free if both are planted in virtual servers of the
/// same peer.
fn edge_latency(
    net: &ChordNetwork,
    oracle: &DistanceOracle,
    tree: &KTree,
    child: KtNodeId,
    parent: KtNodeId,
) -> SimTime {
    let a = net.vs(tree.node(child).host).host;
    let b = net.vs(tree.node(parent).host).host;
    if a == b {
        return 0;
    }
    let (ua, ub) = (net.peer(a).underlay, net.peer(b).underlay);
    assert!(ua != u32::MAX && ub != u32::MAX, "peers must be attached");
    SimTime::from(oracle.distance(ua, ub))
}

/// Simulates the bottom-up LBI aggregation as individual messages: every
/// KT node on the path from a contributing node to the root forwards
/// upward once all its contributing children have reported.
///
/// Returns the timing; with [`LossModel::reliable`] the completion time
/// equals the analytic maximum root-path latency over contributing nodes.
pub fn simulate_aggregation<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &HashSet<KtNodeId>,
    loss: &LossModel,
    rng: &mut R,
) -> PhaseTiming {
    assert!((0.0..1.0).contains(&loss.loss_probability));
    // Active nodes: contributors and all their ancestors.
    let mut active: HashSet<KtNodeId> = HashSet::new();
    for &c in contributors {
        let mut cur = Some(c);
        while let Some(id) = cur {
            if !active.insert(id) {
                break;
            }
            cur = tree.node(id).parent;
        }
    }
    if active.is_empty() {
        return PhaseTiming {
            completion: 0,
            messages: 0,
            losses: 0,
        };
    }

    // pending[n] = number of active children n still waits for.
    let mut pending: HashMap<KtNodeId, usize> = HashMap::new();
    for &n in &active {
        let k = tree
            .node(n)
            .children
            .iter()
            .flatten()
            .filter(|c| active.contains(c))
            .count();
        pending.insert(n, k);
    }

    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut timing = PhaseTiming {
        completion: 0,
        messages: 0,
        losses: 0,
    };

    // `send` models one (possibly lossy) transmission: schedules either the
    // delivery or a chain of retransmissions.
    let send = |queue: &mut EventQueue<Event>,
                timing: &mut PhaseTiming,
                rng: &mut R,
                from: KtNodeId,
                to: KtNodeId,
                latency: SimTime| {
        let mut delay = latency;
        loop {
            timing.messages += 1;
            if rng.gen::<f64>() < loss.loss_probability {
                timing.losses += 1;
                delay += loss.retransmit_after + latency;
            } else {
                queue.schedule_in(delay, Event::Deliver { from, to });
                break;
            }
        }
    };

    // Leaves of the active set (pending == 0) fire immediately, in node-id
    // order: the set's iteration order varies per instance, and with loss
    // enabled every send draws from the RNG — an unsorted walk would bind
    // draws to leaves nondeterministically.
    let mut root_done = false;
    let mut ready: Vec<KtNodeId> = active.iter().copied().filter(|n| pending[n] == 0).collect();
    ready.sort_unstable();
    for n in ready {
        match tree.node(n).parent {
            Some(parent) => {
                let lat = edge_latency(net, oracle, tree, n, parent);
                send(&mut queue, &mut timing, rng, n, parent, lat);
            }
            None => root_done = true, // degenerate: root is the only node
        }
    }

    while let Some((t, Event::Deliver { from: _, to })) = queue.pop() {
        let slot = pending.get_mut(&to).expect("active node");
        *slot -= 1;
        if *slot > 0 {
            continue;
        }
        match tree.node(to).parent {
            Some(parent) => {
                let lat = edge_latency(net, oracle, tree, to, parent);
                send(&mut queue, &mut timing, rng, to, parent, lat);
            }
            None => {
                timing.completion = t;
                root_done = true;
            }
        }
    }
    assert!(root_done, "aggregation must reach the root");
    timing
}

/// Simulates the top-down dissemination: the root broadcasts, every node
/// forwards to its children on arrival. Completion is the last delivery.
pub fn simulate_dissemination<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    loss: &LossModel,
    rng: &mut R,
) -> PhaseTiming {
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut timing = PhaseTiming {
        completion: 0,
        messages: 0,
        losses: 0,
    };
    let mut delivered: HashSet<KtNodeId> = HashSet::new();

    let fanout =
        |queue: &mut EventQueue<Event>, timing: &mut PhaseTiming, rng: &mut R, node: KtNodeId| {
            for &child in tree.node(node).children.iter().flatten() {
                let lat = edge_latency(net, oracle, tree, child, node);
                let mut delay = lat;
                loop {
                    timing.messages += 1;
                    if rng.gen::<f64>() < loss.loss_probability {
                        timing.losses += 1;
                        delay += loss.retransmit_after + lat;
                    } else {
                        queue.schedule_in(
                            delay,
                            Event::Deliver {
                                from: node,
                                to: child,
                            },
                        );
                        break;
                    }
                }
            }
        };

    delivered.insert(tree.root());
    fanout(&mut queue, &mut timing, rng, tree.root());
    while let Some((t, Event::Deliver { to, .. })) = queue.pop() {
        if !delivered.insert(to) {
            continue;
        }
        timing.completion = t;
        fanout(&mut queue, &mut timing, rng, to);
    }
    assert_eq!(delivered.len(), tree.len(), "every KT node must be reached");
    timing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::root_path_latencies;
    use crate::{Scenario, TopologyKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (crate::Prepared, KTree) {
        let mut scenario = Scenario::small(60);
        scenario.peers = 96;
        scenario.topology = TopologyKind::Tiny;
        let prepared = scenario.prepare();
        let tree = KTree::build(&prepared.net, 2);
        (prepared, tree)
    }

    fn all_report_targets(prepared: &crate::Prepared, tree: &KTree) -> HashSet<KtNodeId> {
        prepared
            .net
            .ring()
            .iter()
            .map(|(_, vs)| tree.report_target(&prepared.net, vs))
            .collect()
    }

    #[test]
    fn reliable_aggregation_matches_analytic_latency() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let mut rng = StdRng::seed_from_u64(1);
        let timing = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        );
        // With every node contributing, the DES completion equals the max
        // root-path latency over all contributing nodes.
        let paths = root_path_latencies(&prepared.net, oracle, &tree);
        let analytic = contributors.iter().map(|c| paths[c]).max().unwrap();
        assert_eq!(timing.completion, analytic);
        assert_eq!(timing.losses, 0);
        assert!(timing.messages > 0);
    }

    #[test]
    fn partial_contributors_complete_sooner_or_equal() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let all = all_report_targets(&prepared, &tree);
        let few: HashSet<KtNodeId> = all.iter().copied().take(3).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let t_all = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &all,
            &LossModel::reliable(),
            &mut rng,
        );
        let t_few = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &few,
            &LossModel::reliable(),
            &mut rng,
        );
        assert!(t_few.completion <= t_all.completion);
        assert!(t_few.messages < t_all.messages);
    }

    #[test]
    fn loss_delays_but_completes() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let mut rng = StdRng::seed_from_u64(3);
        let reliable = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        );
        let lossy = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel {
                loss_probability: 0.3,
                retransmit_after: 20,
            },
            &mut rng,
        );
        assert!(lossy.losses > 0);
        assert!(lossy.completion >= reliable.completion);
        assert!(lossy.messages > reliable.messages);
    }

    #[test]
    fn dissemination_reaches_everyone() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let timing = simulate_dissemination(
            &prepared.net,
            &tree,
            oracle,
            &LossModel::reliable(),
            &mut rng,
        );
        // Broadcast completion equals the max root-path latency over all
        // nodes.
        let paths = root_path_latencies(&prepared.net, oracle, &tree);
        assert_eq!(timing.completion, *paths.values().max().unwrap());
        // Exactly one message per tree edge when reliable.
        assert_eq!(timing.messages, tree.len() - 1);
    }

    #[test]
    fn empty_contributor_set_is_trivial() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let timing = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &HashSet::new(),
            &LossModel::reliable(),
            &mut rng,
        );
        assert_eq!(timing.completion, 0);
        assert_eq!(timing.messages, 0);
    }
}
