//! Message-level discrete-event simulation of the tree protocols.
//!
//! The round counts of [`crate::experiments::rounds_scaling`] abstract away
//! link latencies; this module simulates the LBI aggregation and
//! dissemination phases message by message over the physical topology —
//! each tree edge costs its shortest-path latency, a parent forwards only
//! once every contributing child has reported, and messages can be lost
//! and retransmitted after a timeout. The result is the *wall-clock*
//! completion time behind the paper's "fast load balancing" claim.
//!
//! The phase drivers come in two forms: plain entry points that allocate
//! working state per call, and `*_in` variants that run inside a caller-held
//! [`ProtocolScratch`]. The scratch pools every per-run allocation — the
//! active/pending/delivered node tables, the per-edge latency memo, and the
//! event queue's heap — so a sweep that simulates hundreds of phases over
//! the same tree (claim-latency curves run 100k+ messages) stops allocating
//! per event and stops re-asking the distance oracle for the same tree edge.

use crate::des::{EventQueue, SimTime};
use proxbal_chord::ChordNetwork;
use proxbal_ktree::{KTree, KtNodeId};
use proxbal_topology::DistanceOracle;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Message-loss model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LossModel {
    /// Probability that any single message transmission is lost.
    pub loss_probability: f64,
    /// Retransmission timeout (the sender retries after this delay).
    pub retransmit_after: SimTime,
}

impl LossModel {
    /// No loss.
    pub fn reliable() -> Self {
        LossModel {
            loss_probability: 0.0,
            retransmit_after: 1,
        }
    }
}

/// Outcome of one simulated phase.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Simulated time at which the phase completed.
    pub completion: SimTime,
    /// Messages sent (including retransmissions).
    pub messages: usize,
    /// Messages lost and retransmitted.
    pub losses: usize,
}

/// Why a protocol simulation could not run (or could not complete).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolError {
    /// A tree edge crosses a peer with no underlay attachment, so its
    /// latency is undefined. Attach every peer (`ChordNetwork::attach`)
    /// before simulating over a physical topology.
    UnattachedPeer(proxbal_chord::PeerId),
    /// The loss model's probability is outside `[0, 1)` — `1.0` would
    /// retransmit forever.
    InvalidLossProbability(f64),
    /// A phase ended without covering the tree: `reached` of `expected`
    /// nodes saw the message. Unreachable under the infinite-retransmit
    /// loss model; the fault-injected drivers in [`crate::faults`] report
    /// partial coverage through their own outcome instead of this error.
    Incomplete {
        /// Which phase fell short (`"aggregation"` or `"dissemination"`).
        phase: &'static str,
        /// Nodes the phase actually covered.
        reached: usize,
        /// Nodes the phase had to cover.
        expected: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::UnattachedPeer(p) => {
                write!(f, "peer {p:?} has no underlay attachment")
            }
            ProtocolError::InvalidLossProbability(p) => {
                write!(f, "loss probability {p} outside [0, 1)")
            }
            ProtocolError::Incomplete {
                phase,
                reached,
                expected,
            } => {
                write!(f, "{phase} covered {reached} of {expected} tree nodes")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[derive(Debug)]
enum Event {
    /// A message from `from` arrives at `to` (tree edge).
    Deliver {
        #[allow(dead_code)] // kept for event tracing/debugging
        from: KtNodeId,
        to: KtNodeId,
    },
}

/// Validates a loss probability (`1.0` would retransmit forever).
fn check_loss(loss: &LossModel) -> Result<(), ProtocolError> {
    if (0.0..1.0).contains(&loss.loss_probability) {
        Ok(())
    } else {
        Err(ProtocolError::InvalidLossProbability(loss.loss_probability))
    }
}

/// Sentinel for "edge latency not memoized yet".
const UNMEMOIZED: SimTime = SimTime::MAX;

/// Reusable working state for the phase simulations.
///
/// One scratch serves any number of runs. It re-binds itself to whatever
/// tree it is handed; per-node tables are reset in O(tree size) and the
/// edge-latency memo survives across runs **over the same binding** (same
/// tree shape on the same network), which is exactly the claim-latency
/// sweep's access pattern. Reusing a scratch across *different* trees is
/// safe — the binding fingerprint changes and the memo is dropped.
#[derive(Default)]
pub struct ProtocolScratch {
    /// Fingerprint of the tree this scratch is bound to:
    /// `(root, len, slot_bound)`. Trees are arena-allocated and mutated in
    /// place, so pointer identity is meaningless; this triple changes for
    /// any structural change that could invalidate the memo.
    binding: Option<(KtNodeId, usize, usize)>,
    /// Latency of the edge from KT node (by slot) to its parent;
    /// [`UNMEMOIZED`] when unknown.
    edge_memo: Vec<SimTime>,
    /// Scratch bitmap: node participates in the current aggregation.
    pub(crate) active: Vec<bool>,
    /// Scratch table: active children the node still waits for.
    pub(crate) pending: Vec<u32>,
    /// Scratch bitmap: node already received the current dissemination.
    pub(crate) delivered: Vec<bool>,
    /// Pooled event queue (the heap's buffer survives across runs).
    queue: EventQueue<Event>,
}

impl ProtocolScratch {
    /// An empty scratch, bound to nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Points the scratch at `tree`, resetting the per-run tables and
    /// keeping the edge memo iff the binding fingerprint is unchanged.
    pub(crate) fn bind(&mut self, tree: &KTree) {
        let bound = tree.slot_bound();
        let binding = Some((tree.root(), tree.len(), bound));
        if self.binding != binding {
            self.binding = binding;
            self.edge_memo.clear();
            self.edge_memo.resize(bound, UNMEMOIZED);
        }
        self.active.clear();
        self.active.resize(bound, false);
        self.pending.clear();
        self.pending.resize(bound, 0);
        self.delivered.clear();
        self.delivered.resize(bound, false);
        self.queue.reset();
    }

    /// Latency of the tree edge from `child` to `parent`, memoized by the
    /// child's slot (a node has one parent). Free if both KT nodes are
    /// planted in virtual servers of the same peer.
    pub(crate) fn edge_latency(
        &mut self,
        net: &ChordNetwork,
        oracle: &DistanceOracle,
        tree: &KTree,
        child: KtNodeId,
        parent: KtNodeId,
    ) -> Result<SimTime, ProtocolError> {
        let slot = child.0 as usize;
        let memoized = self.edge_memo[slot];
        if memoized != UNMEMOIZED {
            return Ok(memoized);
        }
        let a = net.vs(tree.node(child).host).host;
        let b = net.vs(tree.node(parent).host).host;
        let latency = if a == b {
            0
        } else {
            let (ua, ub) = (net.peer(a).underlay, net.peer(b).underlay);
            if ua == u32::MAX {
                return Err(ProtocolError::UnattachedPeer(a));
            }
            if ub == u32::MAX {
                return Err(ProtocolError::UnattachedPeer(b));
            }
            SimTime::from(oracle.distance(ua, ub))
        };
        self.edge_memo[slot] = latency;
        Ok(latency)
    }
}

/// Simulates the bottom-up LBI aggregation as individual messages: every
/// KT node on the path from a contributing node to the root forwards
/// upward once all its contributing children have reported.
///
/// `contributors` may repeat nodes and come in any order; the simulation is
/// a function of the contributor *set*.
///
/// Returns the timing; with [`LossModel::reliable`] the completion time
/// equals the analytic maximum root-path latency over contributing nodes.
pub fn simulate_aggregation<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &[KtNodeId],
    loss: &LossModel,
    rng: &mut R,
) -> Result<PhaseTiming, ProtocolError> {
    simulate_aggregation_in(
        net,
        tree,
        oracle,
        contributors,
        loss,
        rng,
        &mut ProtocolScratch::new(),
    )
}

/// [`simulate_aggregation`] running inside a caller-held scratch — no
/// per-run allocation once the scratch is warm.
pub fn simulate_aggregation_in<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &[KtNodeId],
    loss: &LossModel,
    rng: &mut R,
    scratch: &mut ProtocolScratch,
) -> Result<PhaseTiming, ProtocolError> {
    simulate_aggregation_traced_in(
        net,
        tree,
        oracle,
        contributors,
        loss,
        rng,
        scratch,
        &mut proxbal_trace::Trace::disabled(),
    )
}

/// [`simulate_aggregation_in`] recording DES metrics into `trace`:
/// `des_messages` / `des_losses` counters, the `des_queue_depth` histogram
/// (pending events sampled at every pop) and one `des_queue_peak`
/// observation. The simulation itself is bit-identical with tracing on or
/// off; spans are the caller's job (it owns the virtual-time offset).
#[allow(clippy::too_many_arguments)]
pub fn simulate_aggregation_traced_in<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &[KtNodeId],
    loss: &LossModel,
    rng: &mut R,
    scratch: &mut ProtocolScratch,
    trace: &mut proxbal_trace::Trace,
) -> Result<PhaseTiming, ProtocolError> {
    check_loss(loss)?;
    scratch.bind(tree);
    // Active nodes: contributors and all their ancestors.
    let mut any_active = false;
    for &c in contributors {
        let mut cur = Some(c);
        while let Some(id) = cur {
            let slot = id.0 as usize;
            if std::mem::replace(&mut scratch.active[slot], true) {
                break;
            }
            any_active = true;
            cur = tree.node(id).parent;
        }
    }
    if !any_active {
        return Ok(PhaseTiming {
            completion: 0,
            messages: 0,
            losses: 0,
        });
    }

    // pending[n] = number of active children n still waits for.
    for slot in 0..scratch.active.len() {
        if !scratch.active[slot] {
            continue;
        }
        let n = KtNodeId(slot as u32);
        scratch.pending[slot] = tree
            .node(n)
            .children
            .iter()
            .flatten()
            .filter(|c| scratch.active[c.0 as usize])
            .count() as u32;
    }

    let mut timing = PhaseTiming {
        completion: 0,
        messages: 0,
        losses: 0,
    };

    // `send` models one (possibly lossy) transmission: schedules either the
    // delivery or a chain of retransmissions.
    let send = |queue: &mut EventQueue<Event>,
                timing: &mut PhaseTiming,
                rng: &mut R,
                from: KtNodeId,
                to: KtNodeId,
                latency: SimTime| {
        let mut delay = latency;
        loop {
            timing.messages += 1;
            if rng.gen::<f64>() < loss.loss_probability {
                timing.losses += 1;
                delay += loss.retransmit_after + latency;
            } else {
                queue.schedule_in(delay, Event::Deliver { from, to });
                break;
            }
        }
    };

    // Leaves of the active set (pending == 0) fire immediately, in node-id
    // order — the ascending bitmap scan *is* that order, so with loss
    // enabled RNG draws bind to leaves deterministically.
    let mut root_done = false;
    for slot in 0..scratch.active.len() {
        if !scratch.active[slot] || scratch.pending[slot] != 0 {
            continue;
        }
        let n = KtNodeId(slot as u32);
        match tree.node(n).parent {
            Some(parent) => {
                let lat = scratch.edge_latency(net, oracle, tree, n, parent)?;
                send(&mut scratch.queue, &mut timing, rng, n, parent, lat);
            }
            None => root_done = true, // degenerate: root is the only node
        }
    }

    while let Some((t, Event::Deliver { from: _, to })) = scratch.queue.pop() {
        trace.record("des_queue_depth", scratch.queue.len() as u64);
        let slot = &mut scratch.pending[to.0 as usize];
        *slot -= 1;
        if *slot > 0 {
            continue;
        }
        match tree.node(to).parent {
            Some(parent) => {
                let lat = scratch.edge_latency(net, oracle, tree, to, parent)?;
                send(&mut scratch.queue, &mut timing, rng, to, parent, lat);
            }
            None => {
                timing.completion = t;
                root_done = true;
            }
        }
    }
    if !root_done {
        return Err(ProtocolError::Incomplete {
            phase: "aggregation",
            reached: 0,
            expected: 1,
        });
    }
    trace.count("des_messages", timing.messages as u64);
    trace.count("des_losses", timing.losses as u64);
    trace.record("des_queue_peak", scratch.queue.high_water() as u64);
    Ok(timing)
}

/// Simulates the top-down dissemination: the root broadcasts, every node
/// forwards to its children on arrival. Completion is the last delivery.
pub fn simulate_dissemination<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    loss: &LossModel,
    rng: &mut R,
) -> Result<PhaseTiming, ProtocolError> {
    simulate_dissemination_in(net, tree, oracle, loss, rng, &mut ProtocolScratch::new())
}

/// [`simulate_dissemination`] running inside a caller-held scratch.
pub fn simulate_dissemination_in<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    loss: &LossModel,
    rng: &mut R,
    scratch: &mut ProtocolScratch,
) -> Result<PhaseTiming, ProtocolError> {
    simulate_dissemination_traced_in(
        net,
        tree,
        oracle,
        loss,
        rng,
        scratch,
        &mut proxbal_trace::Trace::disabled(),
    )
}

/// [`simulate_dissemination_in`] recording DES metrics into `trace` (same
/// scheme as [`simulate_aggregation_traced_in`]).
pub fn simulate_dissemination_traced_in<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    loss: &LossModel,
    rng: &mut R,
    scratch: &mut ProtocolScratch,
    trace: &mut proxbal_trace::Trace,
) -> Result<PhaseTiming, ProtocolError> {
    check_loss(loss)?;
    scratch.bind(tree);
    let mut timing = PhaseTiming {
        completion: 0,
        messages: 0,
        losses: 0,
    };
    let mut reached = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn fanout<R: Rng>(
        scratch: &mut ProtocolScratch,
        net: &ChordNetwork,
        oracle: &DistanceOracle,
        tree: &KTree,
        loss: &LossModel,
        timing: &mut PhaseTiming,
        rng: &mut R,
        node: KtNodeId,
    ) -> Result<(), ProtocolError> {
        let children: Vec<KtNodeId> = tree.node(node).children.iter().flatten().copied().collect();
        for child in children {
            let lat = scratch.edge_latency(net, oracle, tree, child, node)?;
            let mut delay = lat;
            loop {
                timing.messages += 1;
                if rng.gen::<f64>() < loss.loss_probability {
                    timing.losses += 1;
                    delay += loss.retransmit_after + lat;
                } else {
                    scratch.queue.schedule_in(
                        delay,
                        Event::Deliver {
                            from: node,
                            to: child,
                        },
                    );
                    break;
                }
            }
        }
        Ok(())
    }

    scratch.delivered[tree.root().0 as usize] = true;
    reached += 1;
    fanout(
        scratch,
        net,
        oracle,
        tree,
        loss,
        &mut timing,
        rng,
        tree.root(),
    )?;
    while let Some((t, Event::Deliver { to, .. })) = scratch.queue.pop() {
        trace.record("des_queue_depth", scratch.queue.len() as u64);
        if std::mem::replace(&mut scratch.delivered[to.0 as usize], true) {
            continue;
        }
        reached += 1;
        timing.completion = t;
        fanout(scratch, net, oracle, tree, loss, &mut timing, rng, to)?;
    }
    if reached != tree.len() {
        return Err(ProtocolError::Incomplete {
            phase: "dissemination",
            reached,
            expected: tree.len(),
        });
    }
    trace.count("des_messages", timing.messages as u64);
    trace.count("des_losses", timing.losses as u64);
    trace.record("des_queue_peak", scratch.queue.high_water() as u64);
    Ok(timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::root_path_latencies;
    use crate::{Scenario, TopologyKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (crate::Prepared, KTree) {
        let mut scenario = Scenario::builder().small().seed(60).build();
        scenario.peers = 96;
        scenario.topology = TopologyKind::Tiny;
        let prepared = scenario.prepare();
        let tree = KTree::build(&prepared.net, 2);
        (prepared, tree)
    }

    fn all_report_targets(prepared: &crate::Prepared, tree: &KTree) -> Vec<KtNodeId> {
        let mut targets: Vec<KtNodeId> = prepared
            .net
            .ring()
            .iter()
            .map(|(_, vs)| tree.report_target(&prepared.net, vs))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    #[test]
    fn reliable_aggregation_matches_analytic_latency() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let mut rng = StdRng::seed_from_u64(1);
        let timing = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        // With every node contributing, the DES completion equals the max
        // root-path latency over all contributing nodes.
        let paths = root_path_latencies(&prepared.net, oracle, &tree);
        let analytic = contributors.iter().map(|c| paths[c]).max().unwrap();
        assert_eq!(timing.completion, analytic);
        assert_eq!(timing.losses, 0);
        assert!(timing.messages > 0);
    }

    #[test]
    fn partial_contributors_complete_sooner_or_equal() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let all = all_report_targets(&prepared, &tree);
        let few: Vec<KtNodeId> = all.iter().copied().take(3).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let t_all = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &all,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        let t_few = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &few,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        assert!(t_few.completion <= t_all.completion);
        assert!(t_few.messages < t_all.messages);
    }

    #[test]
    fn loss_delays_but_completes() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let mut rng = StdRng::seed_from_u64(3);
        let reliable = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        let lossy = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel {
                loss_probability: 0.3,
                retransmit_after: 20,
            },
            &mut rng,
        )
        .expect("attached");
        assert!(lossy.losses > 0);
        assert!(lossy.completion >= reliable.completion);
        assert!(lossy.messages > reliable.messages);
    }

    #[test]
    fn dissemination_reaches_everyone() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let timing = simulate_dissemination(
            &prepared.net,
            &tree,
            oracle,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        // Broadcast completion equals the max root-path latency over all
        // nodes.
        let paths = root_path_latencies(&prepared.net, oracle, &tree);
        assert_eq!(timing.completion, *paths.values().max().unwrap());
        // Exactly one message per tree edge when reliable.
        assert_eq!(timing.messages, tree.len() - 1);
    }

    #[test]
    fn empty_contributor_set_is_trivial() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let timing = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &[],
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        assert_eq!(timing.completion, 0);
        assert_eq!(timing.messages, 0);
    }

    #[test]
    fn unattached_peer_is_a_typed_error() {
        let (mut prepared, tree) = setup();
        let contributors = all_report_targets(&prepared, &tree);
        // Detach every peer: any inter-peer tree edge now has no latency.
        let peers: Vec<_> = prepared.net.alive_peers();
        for p in &peers {
            prepared.net.attach(*p, u32::MAX);
        }
        let oracle = prepared.oracle.as_ref().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let err = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect_err("unattached peers must not simulate");
        assert!(matches!(err, ProtocolError::UnattachedPeer(_)));
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let (prepared, tree) = setup();
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let loss = LossModel {
            loss_probability: 0.2,
            retransmit_after: 15,
        };
        let fresh: Vec<PhaseTiming> = (0..4)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i);
                simulate_aggregation(&prepared.net, &tree, oracle, &contributors, &loss, &mut rng)
                    .expect("attached")
            })
            .collect();
        let mut scratch = ProtocolScratch::new();
        let pooled: Vec<PhaseTiming> = (0..4)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i);
                simulate_aggregation_in(
                    &prepared.net,
                    &tree,
                    oracle,
                    &contributors,
                    &loss,
                    &mut rng,
                    &mut scratch,
                )
                .expect("attached")
            })
            .collect();
        for (f, p) in fresh.iter().zip(&pooled) {
            assert_eq!(f.completion, p.completion);
            assert_eq!(f.messages, p.messages);
            assert_eq!(f.losses, p.losses);
        }
    }
}
