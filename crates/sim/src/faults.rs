//! Deterministic fault injection for the tree protocols.
//!
//! The reliable DES in [`crate::protocol`] assumes every message is
//! eventually delivered and membership never changes mid-phase. This module
//! supplies the adversary: a seeded [`FaultPlan`] that drops or delays
//! individual messages, crash-stops peers mid-round (their virtual servers
//! and KT positions die with them), and rewires KT links to stale parents —
//! plus the robustness machinery the paper implies but never specifies:
//! per-message retry with exponential backoff ([`RetryPolicy`]) and
//! sender-side give-up, so a phase *degrades* (partial coverage, reported
//! through [`FaultPhaseOutcome`]) instead of hanging or panicking.
//!
//! Everything is a pure function of `(FaultConfig, scenario seed)`: the
//! plan owns its own RNG stream and every fate is drawn in event-queue
//! order, so a faulty run is bit-identical across repeats and thread
//! counts, matching the repo's determinism contract.

use crate::des::{EventQueue, RetryPolicy, SimTime};
use crate::protocol::{PhaseTiming, ProtocolError, ProtocolScratch};
use proxbal_chord::{ChordNetwork, PeerId};
use proxbal_ktree::{KTree, KtNodeId};
use proxbal_topology::DistanceOracle;
use proxbal_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Declarative description of one fault regime. Embedded in
/// [`crate::Scenario`] so a faulty experiment round-trips through serde
/// like any other.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a single transmission is silently dropped.
    pub loss_rate: f64,
    /// Probability that a transmission is delayed (but delivered).
    pub delay_rate: f64,
    /// Maximum extra delay of a delayed transmission, in latency units.
    pub max_delay: SimTime,
    /// Fraction of peers crash-stopped at random times inside the phase
    /// window (the KT root's host is never picked).
    pub crash_fraction: f64,
    /// Number of KT links rewired to a stale parent before the run.
    pub stale_parents: usize,
    /// Seed of the plan's private RNG stream.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults at all (the identity plan).
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            loss_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            crash_fraction: 0.0,
            stale_parents: 0,
            seed,
        }
    }

    /// The sweep shape used by `repro --faults`: message loss at `rate`,
    /// delays at half that rate, and a crash wave of `rate/2` of the peers.
    /// `rate = 0` degenerates to [`FaultConfig::none`].
    pub fn with_loss(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate must be in [0, 1)");
        FaultConfig {
            loss_rate: rate,
            delay_rate: rate / 2.0,
            max_delay: 50,
            crash_fraction: rate / 2.0,
            stale_parents: if rate > 0.0 { 3 } else { 0 },
            seed,
        }
    }
}

/// What the plan decides for one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered after the edge latency.
    Deliver,
    /// Delivered after the edge latency plus this much extra delay.
    DelayBy(SimTime),
    /// Silently dropped (the sender times out and retries).
    Drop,
}

/// A seeded source of fault decisions. One plan drives one experiment; its
/// RNG stream is private, so faulty runs never perturb the scenario RNG
/// and the fault-free code paths stay byte-identical.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: StdRng,
}

impl FaultPlan {
    /// Builds the plan for a config (the RNG derives from `cfg.seed`).
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA_17),
        }
    }

    /// The config this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Draws the fate of one transmission. Fates are consumed in
    /// event-queue order, which is deterministic.
    pub fn message_fate(&mut self) -> MessageFate {
        if self.cfg.loss_rate == 0.0 && self.cfg.delay_rate == 0.0 {
            return MessageFate::Deliver;
        }
        let draw: f64 = self.rng.gen();
        if draw < self.cfg.loss_rate {
            MessageFate::Drop
        } else if draw < self.cfg.loss_rate + self.cfg.delay_rate {
            MessageFate::DelayBy(self.rng.gen_range(1..=self.cfg.max_delay.max(1)))
        } else {
            MessageFate::Deliver
        }
    }

    /// Draws the crash-stop schedule: `crash_fraction` of the alive peers
    /// (never `exclude`, the KT root's host) die at uniform times in
    /// `[1, horizon)`.
    pub fn crash_schedule(
        &mut self,
        net: &ChordNetwork,
        exclude: PeerId,
        horizon: SimTime,
    ) -> Vec<(SimTime, PeerId)> {
        use rand::seq::SliceRandom;
        let mut peers = net.alive_peers();
        peers.retain(|&p| p != exclude);
        let n = ((peers.len() as f64) * self.cfg.crash_fraction).round() as usize;
        peers.shuffle(&mut self.rng);
        peers.truncate(n);
        let mut schedule: Vec<(SimTime, PeerId)> = peers
            .into_iter()
            .map(|p| (self.rng.gen_range(1..horizon.max(2)), p))
            .collect();
        schedule.sort_unstable();
        schedule
    }

    /// Picks `stale_parents` KT links to rewire: children at depth ≥ 2
    /// whose parent pointer will be left dangling at the root (the one node
    /// every peer can always locate — exactly the stale pointer a pruned
    /// parent leaves behind). Returns the chosen children, deterministic
    /// for the plan's stream.
    pub fn pick_stale_links(&mut self, tree: &KTree) -> Vec<KtNodeId> {
        use rand::seq::SliceRandom;
        let mut candidates: Vec<KtNodeId> = tree
            .iter_ids()
            .filter(|&id| tree.node(id).depth >= 2)
            .collect();
        candidates.sort_unstable();
        let n = self.cfg.stale_parents.min(candidates.len());
        candidates.shuffle(&mut self.rng);
        candidates.truncate(n);
        candidates.sort_unstable();
        candidates
    }

    /// Picks a post-VSA crash wave among `candidates` (typically the
    /// receiving peers of the assignments): `crash_fraction` of them, used
    /// to exercise the transfer-requeue path.
    pub fn pick_transfer_victims(&mut self, candidates: &[PeerId]) -> Vec<PeerId> {
        use rand::seq::SliceRandom;
        let n = ((candidates.len() as f64) * self.cfg.crash_fraction).round() as usize;
        let mut victims = candidates.to_vec();
        victims.shuffle(&mut self.rng);
        victims.truncate(n);
        victims.sort_unstable();
        victims
    }
}

/// Outcome of one fault-injected phase: the usual timing plus coverage and
/// retry accounting. `timing.completion` is the instant the phase resolved
/// (last useful delivery or give-up at the root).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultPhaseOutcome {
    /// Message-level timing (messages include retransmissions).
    pub timing: PhaseTiming,
    /// Units whose information made it through (aggregation: contributors
    /// whose whole root path delivered; dissemination: KT nodes reached).
    pub delivered: usize,
    /// Units that had to make it through under no faults.
    pub expected: usize,
    /// Retransmission attempts (subset of `timing.messages`).
    pub retries: usize,
    /// Edges abandoned after the retry budget was exhausted.
    pub gave_up: usize,
}

impl FaultPhaseOutcome {
    /// Fraction of expected units delivered (1.0 when nothing was expected).
    pub fn completion_rate(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

#[derive(Debug)]
enum FEvent {
    /// `from` (re)transmits its message to `to`; `attempt` is 0-based.
    Send {
        from: KtNodeId,
        to: KtNodeId,
        attempt: u32,
    },
    /// The transmission arrives at `to`.
    Deliver {
        from: KtNodeId,
        to: KtNodeId,
        attempt: u32,
    },
}

/// Shared state of one faulty phase run.
struct FaultRun<'a> {
    net: &'a ChordNetwork,
    tree: &'a KTree,
    oracle: &'a DistanceOracle,
    plan: &'a mut FaultPlan,
    retry: RetryPolicy,
    /// Crash-stop instants by peer (absent = never crashes).
    crash_at: HashMap<PeerId, SimTime>,
    queue: EventQueue<FEvent>,
    timing: PhaseTiming,
    retries: usize,
    gave_up: usize,
    /// Edge `child → parent` delivered (indexed by child slot).
    edge_delivered: Vec<bool>,
    trace: &'a mut Trace,
}

impl<'a> FaultRun<'a> {
    fn new(
        net: &'a ChordNetwork,
        tree: &'a KTree,
        oracle: &'a DistanceOracle,
        plan: &'a mut FaultPlan,
        retry: RetryPolicy,
        crashes: &[(SimTime, PeerId)],
        trace: &'a mut Trace,
    ) -> Self {
        FaultRun {
            net,
            tree,
            oracle,
            plan,
            retry,
            crash_at: crashes.iter().map(|&(t, p)| (p, t)).collect(),
            queue: EventQueue::new(),
            timing: PhaseTiming {
                completion: 0,
                messages: 0,
                losses: 0,
            },
            retries: 0,
            gave_up: 0,
            edge_delivered: vec![false; tree.slot_bound()],
            trace,
        }
    }

    /// Records the run's end-of-phase counters into the trace.
    fn finish_counters(&mut self) {
        self.trace
            .count("des_messages", self.timing.messages as u64);
        self.trace.count("des_losses", self.timing.losses as u64);
        self.trace.count("des_retries", self.retries as u64);
        self.trace.count("des_gave_up", self.gave_up as u64);
        self.trace
            .record("des_queue_peak", self.queue.high_water() as u64);
    }

    /// The peer hosting a KT node (via its planted virtual server).
    fn host_peer(&self, id: KtNodeId) -> PeerId {
        self.net.vs(self.tree.node(id).host).host
    }

    /// Whether the peer hosting `id` is still up at `t` (crash-stop: dead
    /// forever from its crash instant on).
    fn alive_at(&self, id: KtNodeId, t: SimTime) -> bool {
        self.crash_at
            .get(&self.host_peer(id))
            .is_none_or(|&ct| t < ct)
    }

    /// Handles a `Send` at time `t`: draws the fate, schedules the delivery
    /// or the retry chain. Returns `Some(give_up_time)` when the sender
    /// exhausted its retry budget (or died), i.e. the edge failed.
    fn transmit(
        &mut self,
        scratch: &mut ProtocolScratch,
        t: SimTime,
        from: KtNodeId,
        to: KtNodeId,
        attempt: u32,
    ) -> Result<Option<SimTime>, ProtocolError> {
        if !self.alive_at(from, t) {
            // Crash-stop mid-retry-chain: the sender is gone; its parent
            // times out after the full remaining window.
            return Ok(Some(t + self.remaining_window(attempt)));
        }
        self.timing.messages += 1;
        if attempt > 0 {
            self.retries += 1;
        }
        let latency = scratch.edge_latency(self.net, self.oracle, self.tree, from, to)?;
        match self.plan.message_fate() {
            MessageFate::Drop => {
                self.timing.losses += 1;
                Ok(self.retry_or_fail(t, from, to, attempt))
            }
            MessageFate::DelayBy(extra) => {
                self.queue
                    .schedule(t + latency + extra, FEvent::Deliver { from, to, attempt });
                Ok(None)
            }
            MessageFate::Deliver => {
                self.queue
                    .schedule(t + latency, FEvent::Deliver { from, to, attempt });
                Ok(None)
            }
        }
    }

    /// After a failed attempt at time `t`: schedules the next retry, or
    /// reports the edge's give-up time once the budget is exhausted.
    fn retry_or_fail(
        &mut self,
        t: SimTime,
        from: KtNodeId,
        to: KtNodeId,
        attempt: u32,
    ) -> Option<SimTime> {
        let timeout = self.retry.timeout_after(attempt);
        if attempt < self.retry.max_retries {
            self.trace.record("des_backoff_delay", timeout);
            self.queue.schedule(
                t + timeout,
                FEvent::Send {
                    from,
                    to,
                    attempt: attempt + 1,
                },
            );
            None
        } else {
            self.gave_up += 1;
            Some(t + timeout)
        }
    }

    /// Worst-case remaining wait from attempt `attempt` to final give-up —
    /// the stand-in for the receiver-side wait timer when a sender dies
    /// silently.
    fn remaining_window(&self, attempt: u32) -> SimTime {
        (attempt..=self.retry.max_retries).fold(0, |acc: SimTime, a| {
            acc.saturating_add(self.retry.timeout_after(a))
        })
    }
}

/// Fault-injected bottom-up aggregation: same protocol as
/// [`crate::protocol::simulate_aggregation_in`], but messages follow the
/// plan's fates, senders retry with exponential backoff and give up after
/// the budget, and peers crash-stop mid-phase. A parent whose child edge
/// permanently failed stops waiting for it (the fold of its wait timer into
/// the give-up instant), so the phase always terminates — with partial
/// coverage instead of an error.
#[allow(clippy::too_many_arguments)]
pub fn simulate_aggregation_faulty(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &[KtNodeId],
    plan: &mut FaultPlan,
    retry: RetryPolicy,
    crashes: &[(SimTime, PeerId)],
    scratch: &mut ProtocolScratch,
) -> Result<FaultPhaseOutcome, ProtocolError> {
    let mut trace = Trace::disabled();
    simulate_aggregation_faulty_traced(
        net,
        tree,
        oracle,
        contributors,
        plan,
        retry,
        crashes,
        scratch,
        &mut trace,
    )
}

/// [`simulate_aggregation_faulty`] with trace collection: records
/// `des_messages` / `des_losses` / `des_retries` / `des_gave_up` counters,
/// the `des_backoff_delay` histogram (one sample per scheduled retry), and
/// `des_queue_depth` / `des_queue_peak`. Spans are the caller's job — only
/// the caller knows where this phase sits on the virtual timeline.
#[allow(clippy::too_many_arguments)]
pub fn simulate_aggregation_faulty_traced(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    contributors: &[KtNodeId],
    plan: &mut FaultPlan,
    retry: RetryPolicy,
    crashes: &[(SimTime, PeerId)],
    scratch: &mut ProtocolScratch,
    trace: &mut Trace,
) -> Result<FaultPhaseOutcome, ProtocolError> {
    scratch.bind(tree);
    let mut run = FaultRun::new(net, tree, oracle, plan, retry, crashes, trace);

    // Active nodes: contributors and all their ancestors.
    let mut any_active = false;
    for &c in contributors {
        let mut cur = Some(c);
        while let Some(id) = cur {
            let slot = id.0 as usize;
            if std::mem::replace(&mut scratch.active[slot], true) {
                break;
            }
            any_active = true;
            cur = tree.node(id).parent;
        }
    }
    // Distinct contributors (the unit of the completion rate).
    let mut distinct: Vec<KtNodeId> = contributors.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let expected = distinct.len();
    if !any_active {
        run.finish_counters();
        return Ok(FaultPhaseOutcome {
            timing: run.timing,
            delivered: 0,
            expected,
            retries: 0,
            gave_up: 0,
        });
    }

    for slot in 0..scratch.active.len() {
        if !scratch.active[slot] {
            continue;
        }
        let n = KtNodeId(slot as u32);
        scratch.pending[slot] = tree
            .node(n)
            .children
            .iter()
            .flatten()
            .filter(|c| scratch.active[c.0 as usize])
            .count() as u32;
    }

    let mut root_done = false;
    let mut completion: SimTime = 0;

    // `edge_failed` propagation: edge `child → parent` permanently failed
    // at `fail_t`. The parent stops waiting; if that makes it ready but it
    // is dead, its own edge fails one give-up window later, and so on up.
    // Implemented as an explicit loop (shared by several handlers below).
    macro_rules! on_ready {
        ($run:expr, $scratch:expr, $node:expr, $t:expr) => {{
            match tree.node($node).parent {
                Some(parent) => $run.queue.schedule(
                    $t,
                    FEvent::Send {
                        from: $node,
                        to: parent,
                        attempt: 0,
                    },
                ),
                None => {
                    root_done = true;
                    completion = completion.max($t);
                }
            }
        }};
    }
    macro_rules! edge_failed {
        ($run:expr, $scratch:expr, $child:expr, $fail_t:expr) => {{
            let mut cur = $child;
            let mut t = $fail_t;
            loop {
                let Some(parent) = tree.node(cur).parent else {
                    // The root's own information is never "sent"; a failed
                    // chain ending at the root just resolves the wait.
                    root_done = true;
                    completion = completion.max(t);
                    break;
                };
                let slot = parent.0 as usize;
                scratch.pending[slot] -= 1;
                if scratch.pending[slot] > 0 {
                    break;
                }
                if $run.alive_at(parent, t) {
                    on_ready!($run, $scratch, parent, t);
                    break;
                }
                // Dead parent became "ready": its upward edge fails after
                // the full give-up window (nobody transmits for it).
                t = t.saturating_add($run.remaining_window(0));
                cur = parent;
            }
        }};
    }

    // Leaves of the active set fire at t = 0, in ascending slot order (the
    // deterministic RNG binding of the reliable sim, kept here).
    for slot in 0..scratch.active.len() {
        if !scratch.active[slot] || scratch.pending[slot] != 0 {
            continue;
        }
        let n = KtNodeId(slot as u32);
        if run.alive_at(n, 0) {
            on_ready!(run, scratch, n, 0);
        } else {
            edge_failed!(run, scratch, n, run.remaining_window(0));
        }
    }

    while let Some((t, ev)) = run.queue.pop() {
        run.trace.record("des_queue_depth", run.queue.len() as u64);
        match ev {
            FEvent::Send { from, to, attempt } => {
                if let Some(fail_t) = run.transmit(scratch, t, from, to, attempt)? {
                    edge_failed!(run, scratch, from, fail_t);
                }
            }
            FEvent::Deliver { from, to, attempt } => {
                if !run.alive_at(to, t) {
                    // Receiver crashed: no ack, the sender times out.
                    run.timing.losses += 1;
                    if let Some(fail_t) = run.retry_or_fail(t, from, to, attempt) {
                        edge_failed!(run, scratch, from, fail_t);
                    }
                    continue;
                }
                run.edge_delivered[from.0 as usize] = true;
                let slot = to.0 as usize;
                scratch.pending[slot] -= 1;
                if scratch.pending[slot] == 0 {
                    on_ready!(run, scratch, to, t);
                }
            }
        }
    }
    debug_assert!(root_done, "every waiting chain resolves by construction");
    run.timing.completion = completion;
    run.finish_counters();

    // A contributor's LBI reached the root iff every edge on its root path
    // delivered (crash-stop losses show up as missing edges: a node that
    // died after receiving never forwarded).
    let delivered = distinct
        .iter()
        .filter(|&&c| {
            let mut cur = c;
            while let Some(parent) = tree.node(cur).parent {
                if !run.edge_delivered[cur.0 as usize] {
                    return false;
                }
                cur = parent;
            }
            true
        })
        .count();

    Ok(FaultPhaseOutcome {
        timing: run.timing,
        delivered,
        expected,
        retries: run.retries,
        gave_up: run.gave_up,
    })
}

/// Fault-injected top-down dissemination: the root broadcasts, every node
/// forwards on arrival; lost edges orphan their subtree (no upstream
/// propagation needed — an unreached node simply never forwards). Coverage
/// is `delivered / tree.len()`.
pub fn simulate_dissemination_faulty(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    plan: &mut FaultPlan,
    retry: RetryPolicy,
    crashes: &[(SimTime, PeerId)],
    scratch: &mut ProtocolScratch,
) -> Result<FaultPhaseOutcome, ProtocolError> {
    let mut trace = Trace::disabled();
    simulate_dissemination_faulty_traced(
        net, tree, oracle, plan, retry, crashes, scratch, &mut trace,
    )
}

/// [`simulate_dissemination_faulty`] with trace collection; same counters
/// and histograms as [`simulate_aggregation_faulty_traced`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_dissemination_faulty_traced(
    net: &ChordNetwork,
    tree: &KTree,
    oracle: &DistanceOracle,
    plan: &mut FaultPlan,
    retry: RetryPolicy,
    crashes: &[(SimTime, PeerId)],
    scratch: &mut ProtocolScratch,
    trace: &mut Trace,
) -> Result<FaultPhaseOutcome, ProtocolError> {
    scratch.bind(tree);
    let mut run = FaultRun::new(net, tree, oracle, plan, retry, crashes, trace);
    let mut reached = 0usize;

    let fanout = |run: &mut FaultRun<'_>, node: KtNodeId, t: SimTime| {
        let children: Vec<KtNodeId> = tree.node(node).children.iter().flatten().copied().collect();
        for child in children {
            run.queue.schedule(
                t,
                FEvent::Send {
                    from: node,
                    to: child,
                    attempt: 0,
                },
            );
        }
    };

    scratch.delivered[tree.root().0 as usize] = true;
    reached += 1;
    fanout(&mut run, tree.root(), 0);

    while let Some((t, ev)) = run.queue.pop() {
        run.trace.record("des_queue_depth", run.queue.len() as u64);
        match ev {
            FEvent::Send { from, to, attempt } => {
                // A failed edge orphans `to`'s subtree; nothing to notify.
                let _ = run.transmit(scratch, t, from, to, attempt)?;
            }
            FEvent::Deliver { from, to, attempt } => {
                if !run.alive_at(to, t) {
                    run.timing.losses += 1;
                    let _ = run.retry_or_fail(t, from, to, attempt);
                    continue;
                }
                if std::mem::replace(&mut scratch.delivered[to.0 as usize], true) {
                    continue;
                }
                reached += 1;
                run.timing.completion = run.timing.completion.max(t);
                fanout(&mut run, to, t);
            }
        }
    }
    run.finish_counters();

    Ok(FaultPhaseOutcome {
        timing: run.timing,
        delivered: reached,
        expected: tree.len(),
        retries: run.retries,
        gave_up: run.gave_up,
    })
}

/// Stale-link injection as a pluggable [`EventSource`]: on a fixed epoch
/// cadence, `stale_parents` KT links are rewired to dangle at the root —
/// the pointer damage a pruned parent leaves behind — for the maintenance
/// machinery to repair. The plan is seeded independently of the engine's
/// DES shadow plan (label `0x57A1E`), so link damage and message fates
/// draw from disjoint streams.
///
/// [`EventSource`]: crate::engine::EventSource
pub struct FaultSource {
    plan: FaultPlan,
    interval: usize,
}

impl FaultSource {
    /// Builds the source: stale links are injected on epochs where
    /// `epoch % interval == 0` (`interval = 0` means only at epoch 0).
    pub fn new(cfg: FaultConfig, interval: usize) -> Self {
        let plan = FaultPlan::new(FaultConfig {
            seed: cfg.seed ^ 0x57A1E,
            ..cfg
        });
        FaultSource { plan, interval }
    }
}

impl crate::engine::EventSource for FaultSource {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn on_epoch(
        &mut self,
        epoch: usize,
        _window: u64,
        world: &mut crate::engine::World<'_>,
    ) -> crate::engine::SourceActivity {
        let due = if self.interval == 0 {
            epoch == 0
        } else {
            epoch.is_multiple_of(self.interval)
        };
        let mut activity = crate::engine::SourceActivity::default();
        if due {
            let root = world.tree.root();
            for child in self.plan.pick_stale_links(world.tree) {
                world.tree.inject_stale_parent(child, root);
                activity.stale_links += 1;
            }
        }
        activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{simulate_aggregation, LossModel};
    use crate::{Scenario, TopologyKind};

    fn setup() -> (crate::Prepared, KTree) {
        let mut scenario = Scenario::builder().small().seed(60).build();
        scenario.peers = 96;
        scenario.topology = TopologyKind::Tiny;
        let prepared = scenario.prepare();
        let tree = KTree::build(&prepared.net, 2);
        (prepared, tree)
    }

    fn all_report_targets(prepared: &crate::Prepared, tree: &KTree) -> Vec<KtNodeId> {
        let mut targets: Vec<KtNodeId> = prepared
            .net
            .ring()
            .iter()
            .map(|(_, vs)| tree.report_target(&prepared.net, vs))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }

    fn run_agg(
        prepared: &crate::Prepared,
        tree: &KTree,
        cfg: FaultConfig,
    ) -> (FaultPhaseOutcome, FaultPhaseOutcome) {
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(prepared, tree);
        let mut plan = FaultPlan::new(cfg);
        let root_host = prepared.net.vs(tree.node(tree.root()).host).host;
        let crashes = plan.crash_schedule(&prepared.net, root_host, 300);
        let mut scratch = ProtocolScratch::new();
        let agg = simulate_aggregation_faulty(
            &prepared.net,
            tree,
            oracle,
            &contributors,
            &mut plan,
            RetryPolicy::protocol_default(),
            &crashes,
            &mut scratch,
        )
        .expect("attached");
        let dis = simulate_dissemination_faulty(
            &prepared.net,
            tree,
            oracle,
            &mut plan,
            RetryPolicy::protocol_default(),
            &crashes,
            &mut scratch,
        )
        .expect("attached");
        (agg, dis)
    }

    #[test]
    fn no_faults_means_full_coverage_and_reliable_timing() {
        let (prepared, tree) = setup();
        let (agg, dis) = run_agg(&prepared, &tree, FaultConfig::none(7));
        assert_eq!(agg.completion_rate(), 1.0);
        assert_eq!(dis.completion_rate(), 1.0);
        assert_eq!(agg.retries, 0);
        assert_eq!(agg.gave_up, 0);
        // The fault-free faulty driver matches the reliable sim exactly.
        let oracle = prepared.oracle.as_ref().unwrap();
        let contributors = all_report_targets(&prepared, &tree);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let reliable = simulate_aggregation(
            &prepared.net,
            &tree,
            oracle,
            &contributors,
            &LossModel::reliable(),
            &mut rng,
        )
        .expect("attached");
        assert_eq!(agg.timing.completion, reliable.completion);
        assert_eq!(agg.timing.messages, reliable.messages);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let (prepared, tree) = setup();
        let cfg = FaultConfig::with_loss(0.1, 42);
        let (a1, d1) = run_agg(&prepared, &tree, cfg);
        let (a2, d2) = run_agg(&prepared, &tree, cfg);
        assert_eq!(a1.timing.completion, a2.timing.completion);
        assert_eq!(a1.timing.messages, a2.timing.messages);
        assert_eq!(a1.delivered, a2.delivered);
        assert_eq!(a1.gave_up, a2.gave_up);
        assert_eq!(d1.delivered, d2.delivered);
        assert_eq!(d1.timing.messages, d2.timing.messages);
    }

    #[test]
    fn more_loss_means_less_coverage_and_more_retries() {
        let (prepared, tree) = setup();
        let (mild_agg, mild_dis) = run_agg(&prepared, &tree, FaultConfig::with_loss(0.01, 9));
        let (harsh_agg, harsh_dis) = run_agg(&prepared, &tree, FaultConfig::with_loss(0.3, 9));
        assert!(harsh_agg.completion_rate() <= mild_agg.completion_rate());
        assert!(harsh_dis.completion_rate() <= mild_dis.completion_rate());
        assert!(harsh_agg.retries > mild_agg.retries);
        // Mild faults still deliver the vast majority.
        assert!(mild_agg.completion_rate() > 0.8);
        assert!(mild_dis.completion_rate() > 0.8);
    }

    #[test]
    fn crash_stop_takes_subtrees_with_it() {
        let (prepared, tree) = setup();
        // Pure crash regime: no message loss, a tenth of the peers die.
        let cfg = FaultConfig {
            loss_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            crash_fraction: 0.1,
            stale_parents: 0,
            seed: 5,
        };
        let (agg, dis) = run_agg(&prepared, &tree, cfg);
        assert!(agg.delivered < agg.expected, "crashes must cost coverage");
        assert!(dis.delivered < dis.expected);
        assert!(
            agg.completion_rate() > 0.0,
            "the phase still degrades gracefully"
        );
    }

    #[test]
    fn fate_stream_is_seed_stable() {
        let mut a = FaultPlan::new(FaultConfig::with_loss(0.2, 11));
        let mut b = FaultPlan::new(FaultConfig::with_loss(0.2, 11));
        for _ in 0..100 {
            assert_eq!(a.message_fate(), b.message_fate());
        }
    }
}
