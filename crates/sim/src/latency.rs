//! Protocol latency estimation over the physical topology: how long the
//! tree phases take in *latency units* (interdomain hop = 3, intradomain
//! hop = 1), complementing the round counts with real message delays.

use proxbal_chord::ChordNetwork;
use proxbal_ktree::{KTree, KtNodeId, KtNodeMap};
use proxbal_topology::DistanceOracle;

/// Physical latency of the tree edge from `child` to its parent: the
/// shortest-path distance between the peers hosting the two KT nodes
/// (0 when both are planted in virtual servers of the same peer).
pub fn edge_latency(
    net: &ChordNetwork,
    oracle: &DistanceOracle,
    tree: &KTree,
    child: KtNodeId,
) -> u32 {
    let node = tree.node(child);
    let Some(parent) = node.parent else {
        return 0;
    };
    let child_peer = net.vs(node.host).host;
    let parent_peer = net.vs(tree.node(parent).host).host;
    if child_peer == parent_peer {
        return 0;
    }
    let a = net.peer(child_peer).underlay;
    let b = net.peer(parent_peer).underlay;
    assert!(
        a != u32::MAX && b != u32::MAX,
        "latency estimation requires underlay attachments"
    );
    oracle.distance(a, b)
}

/// Accumulated latency from every KT node up to the root (sum of edge
/// latencies along the path).
pub fn root_path_latencies(
    net: &ChordNetwork,
    oracle: &DistanceOracle,
    tree: &KTree,
) -> KtNodeMap<u64> {
    let mut out = KtNodeMap::with_slot_bound(tree.slot_bound());
    let mut queue = std::collections::VecDeque::new();
    out.insert(tree.root(), 0u64);
    queue.push_back(tree.root());
    while let Some(id) = queue.pop_front() {
        let base = out[id];
        for &child in tree.node(id).children.iter().flatten() {
            let l = u64::from(edge_latency(net, oracle, tree, child));
            out.insert(child, base + l);
            queue.push_back(child);
        }
    }
    out
}

/// The completion latency of a bottom-up aggregation (or equivalently a
/// top-down dissemination): the largest root-path latency in the tree.
/// The paper's claim that balancing is "fast" rests on this growing
/// logarithmically with the overlay size.
pub fn aggregation_latency(net: &ChordNetwork, oracle: &DistanceOracle, tree: &KTree) -> u64 {
    root_path_latencies(net, oracle, tree)
        .values()
        .copied()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scenario, TopologyKind};

    #[test]
    fn latencies_monotone_down_the_tree() {
        let mut scenario = Scenario::builder().small().seed(5).build();
        scenario.topology = TopologyKind::Tiny;
        let prepared = scenario.prepare();
        let tree = KTree::build(&prepared.net, 2);
        let oracle = prepared.oracle.as_ref().unwrap();
        let lat = root_path_latencies(&prepared.net, oracle, &tree);
        assert_eq!(lat.len(), tree.len());
        for id in tree.iter_ids() {
            if let Some(parent) = tree.node(id).parent {
                assert!(lat[&id] >= lat[&parent]);
            }
        }
        assert_eq!(lat[&tree.root()], 0);
        let total = aggregation_latency(&prepared.net, oracle, &tree);
        assert_eq!(total, *lat.values().max().unwrap());
        assert!(total > 0, "some tree edge must cross peers");
    }
}
