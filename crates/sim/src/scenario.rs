use proxbal_chord::ChordNetwork;
use proxbal_core::{ApproxTransfer, BalancerConfig, LoadState, Underlay};
use proxbal_topology::{
    select_landmarks, DistanceOracle, LandmarkOracle, NodeId, TransitStubConfig,
    TransitStubTopology,
};
use proxbal_workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which physical topology to attach the overlay to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The paper's "ts5k-large": a few big stub domains.
    Ts5kLarge,
    /// The paper's "ts5k-small": nodes scattered across the Internet.
    Ts5kSmall,
    /// A 50k-node transit-stub underlay (ts5k-large shape, 10× the size)
    /// for the xl-scale runs.
    Ts50k,
    /// A tiny topology for tests and examples.
    Tiny,
    /// No underlay (proximity-ignorant experiments only).
    None,
}

/// How transfer-phase distances are answered.
///
/// `Exact` runs a bucket-queue Dijkstra (memoized per row) for every query —
/// the default, and what every pre-existing experiment uses. `Approximate`
/// answers from precomputed landmark vectors (triangle-inequality bounds)
/// and falls back to exact rows only for the candidate transfer pairs whose
/// bounds do not pin the distance — the filter-then-refine scheme that makes
/// the million-peer runs affordable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMode {
    /// Exact shortest-path distances for every query.
    Exact,
    /// Landmark bounds first, exact refinement for uncertain pairs only.
    Approximate,
}

/// Declarative description of one experiment, fully determined by `seed`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of DHT peers (paper: 4096).
    pub peers: usize,
    /// Virtual servers per peer at start (paper: 5).
    pub vs_per_peer: usize,
    /// Virtual-server load distribution.
    pub load: LoadModel,
    /// Node capacity profile.
    pub capacity: CapacityProfile,
    /// Physical topology.
    pub topology: TopologyKind,
    /// Number of landmarks (paper: 15).
    pub landmarks: usize,
    /// Balancer configuration.
    pub balancer: BalancerConfig,
    /// Fault regime driven through the protocol sims (`None` = the
    /// fault-free runs of the paper's evaluation). Kept out of `prepare`
    /// on purpose: faults never perturb scenario construction, so a faulty
    /// scenario shares its network/loads/topology bit-for-bit with the
    /// fault-free one.
    pub faults: Option<crate::faults::FaultConfig>,
    /// Churn regime for continuous operation (`None` = static membership).
    /// Like `faults`, never consulted by `prepare`.
    pub churn: Option<crate::churn::ChurnConfig>,
    /// Load-drift regime for continuous operation (`None` = static loads).
    /// Like `faults`, never consulted by `prepare`.
    pub drift: Option<crate::drift::DriftConfig>,
    /// Bound on both distance oracles' row caches, in resident rows
    /// (`0` = unbounded). [`Scenario::prepare`] honors this directly:
    /// memory policy is part of the scenario, set once at build time.
    pub oracle_capacity: usize,
    /// How transfer-phase distances are answered (see [`DistanceMode`]).
    /// `Exact` (the default) reproduces every historical output
    /// byte-for-byte; `Approximate` builds a hop-metric [`LandmarkOracle`]
    /// during preparation and routes phase-4 distance queries through it.
    pub distance_mode: DistanceMode,
    /// With [`DistanceMode::Approximate`]: how many exact Dijkstra source
    /// rows the refine step may spend per balancing pass on candidate
    /// transfer pairs whose landmark bounds do not pin the distance.
    pub refine_sources: usize,
    /// Number of preparation shards (`0` = the serial preparation path).
    /// With `shards > 0`, ring-position generation and landmark-vector
    /// construction are partitioned across this many independent workers
    /// and merged deterministically — the result depends on `shards` but
    /// never on `--threads`.
    pub shards: usize,
    /// Master seed: every random choice derives from it.
    pub seed: u64,
}

/// Oracle row-cache bound used by the xl-scale runs: 4096 rows ≈ 800 MB at
/// ts50k graph size, which keeps the whole four-phase run in a few GiB of
/// RSS.
pub const XL_ORACLE_CAPACITY: usize = 4096;

/// Oracle row-cache bound for the xl2 (million-peer) runs. Rows are
/// delta-compressed, but at 1M peers the budget is the 65k run's footprint,
/// so the cache is kept an order of magnitude smaller and the landmark
/// oracle absorbs the bulk of the queries.
pub const XL2_ORACLE_CAPACITY: usize = 1024;

impl Scenario {
    /// Starts a fluent builder preloaded with the paper's full-scale setup
    /// (§5.2): 4096 peers × 5 virtual servers, Gaussian loads, Gnutella
    /// capacities, ts5k-large, 15 landmarks, K = 2, seed 0.
    ///
    /// ```
    /// use proxbal_sim::{Scenario, TopologyKind};
    ///
    /// let scenario = Scenario::builder()
    ///     .peers(256)
    ///     .topology(TopologyKind::Tiny)
    ///     .landmarks(4)
    ///     .seed(7)
    ///     .build();
    /// let prepared = scenario.prepare();
    /// assert_eq!(prepared.net.alive_peers().len(), 256);
    /// ```
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// Builds the network, loads, topology, oracle and landmarks. The
    /// oracle row caches are bounded to [`Scenario::oracle_capacity`]
    /// resident rows (`0` = unbounded), with landmark rows pinned so they
    /// survive eviction pressure. Every result is bit-identical across
    /// capacity settings — eviction only discards memoized pure functions
    /// of the graph.
    ///
    /// With [`Scenario::shards`] `> 0` this dispatches to the sharded
    /// preparation path ([`crate::shard::prepare_sharded`]); the result is
    /// deterministic in the scenario (including `shards`) and independent
    /// of the worker-thread count.
    pub fn prepare(&self) -> Prepared {
        self.prepare_threads(crate::parallel::default_threads())
    }

    /// Like [`Scenario::prepare`] with an explicit worker-thread count.
    /// Thread count never changes the result — it only bounds parallelism —
    /// so this exists for benchmarks and determinism tests that pin it.
    pub fn prepare_threads(&self, threads: usize) -> Prepared {
        self.prepare_run(threads, &proxbal_profile::NullSink)
    }

    /// Like [`Scenario::prepare_threads`] with per-phase heartbeat lines
    /// on `progress` (topology, join, attach/landmarks, loads). Heartbeats
    /// go to the sink (stderr for the CLI), never to stdout, and never
    /// change the prepared result.
    pub fn prepare_run(
        &self,
        threads: usize,
        progress: &dyn proxbal_profile::ProgressSink,
    ) -> Prepared {
        if self.shards > 0 {
            crate::shard::prepare_sharded_run(self, threads, progress)
        } else {
            self.prepare_serial(threads, progress)
        }
    }

    fn prepare_serial(
        &self,
        threads: usize,
        progress: &dyn proxbal_profile::ProgressSink,
    ) -> Prepared {
        let oracle_capacity = self.oracle_capacity;
        let mut rng = StdRng::seed_from_u64(self.seed);

        let topo = match self.topology {
            TopologyKind::Ts5kLarge => Some(TransitStubTopology::generate(
                TransitStubConfig::ts5k_large(),
                &mut rng,
            )),
            TopologyKind::Ts5kSmall => Some(TransitStubTopology::generate(
                TransitStubConfig::ts5k_small(),
                &mut rng,
            )),
            TopologyKind::Ts50k => Some(TransitStubTopology::generate(
                TransitStubConfig::ts50k(),
                &mut rng,
            )),
            TopologyKind::Tiny => Some(TransitStubTopology::generate(
                TransitStubConfig::tiny(),
                &mut rng,
            )),
            TopologyKind::None => None,
        };
        if let Some(ref topo) = topo {
            progress.event(&format!(
                "prepare: topology generated ({} nodes)",
                topo.graph.node_count()
            ));
        }

        let mut net = ChordNetwork::new();
        for i in 0..self.peers {
            net.join_peer(self.vs_per_peer, &mut rng);
            if (i + 1).is_multiple_of(65_536) {
                progress.event(&format!("prepare: joined {}/{} peers", i + 1, self.peers));
            }
        }

        // Attach peers to distinct random stub nodes (peers are end hosts);
        // only fall back to sharing when there are more peers than stubs.
        let (oracle, landmarks) = if let Some(ref topo) = topo {
            let mut stubs = topo.stub_nodes();
            assert!(!stubs.is_empty());
            stubs.shuffle(&mut rng);
            for (i, p) in net.alive_peers().into_iter().enumerate() {
                net.attach(p, stubs[i % stubs.len()]);
            }
            let landmarks = select_landmarks(topo, self.landmarks, &mut rng);
            let cap = oracle_capacity;
            let oracle = DistanceOracle::with_capacity(Arc::new(topo.graph.clone()), cap);
            let latency_oracle =
                DistanceOracle::with_capacity(Arc::new(topo.latency_graph.clone()), cap);
            // Landmark vectors need the distance row *from* each landmark in
            // the latency metric; batch-fill them up front so no balancing
            // run (aware or ignorant, any mode ordering) computes one twice.
            latency_oracle.precompute(&landmarks, threads);
            // Landmark rows back every proximity query; with a bounded
            // cache they must survive arbitrary eviction pressure.
            if cap > 0 {
                for &l in &landmarks {
                    latency_oracle.pin(l);
                }
            }
            progress.event(&format!(
                "prepare: peers attached, {} landmark rows precomputed",
                landmarks.len()
            ));
            (Some((oracle, latency_oracle)), landmarks)
        } else {
            (None, Vec::new())
        };

        let loads = LoadState::generate(&net, &self.capacity, &self.load, &mut rng);
        progress.event("prepare: load state generated");

        let (oracle, latency_oracle) = match oracle {
            Some((a, b)) => (Some(a), Some(b)),
            None => (None, None),
        };
        // Hop-metric landmark vectors back the approximate transfer
        // distances; built after everything else so the exact path's RNG
        // consumption (and therefore every historical output) is untouched.
        let hop_landmarks = match (self.distance_mode, oracle.as_ref()) {
            (DistanceMode::Approximate, Some(oracle)) if !landmarks.is_empty() => {
                Some(LandmarkOracle::build(oracle, &landmarks, threads))
            }
            _ => None,
        };
        Prepared {
            scenario: self.clone(),
            net,
            loads,
            topo,
            oracle,
            latency_oracle,
            landmarks,
            hop_landmarks,
            rng,
            threads,
        }
    }
}

/// Fluent construction of a [`Scenario`] — the one front door for every
/// experiment configuration (one-shot figures, fault sweeps, xl-scale runs
/// and the continuous-operation engine alike).
///
/// A fresh builder carries the paper's full-scale defaults; the
/// [`ScenarioBuilder::small`] and [`ScenarioBuilder::xl`] presets rescale
/// them wholesale, and every knob has an individual setter. `build` is
/// infallible: all invariants are enforced by types and the few numeric
/// ones (`peers >= 1`, …) by the same asserts `prepare` always had.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioBuilder {
    /// A builder with the paper's full-scale defaults (see
    /// [`Scenario::builder`]).
    pub fn new() -> Self {
        ScenarioBuilder {
            scenario: Scenario {
                peers: 4096,
                vs_per_peer: 5,
                load: LoadModel::gaussian(1_000_000.0, 10_000.0),
                capacity: CapacityProfile::gnutella(),
                topology: TopologyKind::Ts5kLarge,
                landmarks: 15,
                balancer: BalancerConfig::default(),
                faults: None,
                churn: None,
                drift: None,
                oracle_capacity: 0,
                distance_mode: DistanceMode::Exact,
                refine_sources: 4096,
                shards: 0,
                seed: 0,
            },
        }
    }

    /// Rescales to the test-sized preset: 128 peers on the tiny topology
    /// with 4 landmarks (fast, same shape as the paper setup).
    pub fn small(mut self) -> Self {
        self.scenario.peers = 128;
        self.scenario.topology = TopologyKind::Tiny;
        self.scenario.landmarks = 4;
        self
    }

    /// Rescales to the xl preset: 65,536 peers over a ~50k-node
    /// transit-stub underlay, with the oracle cache bounded to
    /// [`XL_ORACLE_CAPACITY`] rows (unbounded, it can grow past 100 GB at
    /// this scale).
    pub fn xl(mut self) -> Self {
        self.scenario.peers = 65_536;
        self.scenario.topology = TopologyKind::Ts50k;
        self.scenario.oracle_capacity = XL_ORACLE_CAPACITY;
        self
    }

    /// Rescales to the xl2 (million-peer) preset: 1,048,576 peers × 5
    /// virtual servers over the ~50k-node transit-stub underlay, prepared
    /// across 8 shards with landmark-approximate transfer distances
    /// ([`DistanceMode::Approximate`]) and the oracle cache bounded to
    /// [`XL2_ORACLE_CAPACITY`] rows. Sharding is always on for this preset,
    /// so the run is identical at any `--threads`.
    pub fn xl2(mut self) -> Self {
        self.scenario.peers = 1_048_576;
        self.scenario.topology = TopologyKind::Ts50k;
        self.scenario.oracle_capacity = XL2_ORACLE_CAPACITY;
        self.scenario.distance_mode = DistanceMode::Approximate;
        self.scenario.refine_sources = 4096;
        self.scenario.shards = 8;
        self
    }

    /// Number of DHT peers (paper: 4096).
    pub fn peers(mut self, peers: usize) -> Self {
        self.scenario.peers = peers;
        self
    }

    /// Virtual servers per peer at start (paper: 5).
    pub fn vs_per_peer(mut self, vs_per_peer: usize) -> Self {
        self.scenario.vs_per_peer = vs_per_peer;
        self
    }

    /// Virtual-server load distribution.
    pub fn load(mut self, load: LoadModel) -> Self {
        self.scenario.load = load;
        self
    }

    /// Node capacity profile.
    pub fn capacity(mut self, capacity: CapacityProfile) -> Self {
        self.scenario.capacity = capacity;
        self
    }

    /// Physical topology.
    pub fn topology(mut self, topology: TopologyKind) -> Self {
        self.scenario.topology = topology;
        self
    }

    /// Number of landmarks (paper: 15).
    pub fn landmarks(mut self, landmarks: usize) -> Self {
        self.scenario.landmarks = landmarks;
        self
    }

    /// Balancer configuration.
    pub fn balancer(mut self, balancer: BalancerConfig) -> Self {
        self.scenario.balancer = balancer;
        self
    }

    /// Fault regime (message loss, delay, crashes, stale links).
    pub fn faults(mut self, faults: crate::faults::FaultConfig) -> Self {
        self.scenario.faults = Some(faults);
        self
    }

    /// Churn regime for continuous operation.
    pub fn churn(mut self, churn: crate::churn::ChurnConfig) -> Self {
        self.scenario.churn = Some(churn);
        self
    }

    /// Load-drift regime for continuous operation.
    pub fn drift(mut self, drift: crate::drift::DriftConfig) -> Self {
        self.scenario.drift = Some(drift);
        self
    }

    /// Oracle row-cache bound in resident rows (`0` = unbounded).
    pub fn oracle_capacity(mut self, oracle_capacity: usize) -> Self {
        self.scenario.oracle_capacity = oracle_capacity;
        self
    }

    /// How transfer-phase distances are answered (see [`DistanceMode`]).
    pub fn distance_mode(mut self, distance_mode: DistanceMode) -> Self {
        self.scenario.distance_mode = distance_mode;
        self
    }

    /// Exact-refinement budget for [`DistanceMode::Approximate`], in
    /// Dijkstra source rows per balancing pass.
    pub fn refine_sources(mut self, refine_sources: usize) -> Self {
        self.scenario.refine_sources = refine_sources;
        self
    }

    /// Number of preparation shards (`0` = serial preparation).
    pub fn shards(mut self, shards: usize) -> Self {
        self.scenario.shards = shards;
        self
    }

    /// Master seed: every random choice derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

/// A fully materialized scenario, ready to run.
pub struct Prepared {
    /// The source scenario.
    pub scenario: Scenario,
    /// The Chord overlay.
    pub net: ChordNetwork,
    /// Per-VS loads and per-peer capacities.
    pub loads: LoadState,
    /// The physical topology, if any.
    pub topo: Option<TransitStubTopology>,
    /// Hop-cost distance oracle over the topology, if any.
    pub oracle: Option<DistanceOracle>,
    /// Latency-metric oracle (landmark measurements), if any.
    pub latency_oracle: Option<DistanceOracle>,
    /// Landmark nodes.
    pub landmarks: Vec<NodeId>,
    /// Hop-metric landmark vectors for approximate transfer distances —
    /// present exactly when the scenario asked for
    /// [`DistanceMode::Approximate`] and has a topology.
    pub hop_landmarks: Option<LandmarkOracle>,
    /// The scenario RNG, positioned after setup (use for the run itself).
    pub rng: StdRng,
    /// Worker-thread count the scenario was prepared with; runs over this
    /// `Prepared` reuse it for the intra-round parallel sections. Purely a
    /// performance knob — every output is byte-identical at any value.
    pub threads: usize,
}

impl Prepared {
    /// The [`Underlay`] view required by proximity-aware balancing, if this
    /// scenario has a topology. Carries the approximate-distance scheme
    /// whenever the scenario was prepared with
    /// [`DistanceMode::Approximate`].
    pub fn underlay(&self) -> Option<Underlay<'_>> {
        self.oracle.as_ref().map(|oracle| Underlay {
            oracle,
            latency_oracle: self.latency_oracle.as_ref(),
            landmarks: &self.landmarks,
            approx: self.hop_landmarks.as_ref().map(|landmarks| ApproxTransfer {
                landmarks,
                refine_sources: self.scenario.refine_sources,
            }),
        })
    }

    /// A fresh RNG stream derived from the scenario seed and a label, for
    /// runs that must not perturb each other's randomness.
    pub fn derived_rng(&self, label: u64) -> StdRng {
        StdRng::seed_from_u64(self.scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ label)
    }
}
