use proxbal_chord::ChordNetwork;
use proxbal_core::{BalancerConfig, LoadState, Underlay};
use proxbal_topology::{
    select_landmarks, DistanceOracle, NodeId, TransitStubConfig, TransitStubTopology,
};
use proxbal_workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which physical topology to attach the overlay to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// The paper's "ts5k-large": a few big stub domains.
    Ts5kLarge,
    /// The paper's "ts5k-small": nodes scattered across the Internet.
    Ts5kSmall,
    /// A 50k-node transit-stub underlay (ts5k-large shape, 10× the size)
    /// for the xl-scale runs.
    Ts50k,
    /// A tiny topology for tests and examples.
    Tiny,
    /// No underlay (proximity-ignorant experiments only).
    None,
}

/// Declarative description of one experiment, fully determined by `seed`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of DHT peers (paper: 4096).
    pub peers: usize,
    /// Virtual servers per peer at start (paper: 5).
    pub vs_per_peer: usize,
    /// Virtual-server load distribution.
    pub load: LoadModel,
    /// Node capacity profile.
    pub capacity: CapacityProfile,
    /// Physical topology.
    pub topology: TopologyKind,
    /// Number of landmarks (paper: 15).
    pub landmarks: usize,
    /// Balancer configuration.
    pub balancer: BalancerConfig,
    /// Fault regime driven through the protocol sims (`None` = the
    /// fault-free runs of the paper's evaluation). Kept out of `prepare`
    /// on purpose: faults never perturb scenario construction, so a faulty
    /// scenario shares its network/loads/topology bit-for-bit with the
    /// fault-free one.
    pub faults: Option<crate::faults::FaultConfig>,
    /// Master seed: every random choice derives from it.
    pub seed: u64,
}

/// Oracle row-cache bound used by the xl-scale runs: 4096 rows ≈ 800 MB at
/// ts50k graph size, which keeps the whole four-phase run in a few GiB of
/// RSS. Pass to [`Scenario::prepare_bounded`].
pub const XL_ORACLE_CAPACITY: usize = 4096;

impl Scenario {
    /// The paper's full-scale setup (§5.2): 4096 peers × 5 virtual servers,
    /// Gaussian loads, Gnutella capacities, ts5k-large, 15 landmarks, K = 2.
    pub fn paper(seed: u64) -> Self {
        Scenario {
            peers: 4096,
            vs_per_peer: 5,
            load: LoadModel::gaussian(1_000_000.0, 10_000.0),
            capacity: CapacityProfile::gnutella(),
            topology: TopologyKind::Ts5kLarge,
            landmarks: 15,
            balancer: BalancerConfig::default(),
            faults: None,
            seed,
        }
    }

    /// A scaled-down variant for unit/integration tests (fast, same shape).
    pub fn small(seed: u64) -> Self {
        Scenario {
            peers: 128,
            vs_per_peer: 5,
            topology: TopologyKind::Tiny,
            landmarks: 4,
            ..Self::paper(seed)
        }
    }

    /// The xl-scale setup: 65,536 peers over a ~50k-node transit-stub
    /// underlay. Prepare it with
    /// `prepare_bounded(`[`XL_ORACLE_CAPACITY`]`)` — an unbounded oracle
    /// cache can grow past 100 GB at this scale.
    pub fn xl(seed: u64) -> Self {
        Scenario {
            peers: 65_536,
            topology: TopologyKind::Ts50k,
            ..Self::paper(seed)
        }
    }

    /// Builds the network, loads, topology, oracle and landmarks.
    pub fn prepare(&self) -> Prepared {
        self.prepare_bounded(0)
    }

    /// Like [`Scenario::prepare`], but bounds both distance oracles' row
    /// caches to `oracle_capacity` resident rows (`0` = unbounded) and pins
    /// the landmark rows so they survive eviction pressure. Every result is
    /// bit-identical to the unbounded preparation — eviction only discards
    /// memoized pure functions of the graph.
    pub fn prepare_bounded(&self, oracle_capacity: usize) -> Prepared {
        let mut rng = StdRng::seed_from_u64(self.seed);

        let topo = match self.topology {
            TopologyKind::Ts5kLarge => Some(TransitStubTopology::generate(
                TransitStubConfig::ts5k_large(),
                &mut rng,
            )),
            TopologyKind::Ts5kSmall => Some(TransitStubTopology::generate(
                TransitStubConfig::ts5k_small(),
                &mut rng,
            )),
            TopologyKind::Ts50k => Some(TransitStubTopology::generate(
                TransitStubConfig::ts50k(),
                &mut rng,
            )),
            TopologyKind::Tiny => Some(TransitStubTopology::generate(
                TransitStubConfig::tiny(),
                &mut rng,
            )),
            TopologyKind::None => None,
        };

        let mut net = ChordNetwork::new();
        for _ in 0..self.peers {
            net.join_peer(self.vs_per_peer, &mut rng);
        }

        // Attach peers to distinct random stub nodes (peers are end hosts);
        // only fall back to sharing when there are more peers than stubs.
        let (oracle, landmarks) = if let Some(ref topo) = topo {
            let mut stubs = topo.stub_nodes();
            assert!(!stubs.is_empty());
            stubs.shuffle(&mut rng);
            for (i, p) in net.alive_peers().into_iter().enumerate() {
                net.attach(p, stubs[i % stubs.len()]);
            }
            let landmarks = select_landmarks(topo, self.landmarks, &mut rng);
            let cap = oracle_capacity;
            let oracle = DistanceOracle::with_capacity(Arc::new(topo.graph.clone()), cap);
            let latency_oracle =
                DistanceOracle::with_capacity(Arc::new(topo.latency_graph.clone()), cap);
            // Landmark vectors need the distance row *from* each landmark in
            // the latency metric; batch-fill them up front so no balancing
            // run (aware or ignorant, any mode ordering) computes one twice.
            let threads = crate::parallel::default_threads();
            latency_oracle.precompute(&landmarks, threads);
            // Landmark rows back every proximity query; with a bounded
            // cache they must survive arbitrary eviction pressure.
            if cap > 0 {
                for &l in &landmarks {
                    latency_oracle.pin(l);
                }
            }
            (Some((oracle, latency_oracle)), landmarks)
        } else {
            (None, Vec::new())
        };

        let loads = LoadState::generate(&net, &self.capacity, &self.load, &mut rng);

        let (oracle, latency_oracle) = match oracle {
            Some((a, b)) => (Some(a), Some(b)),
            None => (None, None),
        };
        Prepared {
            scenario: self.clone(),
            net,
            loads,
            topo,
            oracle,
            latency_oracle,
            landmarks,
            rng,
        }
    }
}

/// A fully materialized scenario, ready to run.
pub struct Prepared {
    /// The source scenario.
    pub scenario: Scenario,
    /// The Chord overlay.
    pub net: ChordNetwork,
    /// Per-VS loads and per-peer capacities.
    pub loads: LoadState,
    /// The physical topology, if any.
    pub topo: Option<TransitStubTopology>,
    /// Hop-cost distance oracle over the topology, if any.
    pub oracle: Option<DistanceOracle>,
    /// Latency-metric oracle (landmark measurements), if any.
    pub latency_oracle: Option<DistanceOracle>,
    /// Landmark nodes.
    pub landmarks: Vec<NodeId>,
    /// The scenario RNG, positioned after setup (use for the run itself).
    pub rng: StdRng,
}

impl Prepared {
    /// The [`Underlay`] view required by proximity-aware balancing, if this
    /// scenario has a topology.
    pub fn underlay(&self) -> Option<Underlay<'_>> {
        self.oracle.as_ref().map(|oracle| Underlay {
            oracle,
            latency_oracle: self.latency_oracle.as_ref(),
            landmarks: &self.landmarks,
        })
    }

    /// A fresh RNG stream derived from the scenario seed and a label, for
    /// runs that must not perturb each other's randomness.
    pub fn derived_rng(&self, label: u64) -> StdRng {
        StdRng::seed_from_u64(self.scenario.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ label)
    }
}
