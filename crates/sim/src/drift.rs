//! Load drift and periodic re-balancing.
//!
//! The paper assumes "the load on a virtual server is stable over the
//! timescale it takes for the load balancing algorithm to perform" and
//! leaves dynamic loads to future work. This module stresses that
//! assumption: per-virtual-server loads follow a geometric random walk
//! between balancing passes, and the balancer runs periodically. The
//! output tracks balance quality (unit-load Gini, heavy-node counts) over
//! time and the cumulative load moved — the operational cost of keeping a
//! drifting system balanced.

use crate::metrics::gini;
use proxbal_chord::ChordNetwork;
use proxbal_core::{BalancerConfig, LoadBalancer, LoadState, NodeClass, Underlay};
use proxbal_workload::sample_gaussian;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Drift-experiment parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Number of drift steps to simulate.
    pub steps: usize,
    /// Run the balancer every this many steps.
    pub rebalance_every: usize,
    /// Volatility of the per-VS geometric random walk: each step the load
    /// is multiplied by `exp(σ·Z)`, `Z ~ N(0,1)`.
    pub sigma: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            steps: 40,
            rebalance_every: 10,
            sigma: 0.08,
        }
    }
}

/// One sample of the drift timeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftSample {
    /// Step index.
    pub step: usize,
    /// Unit-load Gini at this step (after any rebalance).
    pub gini: f64,
    /// Heavy-node count at this step (against fresh system totals).
    pub heavy: usize,
    /// Load moved by the rebalance at this step (0 when none ran).
    pub moved: f64,
}

/// Result of a drift run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DriftStats {
    /// Per-step samples.
    pub timeline: Vec<DriftSample>,
    /// Total load moved across all rebalances.
    pub total_moved: f64,
    /// Number of rebalances executed.
    pub rebalances: usize,
}

impl DriftStats {
    /// Mean Gini over the steps *without* a rebalance (steady-state drift
    /// inequality).
    pub fn mean_gini(&self) -> f64 {
        if self.timeline.is_empty() {
            return 0.0;
        }
        self.timeline.iter().map(|s| s.gini).sum::<f64>() / self.timeline.len() as f64
    }

    /// The worst heavy-node count seen on the timeline.
    pub fn max_heavy(&self) -> usize {
        self.timeline.iter().map(|s| s.heavy).max().unwrap_or(0)
    }
}

fn unit_loads(net: &ChordNetwork, loads: &LoadState) -> Vec<f64> {
    net.alive_peers()
        .iter()
        .map(|&p| loads.unit_load(net, p))
        .collect()
}

/// Unit-load Gini over the alive peers (shared with the engine's sampler).
pub(crate) fn gini_of_unit_loads(net: &ChordNetwork, loads: &LoadState) -> f64 {
    gini(&unit_loads(net, loads))
}

pub(crate) fn heavy_count(net: &ChordNetwork, loads: &LoadState, epsilon: f64) -> usize {
    let params = proxbal_core::ClassifyParams { epsilon };
    let system = loads.totals(net);
    let cls = proxbal_core::Classification::compute(net, loads, &params, system);
    cls.count_of(NodeClass::Heavy)
}

/// Runs the drift experiment: loads drift every step, the balancer runs
/// every `rebalance_every` steps.
pub fn run_drift<R: Rng>(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    cfg: &DriftConfig,
    balancer_cfg: BalancerConfig,
    underlay: Option<Underlay<'_>>,
    rng: &mut R,
) -> DriftStats {
    assert!(cfg.rebalance_every > 0);
    let balancer = LoadBalancer::new(balancer_cfg);
    let mut stats = DriftStats::default();

    for step in 0..cfg.steps {
        // Drift: geometric random walk per virtual server.
        let vss: Vec<_> = net.ring().iter().map(|(_, v)| v).collect();
        for vs in vss {
            let factor = (cfg.sigma * sample_gaussian(rng)).exp();
            let new = loads.vs_load(vs) * factor;
            loads.set_vs_load(vs, new);
        }

        let mut moved = 0.0;
        if (step + 1) % cfg.rebalance_every == 0 {
            let report = balancer
                .run(net, loads, underlay, rng)
                .expect("attached network");
            moved = proxbal_core::total_moved_load(&report.transfers);
            stats.total_moved += moved;
            stats.rebalances += 1;
        }

        stats.timeline.push(DriftSample {
            step,
            gini: gini(&unit_loads(net, loads)),
            heavy: heavy_count(net, loads, balancer_cfg.epsilon),
            moved,
        });
    }
    stats
}

/// Geometric load drift as a pluggable [`EventSource`]: every epoch, each
/// virtual server's load is multiplied by `exp(σ·Z)` — the same random
/// walk [`run_drift`] applies per step. Every alive peer's load changes,
/// so all of them go dirty.
///
/// [`EventSource`]: crate::engine::EventSource
pub struct DriftSource {
    cfg: DriftConfig,
    rng: rand::rngs::StdRng,
}

impl DriftSource {
    /// Builds the source; `rng` must be a private stream (e.g.
    /// `Prepared::derived_rng`) so drift never perturbs other randomness.
    pub fn new(cfg: DriftConfig, rng: rand::rngs::StdRng) -> Self {
        DriftSource { cfg, rng }
    }
}

impl crate::engine::EventSource for DriftSource {
    fn name(&self) -> &'static str {
        "drift"
    }

    fn on_epoch(
        &mut self,
        _epoch: usize,
        _window: u64,
        world: &mut crate::engine::World<'_>,
    ) -> crate::engine::SourceActivity {
        let vss: Vec<_> = world.net.ring().iter().map(|(_, v)| v).collect();
        let drifted = vss.len();
        for vs in vss {
            let factor = (self.cfg.sigma * sample_gaussian(&mut self.rng)).exp();
            let new = world.loads.vs_load(vs) * factor;
            world.loads.set_vs_load(vs, new);
        }
        for p in world.net.alive_peers() {
            world.dirty.insert(p);
        }
        crate::engine::SourceActivity {
            drifted,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxbal_workload::{CapacityProfile, LoadModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ChordNetwork, LoadState, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new();
        for _ in 0..96 {
            net.join_peer(5, &mut rng);
        }
        let loads = LoadState::generate(
            &net,
            &CapacityProfile::gnutella(),
            &LoadModel::gaussian(1e6, 1e4),
            &mut rng,
        );
        (net, loads, rng)
    }

    #[test]
    fn rebalancing_keeps_drifting_system_balanced() {
        let (mut net, mut loads, mut rng) = setup(1);
        let cfg = DriftConfig {
            steps: 30,
            rebalance_every: 5,
            sigma: 0.1,
        };
        // Repeated balancing concentrates large virtual servers on the few
        // high-capacity peers; once such a peer drifts heavy, its oversized
        // virtual servers fit no light node — the case the VS-splitting
        // extension exists for. Enable it.
        let balancer_cfg = BalancerConfig {
            max_splits: 16,
            ..BalancerConfig::default()
        };
        let stats = run_drift(&mut net, &mut loads, &cfg, balancer_cfg, None, &mut rng);
        assert_eq!(stats.rebalances, 6);
        assert!(stats.total_moved > 0.0);
        net.check_invariants().unwrap();
        // Right after each rebalance, heavy count drops to a small residue.
        let peers = net.alive_peers().len();
        for s in stats.timeline.iter().filter(|s| s.moved > 0.0) {
            assert!(
                s.heavy <= peers / 12,
                "step {}: {} heavy right after rebalance",
                s.step,
                s.heavy
            );
        }
        // And it is always far below the un-rebalanced steady state.
        let worst_after_rebalance = stats
            .timeline
            .iter()
            .filter(|s| s.moved > 0.0)
            .map(|s| s.heavy)
            .max()
            .unwrap();
        assert!(worst_after_rebalance < stats.max_heavy());
    }

    #[test]
    fn without_rebalancing_imbalance_grows() {
        let (mut net, mut loads, mut rng) = setup(2);
        // One initial balance, then pure drift.
        let balancer = LoadBalancer::new(BalancerConfig::default());
        let _ = balancer
            .run(&mut net, &mut loads, None, &mut rng)
            .expect("attached network");
        let balanced = heavy_count(&net, &loads, BalancerConfig::default().epsilon);
        let cfg = DriftConfig {
            steps: 60,
            rebalance_every: 1000, // never fires within the horizon
            sigma: 0.15,
        };
        let stats = run_drift(
            &mut net,
            &mut loads,
            &cfg,
            BalancerConfig::default(),
            None,
            &mut rng,
        );
        assert_eq!(stats.rebalances, 0);
        // Compare against the freshly balanced state rather than an early
        // timeline sample: heavy counts saturate within a few steps at this
        // volatility, so any single early-vs-late pair is noise-sensitive.
        let late = stats.timeline.last().unwrap().heavy;
        assert!(
            late > balanced,
            "heavy nodes should accumulate under drift: {balanced} -> {late}"
        );
    }

    #[test]
    fn frequent_rebalancing_beats_rare_on_quality() {
        let (net, loads, _) = setup(3);
        let run_with = |every: usize, seed: u64| -> f64 {
            let mut net = net.clone();
            let mut loads = loads.clone();
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = DriftConfig {
                steps: 40,
                rebalance_every: every,
                sigma: 0.1,
            };
            let stats = run_drift(
                &mut net,
                &mut loads,
                &cfg,
                BalancerConfig::default(),
                None,
                &mut rng,
            );
            stats.mean_gini()
        };
        let frequent = run_with(4, 9);
        let rare = run_with(40, 9);
        assert!(
            frequent < rare,
            "frequent rebalancing should keep Gini lower: {frequent:.3} vs {rare:.3}"
        );
    }
}
