//! Churn simulation: Poisson joins and crashes drive the DHT while the
//! K-nary tree runs periodic maintenance — the setting behind the paper's
//! self-repair claims (§3.1.1: the tree "can be completely reconstructed in
//! `O(log_K N)` time").

use crate::des::{EventQueue, SimTime};
use proxbal_chord::{ChordNetwork, RoutingState};
use proxbal_ktree::KTree;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Churn process parameters. Rates are Poisson intensities per time unit.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean joins per time unit.
    pub join_rate: f64,
    /// Mean crashes per time unit.
    pub crash_rate: f64,
    /// Virtual servers created by each joining peer.
    pub vs_per_join: usize,
    /// Interval between K-nary tree maintenance rounds.
    pub maintenance_interval: SimTime,
    /// Interval between Chord stabilization (routing repair) rounds.
    pub stabilize_interval: SimTime,
    /// Simulation horizon.
    pub duration: SimTime,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            join_rate: 0.05,
            crash_rate: 0.05,
            vs_per_join: 5,
            maintenance_interval: 10,
            stabilize_interval: 10,
            duration: 1_000,
        }
    }
}

/// What happened during a churn run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnStats {
    /// Peers that joined.
    pub joins: usize,
    /// Peers that crashed.
    pub crashes: usize,
    /// Maintenance rounds executed.
    pub maintenance_rounds: usize,
    /// Tree mutations applied across all maintenance rounds.
    pub tree_mutations: usize,
    /// Rounds needed to re-stabilize after the churn stopped.
    pub final_repair_rounds: usize,
    /// Lookup success rate sampled during churn (stale routing tolerated
    /// via successor lists).
    pub lookup_success_rate: f64,
    /// Lookups sampled.
    pub lookups: usize,
}

#[derive(Debug)]
enum Event {
    Join,
    Crash,
    Maintain,
    Stabilize,
    SampleLookup,
}

/// Exponential inter-arrival delay for a Poisson process of intensity
/// `rate` (rounded up to ≥ 1 time unit).
fn poisson_delay<R: Rng>(rate: f64, rng: &mut R) -> SimTime {
    assert!(rate > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>();
    ((-u.ln() / rate).ceil() as SimTime).max(1)
}

/// Runs the churn process over `net`/`tree`, returning statistics. The
/// network keeps at least two peers alive at all times (a degenerate ring
/// has no tree to maintain). After the horizon, maintenance runs to
/// stabilization and the tree invariants are verified.
pub fn run_churn<R: Rng>(
    net: &mut ChordNetwork,
    tree: &mut KTree,
    routing: &mut RoutingState,
    cfg: &ChurnConfig,
    rng: &mut R,
) -> ChurnStats {
    let mut stats = ChurnStats::default();
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut lookup_successes = 0usize;

    if cfg.join_rate > 0.0 {
        queue.schedule(poisson_delay(cfg.join_rate, rng), Event::Join);
    }
    if cfg.crash_rate > 0.0 {
        queue.schedule(poisson_delay(cfg.crash_rate, rng), Event::Crash);
    }
    queue.schedule(cfg.maintenance_interval, Event::Maintain);
    queue.schedule(cfg.stabilize_interval, Event::Stabilize);
    queue.schedule(cfg.maintenance_interval / 2 + 1, Event::SampleLookup);

    queue.run_until(cfg.duration, |q, _t, ev| match ev {
        Event::Join => {
            net.join_peer(cfg.vs_per_join, rng);
            stats.joins += 1;
            q.schedule_in(poisson_delay(cfg.join_rate, rng), Event::Join);
        }
        Event::Crash => {
            let alive = net.alive_peers();
            if alive.len() > 2 {
                let victim = *alive.choose(rng).expect("non-empty");
                net.crash_peer(victim);
                stats.crashes += 1;
            }
            q.schedule_in(poisson_delay(cfg.crash_rate, rng), Event::Crash);
        }
        Event::Maintain => {
            stats.tree_mutations += tree.maintain_round(net);
            stats.maintenance_rounds += 1;
            q.schedule_in(cfg.maintenance_interval, Event::Maintain);
        }
        Event::Stabilize => {
            // Incremental, protocol-faithful repair: successor refresh plus
            // one finger per VS per round.
            routing.stabilize_round(net);
            q.schedule_in(cfg.stabilize_interval, Event::Stabilize);
        }
        Event::SampleLookup => {
            let vss: Vec<_> = net.ring().iter().map(|(_, v)| v).collect();
            if !vss.is_empty() {
                let from = *vss.choose(rng).expect("non-empty");
                let key = proxbal_id::Id::new(rng.gen());
                let out = routing.lookup(net, from, key);
                stats.lookups += 1;
                if out.result == net.ring().owner(key) {
                    lookup_successes += 1;
                }
            }
            q.schedule_in(cfg.maintenance_interval, Event::SampleLookup);
        }
    });

    stats.final_repair_rounds = tree.maintain_until_stable(net, 128);
    tree.check_invariants(net)
        .expect("tree must satisfy invariants after repair");
    routing.stabilize(net);
    stats.lookup_success_rate = if stats.lookups == 0 {
        1.0
    } else {
        lookup_successes as f64 / stats.lookups as f64
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ChordNetwork, KTree, RoutingState, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new();
        for _ in 0..32 {
            net.join_peer(3, &mut rng);
        }
        let tree = KTree::build(&net, 2);
        let routing = RoutingState::build(&net);
        (net, tree, routing, rng)
    }

    #[test]
    fn churn_run_repairs_tree() {
        let (mut net, mut tree, mut routing, mut rng) = setup(1);
        let cfg = ChurnConfig::default();
        let stats = run_churn(&mut net, &mut tree, &mut routing, &cfg, &mut rng);
        assert!(stats.joins > 10, "joins {}", stats.joins);
        assert!(stats.crashes > 10, "crashes {}", stats.crashes);
        assert!(stats.maintenance_rounds > 50);
        assert!(stats.tree_mutations > 0);
        net.check_invariants().unwrap();
        // Every surviving VS has a self-hosted report target again.
        for (_, vs) in net.ring().iter() {
            assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
        }
    }

    #[test]
    fn churn_lookups_mostly_succeed() {
        let (mut net, mut tree, mut routing, mut rng) = setup(2);
        let cfg = ChurnConfig {
            duration: 2_000,
            ..ChurnConfig::default()
        };
        let stats = run_churn(&mut net, &mut tree, &mut routing, &cfg, &mut rng);
        assert!(stats.lookups > 50);
        assert!(
            stats.lookup_success_rate > 0.85,
            "success rate {}",
            stats.lookup_success_rate
        );
    }

    #[test]
    fn quiescent_churn_changes_nothing() {
        let (mut net, mut tree, mut routing, mut rng) = setup(3);
        let cfg = ChurnConfig {
            join_rate: 0.0,
            crash_rate: 0.0,
            duration: 100,
            ..ChurnConfig::default()
        };
        let before = net.alive_peers().len();
        let stats = run_churn(&mut net, &mut tree, &mut routing, &cfg, &mut rng);
        assert_eq!(stats.joins + stats.crashes, 0);
        assert_eq!(stats.tree_mutations, 0);
        assert_eq!(stats.final_repair_rounds, 0);
        assert_eq!(net.alive_peers().len(), before);
        assert!((stats.lookup_success_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_delays_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(poisson_delay(0.5, &mut rng) >= 1);
        }
    }
}

/// Statistics of a combined churn + periodic-balancing run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChurnBalanceStats {
    /// The underlying churn statistics.
    pub churn: ChurnStats,
    /// Balancing passes executed.
    pub balance_passes: usize,
    /// Total load moved across all passes.
    pub total_moved: f64,
    /// Assignments skipped because a party crashed between VSA and VST
    /// (the soft-state tolerance of §3.5 in action).
    pub stale_assignments_skipped: usize,
    /// Heavy-node count right after the final balancing pass.
    pub final_heavy: usize,
}

/// Runs Poisson churn *and* periodic load balancing on the same network:
/// peers join with freshly sampled capacities/loads, crash victims take
/// their virtual servers down mid-protocol, and every `balance_interval`
/// the four-phase balancer runs over whatever the system looks like at
/// that instant. Exercises the paper's claim that the scheme "is resilient
/// to system failures … the VSA process can continue along the tree".
#[allow(clippy::too_many_arguments)]
pub fn run_churn_with_balancing<R: Rng>(
    net: &mut ChordNetwork,
    loads: &mut proxbal_core::LoadState,
    tree: &mut KTree,
    routing: &mut RoutingState,
    cfg: &ChurnConfig,
    balance_interval: SimTime,
    balancer_cfg: proxbal_core::BalancerConfig,
    capacity: &proxbal_workload::CapacityProfile,
    load_model: &proxbal_workload::LoadModel,
    rng: &mut R,
) -> ChurnBalanceStats {
    use proxbal_core::LoadBalancer;

    let mut stats = ChurnBalanceStats::default();
    let balancer = LoadBalancer::new(balancer_cfg);
    let mut queue: EventQueue<BalEvent> = EventQueue::new();

    #[derive(Debug)]
    enum BalEvent {
        Join,
        Crash,
        Maintain,
        Balance,
    }

    if cfg.join_rate > 0.0 {
        queue.schedule(poisson_delay(cfg.join_rate, rng), BalEvent::Join);
    }
    if cfg.crash_rate > 0.0 {
        queue.schedule(poisson_delay(cfg.crash_rate, rng), BalEvent::Crash);
    }
    queue.schedule(cfg.maintenance_interval, BalEvent::Maintain);
    queue.schedule(balance_interval, BalEvent::Balance);

    queue.run_until(cfg.duration, |q, _t, ev| match ev {
        BalEvent::Join => {
            let p = net.join_peer(cfg.vs_per_join, rng);
            // A joining node brings its own capacity; each of its virtual
            // servers takes over part of its successor's region, and the
            // proportional load share moves with the region.
            let class = capacity.sample_class(rng);
            loads.set_class(p, class);
            loads.set_capacity(p, capacity.capacity_of(class));
            let vss: Vec<_> = net.vss_of(p).to_vec();
            for vs in vss {
                proxbal_core::absorb_join(net, loads, vs);
                // Beyond the region share absorbed from the successor, a
                // joining peer brings its own workload into the system:
                // sample each VS's intrinsic load from the model, scaled
                // by the region it now owns (the same §5.1 rule the
                // initial population used).
                let f = net.region_of(vs).fraction();
                loads.add_vs_load(vs, load_model.sample_vs_load(f, rng));
            }
            stats.churn.joins += 1;
            q.schedule_in(poisson_delay(cfg.join_rate, rng), BalEvent::Join);
        }
        BalEvent::Crash => {
            let alive = net.alive_peers();
            if alive.len() > 4 {
                let victim = *alive.choose(rng).expect("non-empty");
                net.crash_peer(victim);
                stats.churn.crashes += 1;
            }
            q.schedule_in(poisson_delay(cfg.crash_rate, rng), BalEvent::Crash);
        }
        BalEvent::Maintain => {
            stats.churn.tree_mutations += tree.maintain_round(net);
            stats.churn.maintenance_rounds += 1;
            routing.stabilize(net);
            q.schedule_in(cfg.maintenance_interval, BalEvent::Maintain);
        }
        BalEvent::Balance => {
            let report = balancer
                .run(net, loads, None, rng)
                .expect("attached network");
            stats.balance_passes += 1;
            stats.total_moved += proxbal_core::total_moved_load(&report.transfers);
            stats.stale_assignments_skipped +=
                report.vsa.assignments.len() - report.transfers.len();
            stats.final_heavy = report.heavy_after();
            q.schedule_in(balance_interval, BalEvent::Balance);
        }
    });

    stats.churn.final_repair_rounds = tree.maintain_until_stable(net, 128);
    tree.check_invariants(net)
        .expect("tree must satisfy invariants after repair");
    net.check_invariants().expect("chord invariants hold");
    stats
}

/// Poisson membership churn as a pluggable [`EventSource`]: joins and
/// crashes whose inter-arrival times accumulate across epoch windows, so
/// the event stream is identical to one long continuous run regardless of
/// how the engine slices time. Joining peers follow the same recipe as
/// [`run_churn_with_balancing`]: fresh capacity class, region shares
/// absorbed from successors, and intrinsic load sampled from the model.
///
/// [`EventSource`]: crate::engine::EventSource
pub struct ChurnSource {
    cfg: ChurnConfig,
    capacity: proxbal_workload::CapacityProfile,
    load_model: proxbal_workload::LoadModel,
    /// Underlay stub nodes joining peers attach to (end hosts live in stub
    /// domains, like the initial population). Empty without a topology.
    attach_pool: Vec<u32>,
    rng: rand::rngs::StdRng,
    now: SimTime,
    next_join: SimTime,
    next_crash: SimTime,
}

impl ChurnSource {
    /// Builds the source; `rng` must be a private stream (e.g.
    /// `Prepared::derived_rng`) so churn never perturbs other randomness.
    /// `attach_pool` holds the underlay nodes joining peers may attach to —
    /// required whenever the scenario has a topology, or proximity queries
    /// for the newcomers would fail.
    pub fn new(
        cfg: ChurnConfig,
        capacity: proxbal_workload::CapacityProfile,
        load_model: proxbal_workload::LoadModel,
        attach_pool: Vec<u32>,
        mut rng: rand::rngs::StdRng,
    ) -> Self {
        let next_join = if cfg.join_rate > 0.0 {
            poisson_delay(cfg.join_rate, &mut rng)
        } else {
            SimTime::MAX
        };
        let next_crash = if cfg.crash_rate > 0.0 {
            poisson_delay(cfg.crash_rate, &mut rng)
        } else {
            SimTime::MAX
        };
        ChurnSource {
            cfg,
            capacity,
            load_model,
            attach_pool,
            rng,
            now: 0,
            next_join,
            next_crash,
        }
    }

    fn join(&mut self, world: &mut crate::engine::World<'_>) {
        let p = world.net.join_peer(self.cfg.vs_per_join, &mut self.rng);
        if let Some(&node) = self.attach_pool.choose(&mut self.rng) {
            world.net.attach(p, node);
        }
        let class = self.capacity.sample_class(&mut self.rng);
        world.loads.set_class(p, class);
        world
            .loads
            .set_capacity(p, self.capacity.capacity_of(class));
        let vss: Vec<_> = world.net.vss_of(p).to_vec();
        for vs in vss {
            // The successor sheds part of its region (and load) to the
            // newcomer — both peers changed, both re-report.
            if let Some((_, succ)) = world.net.ring().successor_after(world.net.vs(vs).position) {
                world.dirty.insert(world.net.vs(succ).host);
            }
            proxbal_core::absorb_join(world.net, world.loads, vs);
            let f = world.net.region_of(vs).fraction();
            world
                .loads
                .add_vs_load(vs, self.load_model.sample_vs_load(f, &mut self.rng));
        }
        world.dirty.insert(p);
    }

    fn crash(&mut self, world: &mut crate::engine::World<'_>) -> bool {
        let alive = world.net.alive_peers();
        if alive.len() <= 4 {
            return false;
        }
        let victim = *alive.choose(&mut self.rng).expect("non-empty");
        let positions: Vec<_> = world
            .net
            .vss_of(victim)
            .iter()
            .map(|&v| world.net.vs(v).position)
            .collect();
        world.net.crash_peer(victim);
        world.dirty.remove(&victim);
        // The successors that absorbed the dead regions notice the
        // departure and re-report.
        for pos in positions {
            if let Some((_, succ)) = world.net.ring().successor_after(pos) {
                world.dirty.insert(world.net.vs(succ).host);
            }
        }
        true
    }
}

impl crate::engine::EventSource for ChurnSource {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn on_epoch(
        &mut self,
        _epoch: usize,
        window: SimTime,
        world: &mut crate::engine::World<'_>,
    ) -> crate::engine::SourceActivity {
        let mut activity = crate::engine::SourceActivity::default();
        let end = self.now.saturating_add(window);
        // Drain both Poisson streams in time order (joins win ties), the
        // same interleaving the event queue of `run_churn` produces.
        while self.next_join.min(self.next_crash) <= end {
            if self.next_join <= self.next_crash {
                self.join(world);
                activity.joins += 1;
                self.next_join = self
                    .next_join
                    .saturating_add(poisson_delay(self.cfg.join_rate, &mut self.rng));
            } else {
                if self.crash(world) {
                    activity.crashes += 1;
                }
                self.next_crash = self
                    .next_crash
                    .saturating_add(poisson_delay(self.cfg.crash_rate, &mut self.rng));
            }
        }
        self.now = end;
        activity
    }
}

#[cfg(test)]
mod balance_tests {
    use super::*;
    use proxbal_core::{BalancerConfig, LoadState};
    use proxbal_workload::{CapacityProfile, LoadModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn balancing_under_churn_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(77);
        let mut net = ChordNetwork::new();
        for _ in 0..64 {
            net.join_peer(4, &mut rng);
        }
        let capacity = CapacityProfile::gnutella();
        let load_model = LoadModel::gaussian(1e6, 1e4);
        let mut loads = LoadState::generate(&net, &capacity, &load_model, &mut rng);
        let mut tree = KTree::build(&net, 2);
        let mut routing = RoutingState::build(&net);
        let cfg = ChurnConfig {
            join_rate: 0.05,
            crash_rate: 0.05,
            vs_per_join: 4,
            maintenance_interval: 10,
            stabilize_interval: 10,
            duration: 1000,
        };
        let stats = run_churn_with_balancing(
            &mut net,
            &mut loads,
            &mut tree,
            &mut routing,
            &cfg,
            100,
            BalancerConfig::default(),
            &capacity,
            &load_model,
            &mut rng,
        );
        assert_eq!(stats.balance_passes, 10);
        assert!(stats.total_moved > 0.0);
        assert!(stats.churn.joins > 10 && stats.churn.crashes > 10);
        // Every surviving peer still has a well-defined capacity; the load
        // books balance against ground truth.
        let totals = loads.totals(&net);
        assert!(totals.load.is_finite() && totals.capacity > 0.0);
        // The last pass balanced whatever was alive at that instant.
        assert!(
            stats.final_heavy <= net.alive_peers().len() / 10,
            "final heavy {}",
            stats.final_heavy
        );
    }

    #[test]
    fn crashes_between_vsa_and_vst_are_tolerated() {
        // With aggressive crash rates, some assignments must go stale and
        // be skipped rather than panicking or corrupting state.
        let mut rng = StdRng::seed_from_u64(78);
        let mut net = ChordNetwork::new();
        for _ in 0..48 {
            net.join_peer(4, &mut rng);
        }
        let capacity = CapacityProfile::gnutella();
        let load_model = LoadModel::gaussian(1e6, 1e4);
        let mut loads = LoadState::generate(&net, &capacity, &load_model, &mut rng);
        let mut tree = KTree::build(&net, 2);
        let mut routing = RoutingState::build(&net);
        let cfg = ChurnConfig {
            join_rate: 0.2,
            crash_rate: 0.2,
            vs_per_join: 4,
            maintenance_interval: 5,
            stabilize_interval: 5,
            duration: 600,
        };
        let stats = run_churn_with_balancing(
            &mut net,
            &mut loads,
            &mut tree,
            &mut routing,
            &cfg,
            50,
            BalancerConfig::default(),
            &capacity,
            &load_model,
            &mut rng,
        );
        assert!(stats.balance_passes >= 10);
        net.check_invariants().unwrap();
        // (Stale skips are timing-dependent; the run completing with intact
        // invariants is the guarantee under test.)
    }
}
