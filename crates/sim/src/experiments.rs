//! One driver per paper figure/claim. The `repro` binary and the Criterion
//! benches call these; integration tests run them at reduced scale.

use crate::metrics::DistanceHistogram;
use crate::scenario::{Prepared, Scenario};
use proxbal_core::{
    BalanceReport, BalancerConfig, ClassifyParams, LoadBalancer, NodeClass, ProximityMode,
};
use proxbal_ktree::KTree;
use proxbal_profile::{NullSink, ProgressSink};
use proxbal_trace::Trace;
use serde::{Deserialize, Serialize};

/// Figure 4: scatter of unit load (load / capacity) per node before and
/// after load balancing (Gaussian workload in the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Output {
    /// Unit load of every alive peer before balancing (scatter (a)).
    pub before: Vec<f64>,
    /// Unit load of every alive peer after balancing (scatter (b)).
    pub after: Vec<f64>,
    /// The balance run's report.
    pub report: BalanceReport,
}

/// Runs the Figure-4 experiment on a prepared scenario.
pub fn fig4_unit_load(prepared: &mut Prepared) -> Fig4Output {
    fig4_unit_load_traced(prepared, &mut Trace::disabled())
}

/// [`fig4_unit_load`] recording the balancer's phase spans and counters
/// into `trace`.
pub fn fig4_unit_load_traced(prepared: &mut Prepared, trace: &mut Trace) -> Fig4Output {
    let peers = prepared.net.alive_peers();
    let before: Vec<f64> = peers
        .iter()
        .map(|&p| prepared.loads.unit_load(&prepared.net, p))
        .collect();

    let balancer = LoadBalancer::new(prepared.scenario.balancer);
    // Field-wise borrow (not `prepared.underlay()`) so `net`/`loads` can be
    // borrowed mutably at the same time.
    let underlay = prepared
        .oracle
        .as_ref()
        .map(|oracle| proxbal_core::Underlay {
            oracle,
            latency_oracle: prepared.latency_oracle.as_ref(),
            landmarks: &prepared.landmarks,
            approx: prepared
                .hop_landmarks
                .as_ref()
                .map(|landmarks| proxbal_core::ApproxTransfer {
                    landmarks,
                    refine_sources: prepared.scenario.refine_sources,
                }),
        });
    let mut rng = prepared.derived_rng(4);
    let report = balancer
        .run_traced(
            &mut prepared.net,
            &mut prepared.loads,
            underlay,
            &mut rng,
            trace,
        )
        .expect("attached network");

    let after: Vec<f64> = peers
        .iter()
        .map(|&p| prepared.loads.unit_load(&prepared.net, p))
        .collect();
    Fig4Output {
        before,
        after,
        report,
    }
}

/// Figures 5 and 6: node loads grouped by capacity class, before and after
/// balancing (Gaussian for Fig. 5, Pareto for Fig. 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassLoadsOutput {
    /// The capacity value of each class.
    pub class_capacity: Vec<f64>,
    /// Node loads per class before balancing.
    pub before: Vec<Vec<f64>>,
    /// Node loads per class after balancing.
    pub after: Vec<Vec<f64>>,
    /// The balance run's report.
    pub report: BalanceReport,
}

/// Runs the Figure-5/6 experiment (the workload in `prepared` selects
/// which figure).
pub fn fig56_class_loads(prepared: &mut Prepared) -> ClassLoadsOutput {
    fig56_class_loads_traced(prepared, &mut Trace::disabled())
}

/// [`fig56_class_loads`] recording the balancer's phase spans and counters
/// into `trace`.
pub fn fig56_class_loads_traced(prepared: &mut Prepared, trace: &mut Trace) -> ClassLoadsOutput {
    let classes = prepared.scenario.capacity.class_count();
    let class_capacity: Vec<f64> = (0..classes)
        .map(|c| {
            prepared
                .scenario
                .capacity
                .capacity_of(proxbal_workload::CapacityClass(c))
        })
        .collect();

    let collect = |prepared: &Prepared| -> Vec<Vec<f64>> {
        let mut per_class = vec![Vec::new(); classes];
        for p in prepared.net.alive_peers() {
            let c = prepared.loads.class(p).expect("class recorded").0;
            per_class[c].push(prepared.loads.node_load(&prepared.net, p));
        }
        per_class
    };

    let before = collect(prepared);
    let balancer = LoadBalancer::new(prepared.scenario.balancer);
    let underlay = prepared
        .oracle
        .as_ref()
        .map(|oracle| proxbal_core::Underlay {
            oracle,
            latency_oracle: prepared.latency_oracle.as_ref(),
            landmarks: &prepared.landmarks,
            approx: prepared
                .hop_landmarks
                .as_ref()
                .map(|landmarks| proxbal_core::ApproxTransfer {
                    landmarks,
                    refine_sources: prepared.scenario.refine_sources,
                }),
        });
    let mut rng = prepared.derived_rng(56);
    let report = balancer
        .run_traced(
            &mut prepared.net,
            &mut prepared.loads,
            underlay,
            &mut rng,
            trace,
        )
        .expect("attached network");
    let after = collect(prepared);

    ClassLoadsOutput {
        class_capacity,
        before,
        after,
        report,
    }
}

/// Figures 7 and 8: moved-load-vs-distance comparison between the
/// proximity-aware and proximity-ignorant schemes on the same initial
/// state (the topology in the scenario selects ts5k-large vs ts5k-small).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MovedLoadOutput {
    /// Distance histogram of the proximity-aware run.
    pub aware: DistanceHistogram,
    /// Distance histogram of the proximity-ignorant run.
    pub ignorant: DistanceHistogram,
    /// Report of the aware run.
    pub aware_report: BalanceReport,
    /// Report of the ignorant run.
    pub ignorant_report: BalanceReport,
}

/// Runs both modes from identical initial conditions and returns the two
/// distance histograms.
pub fn fig78_moved_load(prepared: &Prepared) -> MovedLoadOutput {
    fig78_moved_load_traced(prepared, &mut Trace::disabled())
}

/// [`fig78_moved_load`] recording each mode's run on its own child track
/// (`aware` / `ignorant`) of `trace`.
pub fn fig78_moved_load_traced(prepared: &Prepared, trace: &mut Trace) -> MovedLoadOutput {
    let underlay = prepared.underlay().expect("figure 7/8 requires a topology");

    let run = |mode: ProximityMode, label: u64, name: &str, trace: &mut Trace| {
        let mut child = Trace::new(trace.is_enabled(), name);
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let cfg = BalancerConfig {
            mode,
            ..prepared.scenario.balancer
        };
        let balancer = LoadBalancer::new(cfg);
        let mut rng = prepared.derived_rng(label);
        let report = balancer
            .run_traced(&mut net, &mut loads, Some(underlay), &mut rng, &mut child)
            .expect("attached network");
        trace.absorb(child);
        let mut hist = DistanceHistogram::new();
        for t in &report.transfers {
            hist.add(t.distance.expect("underlay present"), t.assignment.load);
        }
        (hist, report)
    };

    let (aware, aware_report) = run(
        ProximityMode::Aware(proxbal_core::ProximityParams::default()),
        78,
        "aware",
        trace,
    );
    let (ignorant, ignorant_report) = run(ProximityMode::Ignorant, 79, "ignorant", trace);

    MovedLoadOutput {
        aware,
        ignorant,
        aware_report,
        ignorant_report,
    }
}

/// One row of the VSA-round-scaling experiment (the `O(log_K N)` claim).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RoundsRow {
    /// Number of peers.
    pub peers: usize,
    /// Virtual servers in the system.
    pub virtual_servers: usize,
    /// Tree degree.
    pub k: usize,
    /// LBI aggregation message rounds.
    pub lbi_rounds: u32,
    /// Dissemination message rounds.
    pub dissemination_rounds: u32,
    /// VSA sweep message rounds.
    pub vsa_rounds: u32,
    /// `log_K(virtual servers)` for reference.
    pub log_k_m: f64,
}

/// Measures protocol rounds across overlay sizes and tree degrees.
///
/// Every `(peers, k)` grid cell is an independent scenario whose seed and
/// RNG streams derive from the cell alone, so the sweep runs through the
/// parallel engine and the rows come back in grid order regardless of
/// `threads`.
pub fn rounds_scaling(sizes: &[usize], ks: &[usize], seed: u64, threads: usize) -> Vec<RoundsRow> {
    rounds_scaling_traced(sizes, ks, seed, threads, &mut Trace::disabled())
}

/// [`rounds_scaling`] recording each grid cell's balancer run on its own
/// child track (`n{peers}_k{k}`) of `trace`, absorbed in grid order.
pub fn rounds_scaling_traced(
    sizes: &[usize],
    ks: &[usize],
    seed: u64,
    threads: usize,
    trace: &mut Trace,
) -> Vec<RoundsRow> {
    let cells: Vec<(usize, usize)> = sizes
        .iter()
        .flat_map(|&peers| ks.iter().map(move |&k| (peers, k)))
        .collect();
    crate::parallel::map_items_traced(&cells, threads, trace, |_, &(peers, k), trace| {
        trace.relabel(&format!("n{peers}_k{k}"));
        let mut scenario = Scenario::builder()
            .small()
            .seed(seed ^ (peers as u64) ^ ((k as u64) << 32))
            .build();
        scenario.peers = peers;
        scenario.topology = crate::TopologyKind::None;
        scenario.balancer = BalancerConfig {
            k,
            ..BalancerConfig::default()
        };
        let mut prepared = scenario.prepare();
        let balancer = LoadBalancer::new(prepared.scenario.balancer);
        let mut rng = prepared.derived_rng(1000 + k as u64);
        let report = balancer
            .run_traced(
                &mut prepared.net,
                &mut prepared.loads,
                None,
                &mut rng,
                trace,
            )
            .expect("attached network");
        let m = prepared.net.alive_vs_count();
        RoundsRow {
            peers,
            virtual_servers: m,
            k,
            lbi_rounds: report.lbi_rounds,
            dissemination_rounds: report.dissemination_rounds,
            vsa_rounds: report.vsa.rounds,
            log_k_m: (m as f64).ln() / (k as f64).ln(),
        }
    })
}

/// One row of the tree self-repair experiment (§3.1.1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RepairRow {
    /// Peers before the crash wave.
    pub peers: usize,
    /// Fraction of peers crashed simultaneously.
    pub crash_fraction: f64,
    /// Maintenance rounds until the tree was stable after the crash wave.
    /// Crash repair is re-planting + pruning, which one periodic check per
    /// node completes — the expensive direction is growth.
    pub crash_repair_rounds: usize,
    /// Maintenance rounds until stability after the crashed capacity
    /// re-joined (tree growth proceeds one level per round — this is the
    /// `O(log_K N)` direction).
    pub join_repair_rounds: usize,
    /// Tree height after full repair (structural bound on growth rounds).
    pub height_after: u32,
}

/// Crashes a fraction of peers at once, repairs, re-joins the same number
/// of peers, and repairs again, measuring maintenance rounds for both waves.
pub fn repair_after_crash(peers: usize, crash_fraction: f64, k: usize, seed: u64) -> RepairRow {
    repair_after_crash_traced(peers, crash_fraction, k, seed, &mut Trace::disabled())
}

/// [`repair_after_crash`] recording both maintenance waves as `kt/maintain`
/// spans (crash repair first, regrowth second, laid end to end on the
/// round timeline) plus `crashed_peers` / `rejoined_peers` counters.
pub fn repair_after_crash_traced(
    peers: usize,
    crash_fraction: f64,
    k: usize,
    seed: u64,
    trace: &mut Trace,
) -> RepairRow {
    let mut scenario = Scenario::builder().small().seed(seed).build();
    scenario.peers = peers;
    scenario.topology = crate::TopologyKind::None;
    let mut prepared = scenario.prepare();
    let mut tree = KTree::build(&prepared.net, k);

    let victims: Vec<_> = prepared.net.alive_peers();
    let n_crash = ((victims.len() as f64) * crash_fraction) as usize;
    for p in victims.into_iter().take(n_crash) {
        prepared.net.crash_peer(p);
    }
    trace.count("crashed_peers", n_crash as u64);
    let crash_repair_rounds = tree.maintain_until_stable_traced(&prepared.net, 256, 0, trace);
    tree.check_invariants(&prepared.net).expect("repaired tree");

    let mut rng = prepared.derived_rng(0xCAFE);
    for _ in 0..n_crash {
        prepared
            .net
            .join_peer(prepared.scenario.vs_per_peer, &mut rng);
    }
    trace.count("rejoined_peers", n_crash as u64);
    let join_repair_rounds =
        tree.maintain_until_stable_traced(&prepared.net, 256, crash_repair_rounds as u64, trace);
    tree.check_invariants(&prepared.net).expect("regrown tree");

    RepairRow {
        peers,
        crash_fraction,
        crash_repair_rounds,
        join_repair_rounds,
        height_after: tree.height(),
    }
}

/// Result of comparing balance quality across schemes on one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchemeComparison {
    /// Gini of unit loads before balancing.
    pub gini_before: f64,
    /// Gini after our scheme.
    pub gini_tree: f64,
    /// Heavy nodes before / after our scheme.
    pub heavy_before: usize,
    /// Heavy nodes remaining after our scheme.
    pub heavy_after: usize,
    /// Thrash events of the CFS baseline on the same initial state.
    pub cfs_thrash_events: usize,
    /// Whether CFS converged.
    pub cfs_converged: bool,
}

/// Runs our scheme and the CFS baseline from identical initial conditions.
pub fn scheme_comparison(prepared: &Prepared) -> SchemeComparison {
    use crate::metrics::gini;
    let unit_loads = |net: &proxbal_chord::ChordNetwork, loads: &proxbal_core::LoadState| {
        net.alive_peers()
            .iter()
            .map(|&p| loads.unit_load(net, p))
            .collect::<Vec<_>>()
    };
    let gini_before = gini(&unit_loads(&prepared.net, &prepared.loads));

    // Our scheme.
    let mut net = prepared.net.clone();
    let mut loads = prepared.loads.clone();
    let balancer = LoadBalancer::new(prepared.scenario.balancer);
    let mut rng = prepared.derived_rng(91);
    let report = balancer
        .run(&mut net, &mut loads, None, &mut rng)
        .expect("attached network");
    let gini_tree = gini(&unit_loads(&net, &loads));

    // CFS baseline.
    let mut net2 = prepared.net.clone();
    let mut loads2 = prepared.loads.clone();
    let params = ClassifyParams {
        epsilon: prepared.scenario.balancer.epsilon,
    };
    let cfs = proxbal_core::baselines::cfs_shed(&mut net2, &mut loads2, &params, 20);

    SchemeComparison {
        gini_before,
        gini_tree,
        heavy_before: report.before.get(&NodeClass::Heavy).copied().unwrap_or(0),
        heavy_after: report.heavy_after(),
        cfs_thrash_events: cfs.thrash_events,
        cfs_converged: cfs.converged,
    }
}

/// Pooled result of running the Figure-7/8 experiment over several
/// independently generated topology graphs (the paper: "Both topologies
/// have 10 graphs each and we ran all these graphs in our simulation").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplicatedMovedLoad {
    /// Pooled aware histogram across all graphs.
    pub aware: DistanceHistogram,
    /// Pooled ignorant histogram across all graphs.
    pub ignorant: DistanceHistogram,
    /// Per-graph `(aware ≤2, aware ≤10, ignorant ≤10)` fractions, for
    /// variance inspection.
    pub per_graph: Vec<(f64, f64, f64)>,
    /// Heavy nodes remaining after any run (should stay 0).
    pub max_heavy_after: usize,
}

/// Runs [`fig78_moved_load`] on `graphs` independently seeded scenarios in
/// parallel and pools the histograms.
pub fn fig78_replicated(base: &Scenario, graphs: usize, threads: usize) -> ReplicatedMovedLoad {
    fig78_replicated_traced(base, graphs, threads, &mut Trace::disabled())
}

/// [`fig78_replicated`] recording each graph's aware/ignorant runs under a
/// `graph{i}` child track of `trace`, absorbed in graph-index order (so the
/// merged event stream is bit-identical at any thread count).
pub fn fig78_replicated_traced(
    base: &Scenario,
    graphs: usize,
    threads: usize,
    trace: &mut Trace,
) -> ReplicatedMovedLoad {
    // Each graph's seed derives from its index, so the sweep engine's
    // determinism contract holds and the pooled result is independent of
    // `threads`.
    let outputs: Vec<MovedLoadOutput> =
        crate::parallel::map_indexed_traced(graphs, threads, trace, |i, trace| {
            trace.relabel(&format!("graph{i}"));
            let mut scenario = base.clone();
            scenario.seed = base.seed.wrapping_add(i as u64);
            let prepared = scenario.prepare();
            fig78_moved_load_traced(&prepared, trace)
        });

    let mut pooled = ReplicatedMovedLoad {
        aware: DistanceHistogram::new(),
        ignorant: DistanceHistogram::new(),
        per_graph: Vec::with_capacity(graphs),
        max_heavy_after: 0,
    };
    for out in &outputs {
        pooled.aware.merge(&out.aware);
        pooled.ignorant.merge(&out.ignorant);
        pooled.per_graph.push((
            out.aware.fraction_within(2),
            out.aware.fraction_within(10),
            out.ignorant.fraction_within(10),
        ));
        pooled.max_heavy_after = pooled
            .max_heavy_after
            .max(out.aware_report.heavy_after())
            .max(out.ignorant_report.heavy_after());
    }
    pooled
}

/// One configuration of the design-choice ablation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable variant label.
    pub label: String,
    /// Heavy nodes remaining.
    pub heavy_after: usize,
    /// Total load moved.
    pub moved_load: f64,
    /// Fraction of moved load within 2 hops.
    pub frac2: f64,
    /// Fraction of moved load within 10 hops.
    pub frac10: f64,
    /// Load-weighted mean transfer distance.
    pub mean_distance: f64,
}

/// Sweeps the design choices DESIGN.md calls out — ε, rendezvous threshold,
/// Hilbert-vs-Morton curve, key dimensionality and tree degree — and
/// reports the *outcomes* (Criterion's `ablations` bench reports the
/// costs).
///
/// Each variant clones the prepared initial state and derives its RNG from
/// the scenario seed alone, so the variants run through the parallel
/// engine and the rows come back in declaration order regardless of
/// `threads`.
pub fn ablation_sweep(prepared: &Prepared, threads: usize) -> Vec<AblationRow> {
    ablation_sweep_traced(prepared, threads, &mut Trace::disabled())
}

/// [`ablation_sweep`] recording each variant's balancer run on its own
/// child track (the variant label), absorbed in declaration order.
pub fn ablation_sweep_traced(
    prepared: &Prepared,
    threads: usize,
    trace: &mut Trace,
) -> Vec<AblationRow> {
    use proxbal_core::{ProximityParams, Underlay};
    use proxbal_hilbert::CurveKind;

    let oracle = prepared.oracle.as_ref().expect("ablation needs a topology");
    let underlay = Underlay {
        oracle,
        latency_oracle: prepared.latency_oracle.as_ref(),
        landmarks: &prepared.landmarks,
        approx: None,
    };

    let base = BalancerConfig {
        mode: ProximityMode::Aware(ProximityParams::default()),
        ..prepared.scenario.balancer
    };
    let aware = |prox: ProximityParams| BalancerConfig {
        mode: ProximityMode::Aware(prox),
        ..base
    };

    let mut variants: Vec<(String, BalancerConfig)> =
        vec![("default (aware, eps=0.05, thr=30, K=2)".into(), base)];
    for eps in [0.0, 0.2, 0.5] {
        variants.push((
            format!("epsilon={eps}"),
            BalancerConfig {
                epsilon: eps,
                ..base
            },
        ));
    }
    for thr in [2usize, 100] {
        variants.push((
            format!("threshold={thr}"),
            BalancerConfig {
                rendezvous_threshold: thr,
                ..base
            },
        ));
    }
    for k in [4usize, 8] {
        variants.push((format!("K={k}"), BalancerConfig { k, ..base }));
    }
    variants.push((
        "curve=Morton".into(),
        aware(ProximityParams {
            curve: CurveKind::Morton,
            ..ProximityParams::default()
        }),
    ));
    for kd in [1usize, 5, 15] {
        variants.push((
            format!("key_dims={kd}"),
            aware(ProximityParams {
                key_dims: Some(kd),
                ..ProximityParams::default()
            }),
        ));
    }
    variants.push((
        "no per-dim scaling".into(),
        aware(ProximityParams {
            per_dim_scaling: false,
            ..ProximityParams::default()
        }),
    ));
    variants.push((
        "proximity-ignorant".into(),
        BalancerConfig {
            mode: ProximityMode::Ignorant,
            ..base
        },
    ));

    crate::parallel::map_items_traced(&variants, threads, trace, |_, (label, cfg), trace| {
        trace.relabel(label);
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let mut rng = prepared.derived_rng(0xAB1A);
        let report = LoadBalancer::new(*cfg)
            .run_traced(&mut net, &mut loads, Some(underlay), &mut rng, trace)
            .expect("attached network");
        let mut hist = DistanceHistogram::new();
        for t in &report.transfers {
            hist.add(t.distance.expect("underlay present"), t.assignment.load);
        }
        AblationRow {
            label: label.clone(),
            heavy_after: report.heavy_after(),
            moved_load: proxbal_core::total_moved_load(&report.transfers),
            frac2: hist.fraction_within(2),
            frac10: hist.fraction_within(10),
            mean_distance: hist.mean_distance(),
        }
    })
}

/// One row of the protocol-latency experiment: simulated wall-clock time
/// (latency units; interdomain hop = 3, intradomain = 1) for the LBI
/// aggregation and dissemination phases, message by message.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Number of peers.
    pub peers: usize,
    /// Tree degree.
    pub k: usize,
    /// Message-loss probability.
    pub loss: f64,
    /// Aggregation completion time.
    pub aggregation: u64,
    /// Dissemination completion time.
    pub dissemination: u64,
    /// Total messages (both phases, including retransmissions).
    pub messages: usize,
}

/// Simulates the tree phases at the message level across sizes/degrees and
/// loss rates (the wall-clock behind "fast load balancing").
pub fn protocol_latency(
    sizes: &[usize],
    ks: &[usize],
    losses: &[f64],
    seed: u64,
    threads: usize,
) -> Vec<LatencyRow> {
    protocol_latency_traced(sizes, ks, losses, seed, threads, &mut Trace::disabled())
}

/// [`protocol_latency`] recording each `(peers, k)` cell on its own child
/// track (`n{peers}_k{k}`): one `des/aggregation` + `des/dissemination`
/// span pair per loss rate, laid end to end on the cell's simulated
/// timeline, plus the DES counters/histograms of the message-level sims.
pub fn protocol_latency_traced(
    sizes: &[usize],
    ks: &[usize],
    losses: &[f64],
    seed: u64,
    threads: usize,
    trace: &mut Trace,
) -> Vec<LatencyRow> {
    use crate::protocol::{
        simulate_aggregation_traced_in, simulate_dissemination_traced_in, LossModel,
        ProtocolScratch,
    };
    let mut rows = Vec::new();
    for &peers in sizes {
        let mut scenario = Scenario::builder().seed(seed ^ peers as u64).build();
        scenario.peers = peers;
        scenario.topology = crate::TopologyKind::Ts5kLarge;
        let prepared = scenario.prepare();
        let oracle = prepared.oracle.as_ref().expect("topology present");
        // Each k builds its own tree and derives a fresh per-k RNG, so the
        // k-cells run through the parallel engine; the loss loop stays
        // sequential inside each cell to reuse the tree — and one scratch
        // per cell, so the 100k+-message lossy runs allocate nothing per
        // event and ask the oracle for each tree edge only once.
        let per_k = crate::parallel::map_items_traced(ks, threads, trace, |_, &k, trace| {
            trace.relabel(&format!("n{peers}_k{k}"));
            let tree = KTree::build(&prepared.net, k);
            let mut contributors: Vec<_> = prepared
                .net
                .ring()
                .iter()
                .map(|(_, vs)| tree.report_target(&prepared.net, vs))
                .collect();
            contributors.sort_unstable();
            contributors.dedup();
            let mut scratch = ProtocolScratch::new();
            let mut cell = Vec::with_capacity(losses.len());
            // Simulated clock of this cell's track: the per-loss phase
            // pairs are laid end to end so the spans never overlap.
            let mut clock: u64 = 0;
            for &loss in losses {
                let model = if loss == 0.0 {
                    LossModel::reliable()
                } else {
                    LossModel {
                        loss_probability: loss,
                        retransmit_after: 30,
                    }
                };
                let mut rng = prepared.derived_rng(0x1A7 ^ (k as u64) << 8);
                let agg = simulate_aggregation_traced_in(
                    &prepared.net,
                    &tree,
                    oracle,
                    &contributors,
                    &model,
                    &mut rng,
                    &mut scratch,
                    trace,
                )
                .expect("scenario peers are attached");
                trace.span_args(
                    "des/aggregation",
                    clock,
                    agg.completion,
                    &[
                        ("loss", loss.into()),
                        ("messages", (agg.messages as u64).into()),
                    ],
                );
                clock += agg.completion;
                let dis = simulate_dissemination_traced_in(
                    &prepared.net,
                    &tree,
                    oracle,
                    &model,
                    &mut rng,
                    &mut scratch,
                    trace,
                )
                .expect("scenario peers are attached");
                trace.span_args(
                    "des/dissemination",
                    clock,
                    dis.completion,
                    &[
                        ("loss", loss.into()),
                        ("messages", (dis.messages as u64).into()),
                    ],
                );
                clock += dis.completion;
                cell.push(LatencyRow {
                    peers,
                    k,
                    loss,
                    aggregation: agg.completion,
                    dissemination: dis.completion,
                    messages: agg.messages + dis.messages,
                });
            }
            cell
        });
        rows.extend(per_k.into_iter().flatten());
    }
    rows
}

/// Compact per-run summary of one xl-scale balancing pass. The full
/// [`BalanceReport`] carries every transfer record — tens of thousands of
/// entries at 65k peers — so the xl harness keeps the figure-shaped
/// aggregates and drops the raw records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XlRunSummary {
    /// `"aware"` or `"ignorant"`.
    pub label: String,
    /// Heavy peers before the run.
    pub heavy_before: usize,
    /// Heavy peers after the run.
    pub heavy_after: usize,
    /// Executed transfers.
    pub transfers: usize,
    /// Total load moved.
    pub moved_load: f64,
    /// Fraction of moved load within 2 hops.
    pub frac2: f64,
    /// Fraction of moved load within 10 hops.
    pub frac10: f64,
    /// Load-weighted mean transfer distance.
    pub mean_distance: f64,
    /// LBI aggregation message rounds.
    pub lbi_rounds: u32,
    /// VSA sweep message rounds.
    pub vsa_rounds: u32,
    /// Upward LBI messages.
    pub lbi_messages: usize,
    /// VSA record·hop units.
    pub vsa_record_hops: usize,
    /// Wall-clock seconds for this run (clone + four phases).
    pub wall_s: f64,
    /// Wall-clock seconds of phase 1a: LBI generation + report rebinding.
    pub lbi_wall_s: f64,
    /// Wall-clock seconds of phase 1b: tree aggregation of the LBIs.
    pub aggregate_wall_s: f64,
    /// Wall-clock seconds of phases 2–3: dissemination, classification and
    /// the VSA sweep (including shed/light extraction).
    pub vsa_wall_s: f64,
    /// Wall-clock seconds of phase 4: transfer execution, including
    /// distance accounting/refinement.
    pub transfer_wall_s: f64,
    /// Moved-load-vs-distance histogram (the Figure-7 curve).
    pub histogram: DistanceHistogram,
}

/// Result of the xl-scale end-to-end pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct XlScaleOutput {
    /// Peers in the overlay.
    pub peers: usize,
    /// Nodes in the ts50k underlay graph.
    pub underlay_nodes: usize,
    /// Virtual servers on the ring.
    pub virtual_servers: usize,
    /// Oracle row-cache bound used (rows).
    pub oracle_capacity: usize,
    /// Wall-clock seconds to generate the topology, overlay and oracles.
    pub prepare_wall_s: f64,
    /// Proximity-aware four-phase run.
    pub aware: XlRunSummary,
    /// Proximity-ignorant four-phase run.
    pub ignorant: XlRunSummary,
}

/// The xl-scale pass: prepares the xl preset (65,536 peers over a ~50k
/// underlay) with a bounded oracle cache, then runs the full four-phase
/// balancer twice from identical initial state — proximity-aware and
/// proximity-ignorant, the Figure-7 comparison shape. Deterministic for a
/// given seed; the cache bound changes memory behaviour only.
pub fn xl_scale(seed: u64) -> XlScaleOutput {
    xl_scale_traced(
        seed,
        crate::parallel::default_threads(),
        &mut Trace::disabled(),
    )
}

/// [`xl_scale`] recording each mode's four-phase run on its own child
/// track (`aware` / `ignorant`) of `trace`, with `threads` worker threads
/// inside each balancing round (purely a performance knob — the output is
/// byte-identical at any count).
pub fn xl_scale_traced(seed: u64, threads: usize, trace: &mut Trace) -> XlScaleOutput {
    xl_scale_run(seed, threads, trace, &NullSink)
}

/// [`xl_scale_traced`] with heartbeat lines on `progress` after the
/// preparation and after each mode's run. Heartbeats go to the sink
/// (stderr for the CLI), never to stdout, so enabling them cannot perturb
/// the deterministic report output.
pub fn xl_scale_run(
    seed: u64,
    threads: usize,
    trace: &mut Trace,
    progress: &dyn ProgressSink,
) -> XlScaleOutput {
    let scenario = Scenario::builder().xl().seed(seed).build();
    let t0 = std::time::Instant::now();
    let prepared = scenario.prepare_run(threads, progress);
    let prepare_wall_s = t0.elapsed().as_secs_f64();
    progress.always(&format!(
        "xl: prepared {} peers in {prepare_wall_s:.1}s",
        prepared.net.alive_peers().len()
    ));
    let underlay = prepared.underlay().expect("xl runs over a topology");

    let run = |mode: ProximityMode, label: u64, name: &str, trace: &mut Trace| -> XlRunSummary {
        let t = std::time::Instant::now();
        let mut child = Trace::new(trace.is_enabled(), name);
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let cfg = BalancerConfig {
            mode,
            ..prepared.scenario.balancer
        };
        let mut rng = prepared.derived_rng(label);
        let mut tree = KTree::build(&net, cfg.k);
        let mut walls = proxbal_core::RoundWalls::default();
        let report = LoadBalancer::new(cfg)
            .with_threads(threads)
            .run_with_tree_walls(
                &mut net,
                &mut loads,
                &mut tree,
                Some(underlay),
                &mut rng,
                &mut child,
                &mut walls,
            )
            .expect("attached network");
        trace.absorb(child);
        let mut histogram = DistanceHistogram::new();
        for tr in &report.transfers {
            histogram.add(tr.distance.expect("underlay present"), tr.assignment.load);
        }
        XlRunSummary {
            label: name.to_string(),
            heavy_before: report.before.get(&NodeClass::Heavy).copied().unwrap_or(0),
            heavy_after: report.heavy_after(),
            transfers: report.transfers.len(),
            moved_load: proxbal_core::total_moved_load(&report.transfers),
            frac2: histogram.fraction_within(2),
            frac10: histogram.fraction_within(10),
            mean_distance: histogram.mean_distance(),
            lbi_rounds: report.lbi_rounds,
            vsa_rounds: report.vsa.rounds,
            lbi_messages: report.messages.lbi_messages,
            vsa_record_hops: report.messages.vsa_record_hops,
            wall_s: t.elapsed().as_secs_f64(),
            lbi_wall_s: walls.lbi_wall_s,
            aggregate_wall_s: walls.aggregate_wall_s,
            vsa_wall_s: walls.vsa_wall_s,
            transfer_wall_s: walls.transfer_wall_s,
            histogram,
        }
    };

    // Same labels as the full-scale Figure-7 runs (78 = aware, 79 =
    // ignorant) so the xl RNG streams mirror the fig78 shape.
    let aware = run(
        ProximityMode::Aware(proxbal_core::ProximityParams::default()),
        78,
        "aware",
        trace,
    );
    progress.always(&format!(
        "xl: aware run done in {:.1}s (heavy {} -> {})",
        aware.wall_s, aware.heavy_before, aware.heavy_after
    ));
    let ignorant = run(ProximityMode::Ignorant, 79, "ignorant", trace);
    progress.always(&format!(
        "xl: ignorant run done in {:.1}s (heavy {} -> {})",
        ignorant.wall_s, ignorant.heavy_before, ignorant.heavy_after
    ));

    XlScaleOutput {
        peers: prepared.net.alive_peers().len(),
        underlay_nodes: prepared
            .topo
            .as_ref()
            .map(|t| t.graph.node_count())
            .unwrap_or(0),
        virtual_servers: prepared.net.ring().len(),
        oracle_capacity: crate::XL_ORACLE_CAPACITY,
        prepare_wall_s,
        aware,
        ignorant,
    }
}

/// KT-tree split depth for the sharded xl2 build: the top 8 levels (≤ 256
/// frontier regions at K = 2) grow serially, everything below in parallel
/// fragments.
pub const XL2_SPLIT_DEPTH: u32 = 8;

/// Result of the xl2 (million-peer) pass.
///
/// Unlike [`XlScaleOutput`] this carries a single (proximity-aware) run:
/// at 1M peers × 5 virtual servers, cloning the overlay and load state for
/// a second from-identical-state run would double the peak footprint, and
/// the aware run is the one the approximate distance scheme exists for.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Xl2ScaleOutput {
    /// Peers in the overlay.
    pub peers: usize,
    /// Nodes in the ts50k underlay graph.
    pub underlay_nodes: usize,
    /// Virtual servers on the ring.
    pub virtual_servers: usize,
    /// Oracle row-cache bound used (rows).
    pub oracle_capacity: usize,
    /// Preparation shards.
    pub shards: usize,
    /// Exact-refinement budget (Dijkstra source rows per pass).
    pub refine_sources: usize,
    /// Wall-clock seconds for sharded preparation (topology, overlay,
    /// oracles, landmark vectors).
    pub prepare_wall_s: f64,
    /// Wall-clock seconds for the sharded KT-tree build.
    pub tree_wall_s: f64,
    /// Proximity-aware four-phase run with landmark-approximate transfer
    /// distances.
    pub aware: XlRunSummary,
}

/// The xl2 pass: the [`ScenarioBuilder::xl2`](crate::ScenarioBuilder::xl2)
/// preset (1,048,576 peers, sharded preparation, landmark-approximate
/// transfer distances) through one proximity-aware four-phase run, executed
/// **in place** — no overlay/load clone — so the peak footprint stays within
/// the xl budget.
pub fn xl2_scale(seed: u64) -> Xl2ScaleOutput {
    xl2_scale_traced(seed, &mut Trace::disabled())
}

/// [`xl2_scale`] recording the run on an `aware` child track of `trace`.
pub fn xl2_scale_traced(seed: u64, trace: &mut Trace) -> Xl2ScaleOutput {
    xl2_scale_with(
        Scenario::builder().xl2().seed(seed).build(),
        crate::parallel::default_threads(),
        trace,
    )
}

/// The xl2 shape over an explicit scenario and worker-thread count — the
/// entry point the reduced-scale smoke and determinism runs share with the
/// full-scale pass. Everything except the `*_wall_s` fields is a pure
/// function of `scenario`: sharded preparation, the sharded tree build and
/// the intra-round parallel sections of the balancing pass all chunk
/// deterministically and merge in index order, so the result is
/// independent of `threads`.
pub fn xl2_scale_with(scenario: Scenario, threads: usize, trace: &mut Trace) -> Xl2ScaleOutput {
    xl2_scale_run(scenario, threads, trace, &NullSink)
}

/// [`xl2_scale_with`] with heartbeat lines on `progress` after sharded
/// preparation, after the sharded tree build, and after the balancing run.
/// Heartbeats go to the sink (stderr for the CLI), never to stdout, so the
/// deterministic report output is unaffected.
pub fn xl2_scale_run(
    scenario: Scenario,
    threads: usize,
    trace: &mut Trace,
    progress: &dyn ProgressSink,
) -> Xl2ScaleOutput {
    let t0 = std::time::Instant::now();
    let mut prepared = scenario.prepare_run(threads, progress);
    let prepare_wall_s = t0.elapsed().as_secs_f64();
    progress.always(&format!(
        "xl2: prepared {} peers ({} virtual servers) in {prepare_wall_s:.1}s",
        prepared.net.alive_peers().len(),
        prepared.net.ring().len()
    ));

    let t1 = std::time::Instant::now();
    let mut tree = crate::shard::build_tree_sharded(
        &prepared.net,
        prepared.scenario.balancer.k,
        XL2_SPLIT_DEPTH,
        threads,
    );
    let tree_wall_s = t1.elapsed().as_secs_f64();
    progress.always(&format!(
        "xl2: KT tree built ({} nodes) in {tree_wall_s:.1}s",
        tree.len()
    ));

    // Field-level borrows: the underlay reads oracle/landmark state while
    // the balancer mutates the (disjoint) overlay and load state in place.
    let underlay = proxbal_core::Underlay {
        oracle: prepared.oracle.as_ref().expect("xl2 runs over a topology"),
        latency_oracle: prepared.latency_oracle.as_ref(),
        landmarks: &prepared.landmarks,
        approx: prepared
            .hop_landmarks
            .as_ref()
            .map(|landmarks| proxbal_core::ApproxTransfer {
                landmarks,
                refine_sources: prepared.scenario.refine_sources,
            }),
    };

    let t = std::time::Instant::now();
    let mut child = Trace::new(trace.is_enabled(), "aware");
    let cfg = BalancerConfig {
        mode: ProximityMode::Aware(proxbal_core::ProximityParams::default()),
        ..prepared.scenario.balancer
    };
    // Label 78 = aware, matching the xl / Figure-7 RNG stream naming.
    let mut rng = prepared.derived_rng(78);
    let mut walls = proxbal_core::RoundWalls::default();
    let report = LoadBalancer::new(cfg)
        .with_threads(threads)
        .run_with_tree_walls(
            &mut prepared.net,
            &mut prepared.loads,
            &mut tree,
            Some(underlay),
            &mut rng,
            &mut child,
            &mut walls,
        )
        .expect("attached network");
    trace.absorb(child);

    let mut histogram = DistanceHistogram::new();
    for tr in &report.transfers {
        histogram.add(tr.distance.expect("underlay present"), tr.assignment.load);
    }
    let aware = XlRunSummary {
        label: "aware".to_string(),
        heavy_before: report.before.get(&NodeClass::Heavy).copied().unwrap_or(0),
        heavy_after: report.heavy_after(),
        transfers: report.transfers.len(),
        moved_load: proxbal_core::total_moved_load(&report.transfers),
        frac2: histogram.fraction_within(2),
        frac10: histogram.fraction_within(10),
        mean_distance: histogram.mean_distance(),
        lbi_rounds: report.lbi_rounds,
        vsa_rounds: report.vsa.rounds,
        lbi_messages: report.messages.lbi_messages,
        vsa_record_hops: report.messages.vsa_record_hops,
        wall_s: t.elapsed().as_secs_f64(),
        lbi_wall_s: walls.lbi_wall_s,
        aggregate_wall_s: walls.aggregate_wall_s,
        vsa_wall_s: walls.vsa_wall_s,
        transfer_wall_s: walls.transfer_wall_s,
        histogram,
    };
    progress.always(&format!(
        "xl2: aware run done in {:.1}s (heavy {} -> {}, {} transfers)",
        aware.wall_s, aware.heavy_before, aware.heavy_after, aware.transfers
    ));

    Xl2ScaleOutput {
        peers: prepared.net.alive_peers().len(),
        underlay_nodes: prepared
            .topo
            .as_ref()
            .map(|t| t.graph.node_count())
            .unwrap_or(0),
        virtual_servers: prepared.net.ring().len(),
        oracle_capacity: prepared.scenario.oracle_capacity,
        shards: prepared.scenario.shards,
        refine_sources: prepared.scenario.refine_sources,
        prepare_wall_s,
        tree_wall_s,
        aware,
    }
}

/// One cell of the fault-injection sweep ([`fault_sweep`]): the four-phase
/// protocol driven through a seeded [`crate::faults::FaultPlan`] at one
/// loss rate, with message drops/delays, a mid-round crash wave, stale KT
/// links, tree repair, and VST requeue all exercised.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// Message-loss probability of the plan (delays and crashes scale with
    /// it — see [`crate::faults::FaultConfig::with_loss`]).
    pub loss_rate: f64,
    /// Peers crash-stopped during the aggregation phase.
    pub crashed_peers: usize,
    /// KT links rewired to a stale parent before the run.
    pub stale_links: usize,
    /// Fraction of contributors whose LBI reached the root.
    pub aggregation_completion: f64,
    /// Fraction of (repaired-)tree nodes the dissemination reached.
    pub dissemination_completion: f64,
    /// Orphaned subtrees the repair re-attached.
    pub repair_reattached: usize,
    /// Orphaned KT nodes the repair had to discard.
    pub repair_pruned: usize,
    /// Maintenance rounds until the repaired tree stabilized — the
    /// convergence-rounds metric.
    pub convergence_rounds: usize,
    /// Protocol messages across both faulty phases (retransmissions
    /// included).
    pub messages: usize,
    /// Retransmission attempts.
    pub retries: usize,
    /// Edges abandoned after the retry budget.
    pub gave_up: usize,
    /// Heavy peers before VSA (post-crash classification).
    pub heavy_before: usize,
    /// Heavy peers after the transfers.
    pub heavy_after: usize,
    /// Residual imbalance: heavy peers after, as a fraction of alive peers.
    pub residual_heavy_fraction: f64,
    /// Transfers executed (first pass plus re-pairings).
    pub transfers: usize,
    /// Assignments requeued because their receiver died post-VSA.
    pub requeued: usize,
    /// Requeued assignments that found a surviving light slot.
    pub reassigned: usize,
    /// Requeued assignments left for the next balancing round.
    pub abandoned: usize,
}

/// Sweeps the four-phase protocol across fault rates: for each rate, a
/// seeded fault plan injects stale KT links, drops/delays messages, and
/// crash-stops peers mid-aggregation; the tree then repairs itself, the
/// classification/VSA phases run over the surviving membership, a second
/// crash wave hits the assignment receivers, and VST requeues the stranded
/// transfers at the root rendezvous. Each rate is an independent cell over
/// a clone of the same prepared scenario, so the sweep is bit-identical at
/// any thread count, and the whole row set is a pure function of
/// `(scenario.seed, rates)`.
pub fn fault_sweep(scenario: &Scenario, rates: &[f64], threads: usize) -> Vec<FaultSweepRow> {
    fault_sweep_traced(scenario, rates, threads, &mut Trace::disabled())
}

/// [`fault_sweep`] recording each rate's cell on its own child track
/// (`loss{rate}`): `des/aggregation` → `kt/repair` → `des/dissemination` →
/// `phase/vsa` spans laid end to end on the cell's simulated timeline, the
/// DES retry/backoff counters and histograms of the faulty sims, the
/// VSA/VST counters of the surviving-membership pass, and a closing
/// `rate_summary` instant carrying the row's headline numbers.
pub fn fault_sweep_traced(
    scenario: &Scenario,
    rates: &[f64],
    threads: usize,
    trace: &mut Trace,
) -> Vec<FaultSweepRow> {
    fault_sweep_run(scenario, rates, threads, trace, &NullSink)
}

/// [`fault_sweep_traced`] with a heartbeat line on `progress` as each
/// rate cell completes. Cells run on worker threads, so the sink's `Sync`
/// bound is what makes the shared reference sound; heartbeats go to the
/// sink (stderr for the CLI), never to stdout.
pub fn fault_sweep_run(
    scenario: &Scenario,
    rates: &[f64],
    threads: usize,
    trace: &mut Trace,
    progress: &dyn ProgressSink,
) -> Vec<FaultSweepRow> {
    use crate::des::RetryPolicy;
    use crate::faults::{simulate_aggregation_faulty_traced, simulate_dissemination_faulty_traced};
    use crate::faults::{FaultConfig, FaultPlan};
    use crate::protocol::ProtocolScratch;
    use proxbal_core::reports::{ignorant_inputs, light_slots, shed_candidates};
    use proxbal_core::{
        execute_transfers_with_requeue_traced, run_vsa_traced, Classification, VsaParams,
    };
    use rand::SeedableRng;

    let prepared = scenario.prepare();
    let oracle = prepared
        .oracle
        .as_ref()
        .expect("fault sweep needs a topology");

    crate::parallel::map_items_traced(rates, threads, trace, |_, &rate, trace| {
        trace.relabel(&format!("loss{rate:.2}"));
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let k = scenario.balancer.k;
        let mut tree = KTree::build(&net, k);
        let cfg = FaultConfig::with_loss(rate, scenario.seed ^ rate.to_bits());
        let mut plan = FaultPlan::new(cfg);

        // Stale-parent injection: rewire deep links to dangle at the root.
        let stale = plan.pick_stale_links(&tree);
        for &child in &stale {
            tree.inject_stale_parent(child, tree.root());
        }
        trace.count("kt_stale_links", stale.len() as u64);

        // Crash schedule for the aggregation window (the KT root's host
        // survives — in a real deployment a dead root is re-elected by the
        // deterministic root location rule before any phase starts).
        let root_host = net.vs(tree.node(tree.root()).host).host;
        let crashes = plan.crash_schedule(&net, root_host, 300);
        trace.count("crashed_peers", crashes.len() as u64);

        // Phase 1 under faults, over the pre-crash membership snapshot.
        let mut contributors: Vec<_> = net
            .ring()
            .iter()
            .map(|(_, vs)| tree.report_target(&net, vs))
            .collect();
        contributors.sort_unstable();
        contributors.dedup();
        let mut scratch = ProtocolScratch::new();
        let agg = simulate_aggregation_faulty_traced(
            &net,
            &tree,
            oracle,
            &contributors,
            &mut plan,
            RetryPolicy::protocol_default(),
            &crashes,
            &mut scratch,
            trace,
        )
        .expect("scenario peers are attached");
        let mut clock = agg.timing.completion;
        trace.span_args(
            "des/aggregation",
            0,
            agg.timing.completion,
            &[
                ("delivered", (agg.delivered as u64).into()),
                ("expected", (agg.expected as u64).into()),
                ("retries", (agg.retries as u64).into()),
            ],
        );

        // The crash wave lands: dead peers leave the ring, the tree repairs
        // (orphan re-attach + soft-state maintenance).
        for &(_, p) in &crashes {
            net.crash_peer(p);
        }
        let repair = tree.repair_traced(&net, 256, clock, trace);
        clock += repair.rounds as u64;

        // Phase 2 under message faults over the repaired tree (the crashed
        // peers are gone from it, so no crash schedule here).
        let mut scratch2 = ProtocolScratch::new();
        let dis = simulate_dissemination_faulty_traced(
            &net,
            &tree,
            oracle,
            &mut plan,
            RetryPolicy::protocol_default(),
            &[],
            &mut scratch2,
            trace,
        )
        .expect("scenario peers are attached");
        trace.span_args(
            "des/dissemination",
            clock,
            dis.timing.completion,
            &[
                ("delivered", (dis.delivered as u64).into()),
                ("expected", (dis.expected as u64).into()),
                ("retries", (dis.retries as u64).into()),
            ],
        );
        clock += dis.timing.completion;

        // Phases 2b-3: classify the survivors and run the VSA sweep.
        let params = proxbal_core::ClassifyParams {
            epsilon: scenario.balancer.epsilon,
        };
        let system = loads.totals(&net);
        let classification = Classification::compute(&net, &loads, &params, system);
        let heavy_before = classification.count_of(NodeClass::Heavy);
        let shed = shed_candidates(&net, &loads, &params, &classification);
        let light = light_slots(&net, &loads, &params, &classification);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xD15);
        let inputs = ignorant_inputs(&net, &tree, &shed, &light, &mut rng);
        let vsa_params = VsaParams {
            rendezvous_threshold: scenario.balancer.rendezvous_threshold,
            l_min: system.min_vs_load,
        };
        let mut vsa = run_vsa_traced(&tree, inputs, &vsa_params, trace);
        trace.span_args(
            "phase/vsa",
            clock,
            vsa.rounds as u64,
            &[("pairings", (vsa.assignments.len() as u64).into())],
        );

        // A second crash wave hits the assignment receivers between VSA and
        // VST, exercising the requeue path at the root rendezvous.
        let mut receivers: Vec<_> = vsa.assignments.iter().map(|a| a.to).collect();
        receivers.sort_unstable();
        receivers.dedup();
        let victims = plan.pick_transfer_victims(&receivers);
        for &p in &victims {
            net.crash_peer(p);
        }
        trace.count("crashed_peers", victims.len() as u64);
        let outcome = execute_transfers_with_requeue_traced(
            &mut net,
            &mut loads,
            &vsa.assignments,
            None,
            &mut vsa.unassigned,
            system.min_vs_load,
            trace,
        )
        .expect("no oracle in the requeue pass");

        let after = Classification::compute(&net, &loads, &params, system);
        let heavy_after = after.count_of(NodeClass::Heavy);
        let alive = net.alive_peers().len();

        let row = FaultSweepRow {
            loss_rate: rate,
            crashed_peers: crashes.len() + victims.len(),
            stale_links: stale.len(),
            aggregation_completion: agg.completion_rate(),
            dissemination_completion: dis.completion_rate(),
            repair_reattached: repair.reattached,
            repair_pruned: repair.pruned,
            convergence_rounds: repair.rounds,
            messages: agg.timing.messages + dis.timing.messages,
            retries: agg.retries + dis.retries,
            gave_up: agg.gave_up + dis.gave_up,
            heavy_before,
            heavy_after,
            residual_heavy_fraction: heavy_after as f64 / alive.max(1) as f64,
            transfers: outcome.transfers.len(),
            requeued: outcome.requeued,
            reassigned: outcome.reassigned,
            abandoned: outcome.abandoned,
        };
        trace.instant_args(
            "rate_summary",
            clock,
            &[
                ("loss_rate", rate.into()),
                ("retries", (row.retries as u64).into()),
                ("gave_up", (row.gave_up as u64).into()),
                ("requeued", (row.requeued as u64).into()),
                ("abandoned", (row.abandoned as u64).into()),
                ("heavy_after", (row.heavy_after as u64).into()),
            ],
        );
        progress.event(&format!(
            "faults: rate {rate:.2} done (agg {:.0}%, heavy {} -> {})",
            row.aggregation_completion * 100.0,
            row.heavy_before,
            row.heavy_after
        ));
        row
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TopologyKind;

    fn sweep_scenario() -> Scenario {
        let mut s = Scenario::builder().small().seed(60).build();
        s.peers = 96;
        s.topology = TopologyKind::Tiny;
        s
    }

    #[test]
    fn fault_sweep_zero_rate_is_clean() {
        let rows = fault_sweep(&sweep_scenario(), &[0.0], 1);
        let r = &rows[0];
        assert_eq!(r.crashed_peers, 0);
        assert_eq!(r.stale_links, 0);
        assert_eq!(r.aggregation_completion, 1.0);
        assert_eq!(r.dissemination_completion, 1.0);
        assert_eq!(r.repair_reattached, 0);
        assert_eq!(r.repair_pruned, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.gave_up, 0);
        assert_eq!(r.requeued, 0);
    }

    #[test]
    fn fault_sweep_is_thread_count_invariant() {
        let s = sweep_scenario();
        let rates = [0.0, 0.08];
        let a = fault_sweep(&s, &rates, 1);
        let b = fault_sweep(&s, &rates, 2);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "sweep must be bit-identical at any thread count");
        // And the faulty cell actually exercised the machinery.
        assert!(a[1].crashed_peers > 0 || a[1].retries > 0 || a[1].stale_links > 0);
    }
}
