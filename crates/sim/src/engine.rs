//! The continuous-operation engine: churn, load drift, fault injection,
//! tree maintenance and *periodic + emergency* balancing composed on one
//! shared virtual clock.
//!
//! The paper describes periodic LBI reporting and an emergency re-balancing
//! trigger (§3.2) but evaluates only one-shot passes; the dynamics live in
//! three disjoint experiment drivers ([`crate::churn`], [`crate::drift`],
//! [`crate::faults`]). This module composes them: time is divided into
//! **epochs** of [`EngineConfig::epoch_len`] virtual-time units, every
//! epoch each pluggable [`EventSource`] perturbs the [`World`] (joins,
//! crashes, load drift, stale tree links), the K-nary tree is repaired on a
//! maintenance cadence, and the four-phase balancer runs **incrementally**
//! ([`proxbal_core::LoadBalancer::run_round`]) on the balancing cadence —
//! or immediately, when any node's unit load crosses the emergency
//! threshold between rounds.
//!
//! # Determinism contract
//!
//! Every random choice derives from the scenario's master seed through a
//! labelled stream: each event source owns a private RNG
//! (`derived_rng(label)`), the balancer draws from a per-run engine stream,
//! and fault fates come from the plan's own stream. Nothing depends on
//! wall-clock time or thread identity, so a run's per-epoch time series —
//! and its trace — are byte-identical across repeats and `--threads`
//! settings, and a traced run never perturbs an untraced one.

use crate::churn::ChurnSource;
use crate::des::RetryPolicy;
use crate::drift::{gini_of_unit_loads, heavy_count, DriftSource};
use crate::faults::{
    simulate_aggregation_faulty_traced, simulate_dissemination_faulty_traced, FaultPlan,
    FaultSource,
};
use crate::protocol::{ProtocolError, ProtocolScratch};
use crate::Prepared;
use proxbal_chord::{ChordNetwork, PeerId};
use proxbal_core::{
    total_moved_load, DirtySet, Error, LoadBalancer, LoadState, RoundCache, Underlay,
};
use proxbal_ktree::{KTree, KtNodeId, RepairStats};
use proxbal_profile::{NullSink, ProgressSink};
use proxbal_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// RNG stream label of the churn source (see [`Prepared::derived_rng`]).
pub const CHURN_LABEL: u64 = 0xC4A1_0001;
/// RNG stream label of the drift source (see [`Prepared::derived_rng`]).
pub const DRIFT_LABEL: u64 = 0xD21F_0002;
/// RNG stream label of the engine's balancer (see
/// [`Prepared::derived_rng`]) — public so equivalence tests can replay the
/// exact stream against a one-shot [`LoadBalancer::run_with_tree`].
pub const BALANCE_LABEL: u64 = 0xE791_E003;

/// Scheduling knobs of the continuous-operation engine. Epoch counts and
/// intervals are in epochs; one epoch spans `epoch_len` virtual-time units
/// (the window the Poisson churn clocks against).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of epochs to run.
    pub epochs: usize,
    /// Virtual-time units per epoch.
    pub epoch_len: u64,
    /// Run the balancer every this many epochs (plus emergencies, plus a
    /// forced final pass on the last epoch).
    pub balance_interval: usize,
    /// Repair the K-nary tree every this many epochs. Balancing rounds
    /// also bring the tree up to date, so this only matters between them.
    pub maintenance_interval: usize,
    /// Emergency trigger: balance immediately when any node's unit load
    /// `L_i/C_i` exceeds this multiple of the system target `L/C` —
    /// the paper's "emergency load balancing … invoked on demand" (§3.2).
    pub emergency_threshold: f64,
    /// Extra same-epoch passes while heavy nodes remain (each pass marks
    /// its transfer participants dirty and re-runs). `0` = single pass.
    pub max_emergency_passes: usize,
    /// Inject the fault plan's stale tree links every this many epochs
    /// (`0` = only once, before the first epoch). Ignored without faults.
    pub stale_link_interval: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            epochs: 50,
            epoch_len: 10,
            balance_interval: 5,
            maintenance_interval: 1,
            emergency_threshold: 4.0,
            max_emergency_passes: 4,
            stale_link_interval: 10,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), Error> {
        if self.epochs == 0 {
            return Err(Error::InvalidEngineConfig("epochs must be >= 1"));
        }
        if self.epoch_len == 0 {
            return Err(Error::InvalidEngineConfig("epoch_len must be >= 1"));
        }
        if self.balance_interval == 0 {
            return Err(Error::InvalidEngineConfig("balance_interval must be >= 1"));
        }
        if self.maintenance_interval == 0 {
            return Err(Error::InvalidEngineConfig(
                "maintenance_interval must be >= 1",
            ));
        }
        if self.emergency_threshold.is_nan() || self.emergency_threshold <= 0.0 {
            return Err(Error::InvalidEngineConfig(
                "emergency_threshold must be positive",
            ));
        }
        Ok(())
    }
}

/// The mutable simulation state an [`EventSource`] perturbs.
pub struct World<'a> {
    /// The Chord overlay.
    pub net: &'a mut ChordNetwork,
    /// Per-VS loads and per-peer capacities.
    pub loads: &'a mut LoadState,
    /// The long-lived K-nary aggregation tree.
    pub tree: &'a mut KTree,
    /// Peers whose load, capacity, or membership changed since the last
    /// balancing round — they re-report at the next one
    /// ([`proxbal_core::DirtySet`]).
    pub dirty: &'a mut BTreeSet<PeerId>,
}

/// What one event source did during one epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceActivity {
    /// Peers that joined.
    pub joins: usize,
    /// Peers that crashed.
    pub crashes: usize,
    /// Virtual servers whose load drifted.
    pub drifted: usize,
    /// Tree links rewired to a stale parent.
    pub stale_links: usize,
}

impl SourceActivity {
    fn merge(&mut self, other: SourceActivity) {
        self.joins += other.joins;
        self.crashes += other.crashes;
        self.drifted += other.drifted;
        self.stale_links += other.stale_links;
    }
}

/// A pluggable perturbation: called once per epoch, in registration order,
/// before maintenance and balancing. Implementations own their RNG stream
/// so sources never perturb each other's randomness.
pub trait EventSource {
    /// Stable name for traces and logs.
    fn name(&self) -> &'static str;
    /// Perturbs the world for one epoch spanning `window` virtual-time
    /// units, reporting what happened.
    fn on_epoch(&mut self, epoch: usize, window: u64, world: &mut World<'_>) -> SourceActivity;
}

/// One row of the engine's per-epoch time series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EpochSample {
    /// Epoch index.
    pub epoch: usize,
    /// Alive peers at epoch end.
    pub alive_peers: usize,
    /// Unit-load Gini at epoch end.
    pub gini: f64,
    /// Heavy-node count at epoch end (against fresh system totals).
    pub heavy: usize,
    /// Peers that joined this epoch.
    pub joins: usize,
    /// Peers that crashed this epoch.
    pub crashes: usize,
    /// Stale tree links injected this epoch.
    pub stale_links: usize,
    /// Orphaned subtrees re-attached by maintenance this epoch.
    pub repair_reattached: usize,
    /// Tree nodes pruned by maintenance this epoch.
    pub repair_pruned: usize,
    /// Maintenance rounds run this epoch.
    pub maintenance_rounds: usize,
    /// Whether a balancing round ran this epoch.
    pub balanced: bool,
    /// Whether the emergency threshold (not the schedule) triggered it.
    pub emergency: bool,
    /// Balancing passes executed this epoch (> 1 when emergency re-passes
    /// chased residual heavy nodes).
    pub balance_passes: usize,
    /// Load moved by this epoch's balancing.
    pub moved: f64,
    /// Transfers executed by this epoch's balancing.
    pub transfers: usize,
    /// Protocol messages of this epoch's balancing (LBI + dissemination +
    /// VSA record·hops + notifications).
    pub messages: usize,
    /// Messages of the fault-injected DES shadow run (0 without faults).
    pub des_messages: usize,
    /// Retransmissions of the DES shadow run.
    pub des_retries: usize,
}

/// The engine's output: the full time series plus run totals.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineReport {
    /// The engine configuration that produced this report.
    pub config: EngineConfig,
    /// One row per epoch.
    pub samples: Vec<EpochSample>,
    /// Total peers joined.
    pub joins: usize,
    /// Total peers crashed.
    pub crashes: usize,
    /// Total stale links injected.
    pub stale_links: usize,
    /// Epochs on which balancing ran.
    pub balances: usize,
    /// Of those, how many were emergency-triggered.
    pub emergencies: usize,
    /// Total load moved.
    pub total_moved: f64,
    /// Total transfers executed.
    pub total_transfers: usize,
    /// Total protocol messages.
    pub total_messages: usize,
}

impl EngineReport {
    /// Heavy-node count at the final epoch.
    pub fn final_heavy(&self) -> usize {
        self.samples.last().map_or(0, |s| s.heavy)
    }

    /// Mean unit-load Gini across the timeline.
    pub fn mean_gini(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.gini).sum::<f64>() / self.samples.len() as f64
    }

    /// Serializes the report to the stable pretty-printed JSON artifact the
    /// analyze layer consumes. Field order is declaration order and every
    /// value is virtual-time/seed-derived, so the bytes are identical for a
    /// given `(config, seed)` at any thread count.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("EngineReport serializes infallibly")
    }

    /// Parses a report from JSON — either a bare [`EngineReport`] document
    /// or the `repro engine --json` wrapper (`{"paper", "seed", "scale",
    /// "results": {...}}`), whose `results` field is the report.
    pub fn from_json_str(text: &str) -> Result<EngineReport, String> {
        let doc: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e:?}"))?;
        let report_value = doc.get("results").unwrap_or(&doc);
        let rendered =
            serde_json::to_string(report_value).map_err(|e| format!("re-render failed: {e:?}"))?;
        serde_json::from_str(&rendered).map_err(|e| format!("not an EngineReport: {e:?}"))
    }
}

fn to_core(e: ProtocolError) -> Error {
    match e {
        ProtocolError::UnattachedPeer(p) => Error::UnattachedPeer(p),
        // The remaining variants can't arise from the engine's own drivers
        // today, but map them faithfully so a protocol failure is never
        // reported as an empty network.
        ProtocolError::InvalidLossProbability(_) => Error::Protocol {
            phase: "loss-model",
            reached: 0,
            expected: 0,
        },
        ProtocolError::Incomplete {
            phase,
            reached,
            expected,
        } => Error::Protocol {
            phase,
            reached,
            expected,
        },
    }
}

/// Runs the continuous-operation engine over a prepared scenario. Event
/// sources come from the scenario itself (`churn`, `drift`, `faults`); the
/// engine composes them with tree maintenance and periodic + emergency
/// balancing per `cfg`. The prepared network and loads are mutated in
/// place.
pub fn run_engine(prepared: &mut Prepared, cfg: &EngineConfig) -> Result<EngineReport, Error> {
    run_engine_traced(prepared, cfg, &mut Trace::disabled())
}

/// Like [`run_engine`], recording one relabelled child trace per epoch
/// (`epoch0`, `epoch1`, …) absorbed in order — the same idiom as
/// [`crate::parallel::map_indexed_traced`], so traces stay deterministic.
pub fn run_engine_traced(
    prepared: &mut Prepared,
    cfg: &EngineConfig,
    trace: &mut Trace,
) -> Result<EngineReport, Error> {
    run_engine_with(prepared, cfg, trace, &NullSink)
}

/// Like [`run_engine_traced`], additionally emitting one heartbeat line per
/// epoch (epoch k/N, heavy count, alive peers) through `progress`.
/// Heartbeats go to the sink (stderr in practice), never stdout, so they
/// cannot perturb the deterministic time series or trace.
pub fn run_engine_with(
    prepared: &mut Prepared,
    cfg: &EngineConfig,
    trace: &mut Trace,
    progress: &dyn ProgressSink,
) -> Result<EngineReport, Error> {
    cfg.validate()?;
    let scenario = prepared.scenario.clone();
    let derived = |label: u64| prepared.derived_rng(label);

    let balancer = LoadBalancer::new(scenario.balancer).with_threads(prepared.threads);
    let mut tree = KTree::build(&prepared.net, scenario.balancer.k);

    let mut sources: Vec<Box<dyn EventSource>> = Vec::new();
    if let Some(churn) = scenario.churn {
        // Joining peers attach to underlay stub nodes like the initial
        // population did, so proximity queries work for them too.
        let attach_pool = prepared
            .topo
            .as_ref()
            .map(|t| t.stub_nodes())
            .unwrap_or_default();
        sources.push(Box::new(ChurnSource::new(
            churn,
            scenario.capacity.clone(),
            scenario.load,
            attach_pool,
            derived(CHURN_LABEL),
        )));
    }
    if let Some(drift) = scenario.drift {
        sources.push(Box::new(DriftSource::new(drift, derived(DRIFT_LABEL))));
    }
    if let Some(faults) = scenario.faults {
        sources.push(Box::new(FaultSource::new(faults, cfg.stale_link_interval)));
    }

    // The DES shadow: on balancing epochs the LBI aggregation and
    // dissemination also run through the fault-injected message simulator,
    // which supplies the loss/retry metrics while the actual balancing
    // operates on ground truth (the same split `fault_sweep` uses — the
    // protocol *state* stays exact, the *transport* statistics degrade).
    let mut des = scenario
        .faults
        .map(|f| (FaultPlan::new(f), ProtocolScratch::new()));

    let mut bal_rng = derived(BALANCE_LABEL);
    let mut cache = RoundCache::new();
    let mut dirty: BTreeSet<PeerId> = BTreeSet::new();

    // Retention accounting for the `kt_reorphaned` trace counter: slots of
    // subtrees a repair re-attached, cleared whenever new faults (crashes,
    // stale links) arrive — those legitimately orphan subtrees again. A
    // slot re-orphaned *without* intervening faults means a repair did not
    // stick; the committed retention gate requires that never happens.
    let mut retained: BTreeSet<KtNodeId> = BTreeSet::new();

    let mut report = EngineReport {
        config: *cfg,
        samples: Vec::with_capacity(cfg.epochs),
        joins: 0,
        crashes: 0,
        stale_links: 0,
        balances: 0,
        emergencies: 0,
        total_moved: 0.0,
        total_transfers: 0,
        total_messages: 0,
    };

    for epoch in 0..cfg.epochs {
        let mut tr = Trace::new(trace.is_enabled(), "");
        tr.relabel(&format!("epoch{epoch}"));
        let clock = epoch as u64 * cfg.epoch_len;

        // 1. Event sources, in registration order.
        let mut activity = SourceActivity::default();
        {
            let mut world = World {
                net: &mut prepared.net,
                loads: &mut prepared.loads,
                tree: &mut tree,
                dirty: &mut dirty,
            };
            for s in &mut sources {
                activity.merge(s.on_epoch(epoch, cfg.epoch_len, &mut world));
            }
        }

        // 2. Tree maintenance on its own cadence (balancing rounds also
        // repair, so this covers the quiet epochs in between).
        let mut repair = RepairStats {
            reattached: 0,
            pruned: 0,
            rounds: 0,
        };
        if activity.crashes > 0 || activity.stale_links > 0 {
            retained.clear();
        }
        if (epoch + 1) % cfg.maintenance_interval == 0 {
            let (stats, actions) =
                tree.repair_traced_with_actions(&prepared.net, 256, clock, &mut tr);
            repair = stats;
            let reorphaned = actions
                .iter()
                .filter(|a| retained.contains(&a.slot))
                .count();
            if reorphaned > 0 {
                tr.count("kt_reorphaned", reorphaned as u64);
            }
            retained.extend(actions.iter().filter(|a| a.reattached).map(|a| a.slot));
        }

        // 3. Emergency check against ground truth — the engine's stand-in
        // for each node comparing its own L_i/C_i against the last
        // disseminated target.
        let totals = prepared.loads.totals(&prepared.net);
        let target_unit = if totals.capacity > 0.0 {
            totals.load / totals.capacity
        } else {
            0.0
        };
        let alive = prepared.net.alive_peers();
        let max_unit = alive
            .iter()
            .map(|&p| prepared.loads.unit_load(&prepared.net, p))
            .fold(0.0_f64, f64::max);
        let emergency = target_unit > 0.0 && max_unit > cfg.emergency_threshold * target_unit;
        let scheduled = (epoch + 1) % cfg.balance_interval == 0;
        let last = epoch + 1 == cfg.epochs;
        let do_balance = scheduled || emergency || last;

        // 4. Balancing: one incremental round, plus emergency re-passes
        // while heavy nodes remain and transfers still happen.
        let mut moved = 0.0;
        let mut transfers = 0usize;
        let mut messages = 0usize;
        let mut passes = 0usize;
        let mut des_messages = 0usize;
        let mut des_retries = 0usize;
        if do_balance {
            if let (Some((plan, scratch)), Some(oracle)) = (des.as_mut(), prepared.oracle.as_ref())
            {
                let mut contributors: Vec<KtNodeId> = prepared
                    .net
                    .ring()
                    .iter()
                    .map(|(_, vs)| tree.report_target(&prepared.net, vs))
                    .collect();
                contributors.sort_unstable();
                contributors.dedup();
                let agg = simulate_aggregation_faulty_traced(
                    &prepared.net,
                    &tree,
                    oracle,
                    &contributors,
                    plan,
                    RetryPolicy::protocol_default(),
                    &[],
                    scratch,
                    &mut tr,
                )
                .map_err(to_core)?;
                let dis = simulate_dissemination_faulty_traced(
                    &prepared.net,
                    &tree,
                    oracle,
                    plan,
                    RetryPolicy::protocol_default(),
                    &[],
                    scratch,
                    &mut tr,
                )
                .map_err(to_core)?;
                des_messages = agg.timing.messages + dis.timing.messages;
                des_retries = agg.retries + dis.retries;
            }

            let underlay = prepared.oracle.as_ref().map(|oracle| Underlay {
                oracle,
                latency_oracle: prepared.latency_oracle.as_ref(),
                landmarks: &prepared.landmarks,
                approx: prepared.hop_landmarks.as_ref().map(|landmarks| {
                    proxbal_core::ApproxTransfer {
                        landmarks,
                        refine_sources: prepared.scenario.refine_sources,
                    }
                }),
            });
            // A cold cache means every peer reports fresh regardless of the
            // dirty set; say so explicitly so the message accounting matches
            // a one-shot run.
            let mut round_dirty = if cache.is_empty() {
                dirty.clear();
                DirtySet::All
            } else {
                DirtySet::Peers(std::mem::take(&mut dirty))
            };
            loop {
                passes += 1;
                let round = balancer.run_round_traced(
                    &mut prepared.net,
                    &mut prepared.loads,
                    &mut tree,
                    underlay,
                    &mut cache,
                    &round_dirty,
                    &mut bal_rng,
                    &mut tr,
                )?;
                moved += total_moved_load(&round.transfers);
                transfers += round.transfers.len();
                messages += round.messages.lbi_messages
                    + round.messages.dissemination_messages
                    + round.messages.vsa_record_hops
                    + round.messages.vsa_notifications;
                let heavy_after = round.heavy_after();
                let mut participants: BTreeSet<PeerId> = BTreeSet::new();
                for t in &round.transfers {
                    participants.insert(t.assignment.from);
                    participants.insert(t.assignment.to);
                }
                let done = heavy_after == 0
                    || participants.is_empty()
                    || passes > cfg.max_emergency_passes;
                // Transfer participants changed load: they re-report at the
                // next pass (or the next epoch's round).
                dirty = participants.clone();
                if done {
                    break;
                }
                round_dirty = DirtySet::Peers(participants);
            }
            report.balances += 1;
            if emergency && !scheduled && !last {
                report.emergencies += 1;
            }
        }

        // 5. Sample the epoch.
        let heavy = heavy_count(&prepared.net, &prepared.loads, scenario.balancer.epsilon);
        let gini = gini_of_unit_loads(&prepared.net, &prepared.loads);
        let alive_peers = prepared.net.alive_peers().len();
        tr.span_args(
            "engine/epoch",
            clock,
            cfg.epoch_len,
            &[
                ("joins", activity.joins.into()),
                ("crashes", activity.crashes.into()),
                ("heavy", heavy.into()),
                ("passes", passes.into()),
            ],
        );
        report.samples.push(EpochSample {
            epoch,
            alive_peers,
            gini,
            heavy,
            joins: activity.joins,
            crashes: activity.crashes,
            stale_links: activity.stale_links,
            repair_reattached: repair.reattached,
            repair_pruned: repair.pruned,
            maintenance_rounds: repair.rounds,
            balanced: do_balance,
            emergency: emergency && do_balance,
            balance_passes: passes,
            moved,
            transfers,
            messages,
            des_messages,
            des_retries,
        });
        report.joins += activity.joins;
        report.crashes += activity.crashes;
        report.stale_links += activity.stale_links;
        report.total_moved += moved;
        report.total_transfers += transfers;
        report.total_messages += messages;

        progress.event(&format!(
            "engine: epoch {}/{} heavy={heavy} alive={alive_peers}",
            epoch + 1,
            cfg.epochs
        ));

        trace.absorb(tr);
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_core_preserves_protocol_failures() {
        assert_eq!(
            to_core(ProtocolError::UnattachedPeer(PeerId(7))),
            Error::UnattachedPeer(PeerId(7))
        );
        assert_eq!(
            to_core(ProtocolError::InvalidLossProbability(1.5)),
            Error::Protocol {
                phase: "loss-model",
                reached: 0,
                expected: 0,
            }
        );
        let mapped = to_core(ProtocolError::Incomplete {
            phase: "aggregation",
            reached: 3,
            expected: 9,
        });
        assert_eq!(
            mapped,
            Error::Protocol {
                phase: "aggregation",
                reached: 3,
                expected: 9,
            }
        );
        // The whole point of the variant: a protocol failure must not
        // masquerade as an empty network.
        assert_ne!(mapped, Error::EmptyNetwork);
        assert!(mapped.to_string().contains("covered 3 of 9"));
    }

    fn tiny_report() -> EngineReport {
        EngineReport {
            config: EngineConfig::default(),
            samples: vec![EpochSample {
                epoch: 0,
                alive_peers: 4,
                gini: 0.25,
                heavy: 1,
                joins: 2,
                crashes: 0,
                stale_links: 3,
                repair_reattached: 3,
                repair_pruned: 0,
                maintenance_rounds: 1,
                balanced: true,
                emergency: false,
                balance_passes: 1,
                moved: 1.5,
                transfers: 2,
                messages: 63,
                des_messages: 0,
                des_retries: 0,
            }],
            joins: 2,
            crashes: 0,
            stale_links: 3,
            balances: 1,
            emergencies: 0,
            total_moved: 1.5,
            total_transfers: 2,
            total_messages: 63,
        }
    }

    #[test]
    fn report_json_roundtrip_bare_and_wrapped() {
        let report = tiny_report();
        let bare = report.to_json_pretty();
        let back = EngineReport::from_json_str(&bare).unwrap();
        assert_eq!(back.to_json_pretty(), bare);

        // The `repro engine --json` wrapper nests the report under
        // `results`; the parser accepts both shapes.
        let wrapped =
            format!("{{\"paper\":\"x\",\"seed\":1,\"scale\":\"small\",\"results\":{bare}}}");
        let back = EngineReport::from_json_str(&wrapped).unwrap();
        assert_eq!(back.to_json_pretty(), bare);

        assert!(EngineReport::from_json_str("{\"nope\":1}").is_err());
        assert!(EngineReport::from_json_str("not json").is_err());
    }
}
