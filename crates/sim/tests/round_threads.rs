//! The intra-round parallelism determinism contract: one balancing round
//! with its hot loops (LBI generation, tree aggregation, classification,
//! shed/light extraction, transfer refinement) running on N worker threads
//! produces a **byte-identical** report and trace to the serial round.
//! Parallel work is chunked by fixed compile-time sizes and merged in index
//! order on the caller's thread, and every RNG draw stays serial — so the
//! thread count can only change wall-clock time, never a single output
//! byte. The xl2-scale guarantee (`repro xl2 --threads 8` ≡ `--threads 1`)
//! is exactly this property at a million peers.

use proxbal_core::{
    BalancerConfig, LoadBalancer, ProximityMode, ProximityParams, RoundWalls, Underlay,
};
use proxbal_ktree::KTree;
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_trace::Trace;

/// A reduced proximity-aware scenario exercising all four phases: a real
/// (tiny) underlay so the proximity inputs, landmark vectors and transfer
/// distances all flow through the parallel sections.
fn aware_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::builder().small().seed(seed).build();
    s.peers = 128;
    s.topology = TopologyKind::Tiny;
    s
}

/// Runs one traced proximity-aware round at the given worker-thread count
/// over freshly prepared (thread-independent) state, returning the
/// serialized report and the trace event log.
fn one_round(seed: u64, threads: usize) -> (String, String, RoundWalls) {
    let mut prepared = aware_scenario(seed).prepare_threads(1);
    let cfg = BalancerConfig {
        mode: ProximityMode::Aware(ProximityParams::default()),
        ..prepared.scenario.balancer
    };
    let underlay = Underlay {
        oracle: prepared.oracle.as_ref().expect("tiny topology present"),
        latency_oracle: prepared.latency_oracle.as_ref(),
        landmarks: &prepared.landmarks,
        approx: None,
    };
    let mut tree = KTree::build(&prepared.net, cfg.k);
    let mut rng = prepared.derived_rng(0x51D);
    let mut trace = Trace::enabled("round");
    let mut walls = RoundWalls::default();
    let report = LoadBalancer::new(cfg)
        .with_threads(threads)
        .run_with_tree_walls(
            &mut prepared.net,
            &mut prepared.loads,
            &mut tree,
            Some(underlay),
            &mut rng,
            &mut trace,
            &mut walls,
        )
        .expect("attached network");
    (
        serde_json::to_string(&report).expect("serialize report"),
        trace.to_ndjson(),
        walls,
    )
}

#[test]
fn round_report_and_trace_are_byte_identical_across_thread_counts() {
    let (report1, nd1, walls1) = one_round(17, 1);
    for threads in [2, 3, 8] {
        let (report, nd, _) = one_round(17, threads);
        assert_eq!(report, report1, "report at {threads} threads");
        assert_eq!(nd, nd1, "trace event log at {threads} threads");
    }
    // The walls were actually measured (phases 1 and 4 always do work).
    assert!(walls1.lbi_wall_s > 0.0);
    assert!(walls1.transfer_wall_s > 0.0);
}

#[test]
fn round_trace_carries_the_intra_round_spans() {
    let (_, nd, _) = one_round(19, 8);
    // The new per-phase spans exist and their args are workload-derived
    // (peer/chunk/merge counts), never thread counts or wall-clocks — that
    // is what lets the 8-thread event log match the serial one above.
    for span in [
        "round/lbi",
        "round/aggregate",
        "round/vsa",
        "round/transfer",
    ] {
        assert!(nd.contains(span), "missing span {span}");
    }
    assert!(
        !nd.contains("wall_s"),
        "wall-clock must never leak into the trace"
    );
}

#[test]
fn ignorant_mode_rounds_are_thread_invariant_too() {
    // No underlay at all: the ignorant identifier-space path (random
    // report placement, no distance accounting) merges identically.
    let run = |threads: usize| {
        let mut prepared = aware_scenario(23).prepare_threads(1);
        let mut rng = prepared.derived_rng(0x1D);
        let report = LoadBalancer::new(prepared.scenario.balancer)
            .with_threads(threads)
            .run(&mut prepared.net, &mut prepared.loads, None, &mut rng)
            .expect("attached network");
        serde_json::to_string(&report).expect("serialize report")
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn engine_timeline_is_invariant_to_the_prepare_thread_count() {
    // The engine picks up `Prepared::threads` for its balancer: preparing
    // at 8 threads must still replay the identical incremental rounds.
    let scenario = {
        let mut s = Scenario::builder().small().seed(29).build();
        s.peers = 96;
        s.topology = TopologyKind::Tiny;
        s.churn = Some(proxbal_sim::churn::ChurnConfig::default());
        s.drift = Some(proxbal_sim::drift::DriftConfig::default());
        s
    };
    let cfg = proxbal_sim::EngineConfig {
        epochs: 6,
        ..proxbal_sim::EngineConfig::default()
    };
    let run = |threads: usize| {
        let mut prepared = scenario.prepare_threads(threads);
        assert_eq!(prepared.threads, threads);
        let mut trace = Trace::enabled("engine");
        let report = proxbal_sim::run_engine_traced(&mut prepared, &cfg, &mut trace).unwrap();
        (serde_json::to_string(&report).unwrap(), trace.to_ndjson())
    };
    let (r1, nd1) = run(1);
    let (r8, nd8) = run(8);
    assert_eq!(r1, r8, "engine time series must not depend on threads");
    assert_eq!(nd1, nd8, "engine trace must not depend on threads");
}
