//! Small-scale smoke tests for every experiment driver the `repro` binary
//! uses — the full-scale outputs are recorded in EXPERIMENTS.md; these
//! verify the drivers' *shape guarantees* quickly in CI.

use proxbal_core::BalancerConfig;
use proxbal_sim::experiments::*;
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_workload::LoadModel;

fn small(seed: u64, topology: TopologyKind) -> Scenario {
    let mut s = Scenario::builder().seed(seed).build();
    s.peers = 256;
    s.topology = topology;
    s
}

#[test]
fn fig4_driver_shape() {
    let mut prepared = small(1, TopologyKind::None).prepare();
    let out = fig4_unit_load(&mut prepared);
    assert_eq!(out.before.len(), 256);
    assert_eq!(out.after.len(), 256);
    let max_before = out.before.iter().fold(0.0f64, |a, &b| a.max(b));
    let max_after = out.after.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(max_after < max_before / 10.0, "{max_before} -> {max_after}");
    assert!(out.report.heavy_before_fraction() > 0.4);
    assert_eq!(out.report.heavy_after(), 0);
}

#[test]
fn fig56_driver_shape_gaussian_and_pareto() {
    for load in [LoadModel::gaussian(1e6, 1e4), LoadModel::pareto(1e6)] {
        let mut scenario = small(2, TopologyKind::None);
        scenario.load = load;
        let mut prepared = scenario.prepare();
        let out = fig56_class_loads(&mut prepared);
        assert_eq!(out.class_capacity.len(), 5);
        // Post-balance means rise with capacity over populated classes.
        let means: Vec<f64> = out
            .after
            .iter()
            .filter(|v| v.len() >= 3)
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        for w in means.windows(2) {
            assert!(w[1] > w[0], "{load:?}: means not increasing {means:?}");
        }
    }
}

#[test]
fn fig78_replicated_pools_graphs() {
    let base = small(3, TopologyKind::Tiny);
    let out = fig78_replicated(&base, 3, 3);
    assert_eq!(out.per_graph.len(), 3);
    assert_eq!(out.max_heavy_after, 0);
    assert!(!out.aware.is_empty());
    assert!(!out.ignorant.is_empty());
    // Pooled totals are the sums of the per-graph runs.
    assert!(out.aware.total() > 0.0);
}

#[test]
fn rounds_scaling_is_monotone_in_size_and_k() {
    let rows = rounds_scaling(&[64, 256], &[2, 8], 5, 2);
    assert_eq!(rows.len(), 4);
    let get = |peers: usize, k: usize| {
        rows.iter()
            .find(|r| r.peers == peers && r.k == k)
            .unwrap()
            .lbi_rounds
    };
    assert!(get(256, 2) >= get(64, 2), "rounds grow with size");
    assert!(get(256, 8) <= get(256, 2), "larger K flattens the tree");
}

#[test]
fn repair_rows_bounded_by_height() {
    let row = repair_after_crash(128, 0.25, 2, 7);
    assert_eq!(row.crash_repair_rounds, 1, "prune/replant is one sweep");
    assert!(row.join_repair_rounds >= 1);
    assert!(
        row.join_repair_rounds as u32 <= row.height_after + 2,
        "regrowth {} vs height {}",
        row.join_repair_rounds,
        row.height_after
    );
}

#[test]
fn scheme_comparison_reports_cfs_weakness() {
    let prepared = small(9, TopologyKind::None).prepare();
    let cmp = scheme_comparison(&prepared);
    assert!(cmp.gini_tree < cmp.gini_before);
    assert!(cmp.heavy_before > 0);
    assert!(cmp.heavy_after * 10 <= cmp.heavy_before);
    // CFS either converges or thrashes; on heterogeneous workloads it
    // reliably thrashes at least once.
    assert!(cmp.cfs_thrash_events > 0 || cmp.cfs_converged);
}

#[test]
fn ablation_sweep_covers_all_variants() {
    let mut scenario = small(11, TopologyKind::Tiny);
    scenario.landmarks = 6;
    let prepared = scenario.prepare();
    let rows = ablation_sweep(&prepared, 2);
    assert!(rows.len() >= 12);
    // Ignorant baseline must have the worst mean distance.
    let ignorant = rows
        .iter()
        .find(|r| r.label == "proximity-ignorant")
        .unwrap();
    let default = &rows[0];
    assert!(default.mean_distance < ignorant.mean_distance);
    // Conservation: every variant moves the same order of load.
    for r in &rows {
        assert!(r.moved_load > 0.0, "{} moved nothing", r.label);
    }
}

/// The determinism contract of the sweep engine: every parallelized driver
/// produces bit-identical output regardless of worker count, because each
/// cell derives its RNG from the cell's identity alone. Compared via JSON
/// rendering, which is exact for identical f64 bit patterns.
#[test]
fn parallel_drivers_are_thread_count_invariant() {
    let fig = |threads| {
        let base = small(17, TopologyKind::Tiny);
        serde_json::to_string(&fig78_replicated(&base, 3, threads)).unwrap()
    };
    let fig1 = fig(1);
    assert_eq!(fig1, fig(2), "fig78 differs at 2 threads");
    assert_eq!(fig1, fig(8), "fig78 differs at 8 threads");

    let rounds =
        |threads| serde_json::to_string(&rounds_scaling(&[64, 128], &[2, 8], 19, threads)).unwrap();
    let rounds1 = rounds(1);
    assert_eq!(rounds1, rounds(2), "rounds_scaling differs at 2 threads");
    assert_eq!(rounds1, rounds(8), "rounds_scaling differs at 8 threads");

    let mut scenario = small(11, TopologyKind::Tiny);
    scenario.landmarks = 6;
    let prepared = scenario.prepare();
    let ablation = |threads| serde_json::to_string(&ablation_sweep(&prepared, threads)).unwrap();
    let ablation1 = ablation(1);
    assert_eq!(
        ablation1,
        ablation(2),
        "ablation_sweep differs at 2 threads"
    );
    assert_eq!(
        ablation1,
        ablation(8),
        "ablation_sweep differs at 8 threads"
    );

    let latency = |threads| {
        serde_json::to_string(&protocol_latency(&[96], &[2, 8], &[0.0, 0.05], 23, threads)).unwrap()
    };
    let latency1 = latency(1);
    assert_eq!(
        latency1,
        latency(8),
        "protocol_latency differs at 8 threads"
    );
}

/// The eviction contract of the bounded oracle cache: a fig-7-shaped run
/// with a 16-row cache (constant eviction pressure during the transfer
/// phase) renders byte-identically to the unbounded cache — eviction only
/// discards memoized pure functions of the graph, never answers.
#[test]
fn bounded_oracle_cache_is_bit_identical() {
    let mut base = small(7, TopologyKind::Ts5kLarge);
    base.peers = 512;
    let unbounded = serde_json::to_string(&fig78_moved_load(&base.prepare())).unwrap();
    base.oracle_capacity = 16;
    let bounded = serde_json::to_string(&fig78_moved_load(&base.prepare())).unwrap();
    assert_eq!(unbounded, bounded);
}

#[test]
fn balancer_config_in_scenario_is_respected() {
    let mut scenario = small(13, TopologyKind::None);
    scenario.balancer = BalancerConfig {
        k: 8,
        ..BalancerConfig::default()
    };
    let mut prepared = scenario.prepare();
    let out = fig4_unit_load(&mut prepared);
    // K=8 trees are shallow: round counts far below the K=2 equivalents.
    assert!(out.report.lbi_rounds <= 10, "{}", out.report.lbi_rounds);
}

#[test]
fn scenario_serde_round_trip() {
    let scenario = Scenario::builder().seed(99).build();
    let json = serde_json::to_string(&scenario).unwrap();
    let back: Scenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back.peers, scenario.peers);
    assert_eq!(back.seed, scenario.seed);
    assert_eq!(back.topology, scenario.topology);
    // Both prepare to identical overlays.
    let a = scenario.prepare();
    let b = back.prepare();
    assert_eq!(a.net.alive_vs_count(), b.net.alive_vs_count());
    assert_eq!(a.landmarks, b.landmarks);
}
