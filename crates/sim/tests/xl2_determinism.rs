//! The xl2 pipeline's determinism contract at a reduced scale: sharded
//! preparation, the sharded KT-tree build and the landmark-approximate
//! balancing pass are pure functions of the scenario — the worker-thread
//! count only bounds parallelism. The full-scale guarantee (`repro xl2`
//! byte-identical at any `--threads`) is exactly this property at 1M peers.

use proxbal_sim::experiments::{xl2_scale_with, Xl2ScaleOutput, XL2_SPLIT_DEPTH};
use proxbal_sim::shard::build_tree_sharded;
use proxbal_sim::{DistanceMode, Scenario, TopologyKind};
use proxbal_trace::Trace;

/// The xl2 preset scaled down ~1000×: same sharded machinery (8 shards,
/// approximate distances, bounded caches), test-sized everything else.
fn tiny_xl2(seed: u64) -> Scenario {
    Scenario::builder()
        .xl2()
        .peers(1024)
        .topology(TopologyKind::Tiny)
        .landmarks(4)
        .oracle_capacity(16)
        .refine_sources(32)
        .seed(seed)
        .build()
}

/// Serializes the output with every wall-clock zeroed — the only fields
/// allowed to differ between runs.
fn stable_json(mut out: Xl2ScaleOutput) -> String {
    out.prepare_wall_s = 0.0;
    out.tree_wall_s = 0.0;
    out.aware.wall_s = 0.0;
    out.aware.lbi_wall_s = 0.0;
    out.aware.aggregate_wall_s = 0.0;
    out.aware.vsa_wall_s = 0.0;
    out.aware.transfer_wall_s = 0.0;
    serde_json::to_string(&out).expect("serialize xl2 output")
}

#[test]
fn xl2_output_is_byte_identical_across_thread_counts() {
    let base = stable_json(xl2_scale_with(tiny_xl2(3), 1, &mut Trace::disabled()));
    for threads in [2, 8] {
        let run = stable_json(xl2_scale_with(tiny_xl2(3), threads, &mut Trace::disabled()));
        assert_eq!(run, base, "{threads} threads");
    }
}

#[test]
fn xl2_trace_is_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut trace = Trace::enabled("xl2");
        let out = stable_json(xl2_scale_with(tiny_xl2(5), threads, &mut trace));
        (out, trace.to_ndjson())
    };
    let (out1, nd1) = run(1);
    let (out8, nd8) = run(8);
    assert_eq!(out1, out8);
    assert_eq!(nd1, nd8, "trace event stream must not depend on threads");
}

#[test]
fn sharded_prepare_is_thread_count_invariant() {
    let scenario = tiny_xl2(7);
    let a = scenario.prepare_threads(1);
    let b = scenario.prepare_threads(8);
    assert_eq!(a.net.ring().len(), b.net.ring().len());
    assert_eq!(a.net.alive_peers(), b.net.alive_peers());
    for ((pos_a, vs_a), (pos_b, vs_b)) in a.net.ring().iter().zip(b.net.ring().iter()) {
        assert_eq!(pos_a, pos_b);
        assert_eq!(vs_a, vs_b);
    }
    assert_eq!(a.landmarks, b.landmarks);
    let (la, lb) = (
        a.hop_landmarks.as_ref().expect("approximate mode"),
        b.hop_landmarks.as_ref().expect("approximate mode"),
    );
    assert_eq!(la.nodes(), lb.nodes());
    for node in 0..la.nodes() as u32 {
        assert_eq!(la.vector(node), lb.vector(node));
    }
}

#[test]
fn sharded_tree_matches_serial_build_shape() {
    let prepared = tiny_xl2(9).prepare();
    let serial = proxbal_ktree::KTree::build(&prepared.net, 2);
    let sharded = build_tree_sharded(&prepared.net, 2, XL2_SPLIT_DEPTH, 4);
    sharded.check_invariants(&prepared.net).unwrap();
    assert_eq!(sharded.len(), serial.len());
    let key = |t: &proxbal_ktree::KTree| {
        let mut v: Vec<_> = t
            .iter_ids()
            .map(|id| {
                let n = t.node(id);
                (n.region.start().raw(), n.region.len(), n.host, n.depth)
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&sharded), key(&serial));
}

#[test]
fn approximate_mode_still_resolves_heavy_peers() {
    // The scheme trades distance exactness for scale, never correctness of
    // the balancing itself: the approximate run must shed heavy peers just
    // like an exact run does.
    let out = xl2_scale_with(tiny_xl2(11), 2, &mut Trace::disabled());
    assert!(out.aware.heavy_before > 0);
    assert!(
        (out.aware.heavy_after as f64) < 0.2 * out.aware.heavy_before as f64,
        "heavy {} -> {} (expected at least 5x reduction)",
        out.aware.heavy_before,
        out.aware.heavy_after
    );
    assert!(out.aware.transfers > 0);
    // Exact mode from the same scenario differs only in distance_mode; its
    // transfer count and heavy resolution are in the same regime.
    let mut exact = tiny_xl2(11);
    exact.distance_mode = DistanceMode::Exact;
    let exact_out = xl2_scale_with(exact, 2, &mut Trace::disabled());
    assert_eq!(out.aware.heavy_before, exact_out.aware.heavy_before);
    assert!(exact_out.aware.transfers > 0);
}
