//! The tracing subsystem's determinism contract, end to end: for a fixed
//! `(seed, fault plan)` the serialized trace — newline-JSON event log AND
//! chrome://tracing JSON — is **byte-identical** at any thread count, and a
//! disabled collector leaves the experiment results byte-for-byte identical
//! to an untraced run.

use proxbal_sim::experiments::{
    fault_sweep, fault_sweep_traced, fig78_replicated, fig78_replicated_traced, protocol_latency,
    protocol_latency_traced,
};
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_trace::Trace;

fn sweep_scenario() -> Scenario {
    let mut s = Scenario::builder().small().seed(60).build();
    s.peers = 96;
    s.topology = TopologyKind::Tiny;
    s
}

fn fig78_scenario() -> Scenario {
    let mut s = Scenario::builder().small().seed(7).build();
    s.peers = 96;
    s.topology = TopologyKind::Tiny;
    s
}

#[test]
fn fault_sweep_trace_is_byte_identical_across_thread_counts() {
    let s = sweep_scenario();
    let rates = [0.0, 0.05, 0.1];
    let run = |threads: usize| {
        let mut trace = Trace::enabled("faults");
        let rows = fault_sweep_traced(&s, &rates, threads, &mut trace);
        (
            serde_json::to_string(&rows).unwrap(),
            trace.to_ndjson(),
            trace.to_chrome_json(),
        )
    };
    let (rows1, nd1, ch1) = run(1);
    for threads in [2, 8] {
        let (rows, nd, ch) = run(threads);
        assert_eq!(rows, rows1, "rows at {threads} threads");
        assert_eq!(nd, nd1, "ndjson at {threads} threads");
        assert_eq!(ch, ch1, "chrome json at {threads} threads");
    }
    assert!(!nd1.is_empty() && !ch1.is_empty());
}

#[test]
fn fault_sweep_trace_counters_match_row_totals() {
    // The trace's merged counters must reproduce the sweep rows' retry and
    // abandonment accounting — the `--faults` cross-check of the issue.
    let s = sweep_scenario();
    let rates = [0.0, 0.1];
    let mut trace = Trace::enabled("faults");
    let rows = fault_sweep_traced(&s, &rates, 2, &mut trace);
    let retries: usize = rows.iter().map(|r| r.retries).sum();
    let gave_up: usize = rows.iter().map(|r| r.gave_up).sum();
    let messages: usize = rows.iter().map(|r| r.messages).sum();
    let requeued: usize = rows.iter().map(|r| r.requeued).sum();
    assert_eq!(trace.counter("des_retries"), retries as u64);
    assert_eq!(trace.counter("des_gave_up"), gave_up as u64);
    assert_eq!(trace.counter("des_messages"), messages as u64);
    assert_eq!(trace.counter("requeue_requeued"), requeued as u64);
    assert!(retries > 0, "the 10% cell must retry");
}

#[test]
fn traced_and_untraced_fault_sweeps_agree() {
    let s = sweep_scenario();
    let rates = [0.0, 0.08];
    let plain = fault_sweep(&s, &rates, 2);
    let mut trace = Trace::enabled("faults");
    let traced = fault_sweep_traced(&s, &rates, 2, &mut trace);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "tracing must never perturb the experiment"
    );
}

#[test]
fn fig78_trace_is_byte_identical_across_thread_counts() {
    let base = fig78_scenario();
    let run = |threads: usize| {
        let mut trace = Trace::enabled("figure_7");
        let out = fig78_replicated_traced(&base, 3, threads, &mut trace);
        (
            serde_json::to_string(&out).unwrap(),
            trace.to_ndjson(),
            trace.to_chrome_json(),
        )
    };
    let (out1, nd1, ch1) = run(1);
    for threads in [2, 8] {
        let (out, nd, ch) = run(threads);
        assert_eq!(out, out1, "results at {threads} threads");
        assert_eq!(nd, nd1, "ndjson at {threads} threads");
        assert_eq!(ch, ch1, "chrome json at {threads} threads");
    }
    // The merged stream actually has the per-graph aware/ignorant tracks.
    assert!(nd1.contains("graph0/aware"));
    assert!(nd1.contains("graph2/ignorant"));
    assert!(nd1.contains("phase/vst"));
}

#[test]
fn fig78_disabled_trace_changes_nothing_and_records_nothing() {
    let base = fig78_scenario();
    let plain = fig78_replicated(&base, 2, 2);
    let mut disabled = Trace::disabled();
    let traced = fig78_replicated_traced(&base, 2, 2, &mut disabled);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap()
    );
    assert_eq!(disabled.event_count(), 0);
    assert!(disabled.counters().next().is_none());
}

#[test]
fn protocol_latency_trace_is_thread_count_invariant() {
    let run = |threads: usize| {
        let mut trace = Trace::enabled("latency");
        let rows = protocol_latency_traced(&[128], &[2, 8], &[0.0, 0.05], 3, threads, &mut trace);
        (serde_json::to_string(&rows).unwrap(), trace.to_ndjson())
    };
    let (rows1, nd1) = run(1);
    let (rows2, nd2) = run(4);
    assert_eq!(rows1, rows2);
    assert_eq!(nd1, nd2);
    // Spans for both phases landed on the per-cell tracks.
    assert!(nd1.contains("des/aggregation"));
    assert!(nd1.contains("des/dissemination"));
    // And the untraced wrapper returns the same rows.
    let plain = protocol_latency(&[128], &[2, 8], &[0.0, 0.05], 3, 2);
    assert_eq!(serde_json::to_string(&plain).unwrap(), rows1);
}
