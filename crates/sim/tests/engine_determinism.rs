//! The continuous-operation engine's determinism contract, mirroring
//! `trace_determinism.rs`: for a fixed scenario the per-epoch time series —
//! and its trace — are **byte-identical** across repeats, a traced run
//! never perturbs an untraced one, and with every event source disabled the
//! engine degenerates to the one-shot balancer. Plus the builder contract
//! of the `ScenarioBuilder` redesign: presets are deterministic field
//! rewrites over the paper defaults.

use proxbal_core::{DirtySet, Error, LoadBalancer, RoundCache};
use proxbal_ktree::KTree;
use proxbal_sim::churn::ChurnConfig;
use proxbal_sim::drift::DriftConfig;
use proxbal_sim::engine::BALANCE_LABEL;
use proxbal_sim::faults::FaultConfig;
use proxbal_sim::{run_engine, run_engine_traced, EngineConfig, Scenario, TopologyKind};
use proxbal_trace::Trace;

/// A small scenario with every event source on — churn, drift and a lossy
/// fault plan — the combination `repro engine` runs at full scale.
fn stormy() -> Scenario {
    Scenario::builder()
        .small()
        .seed(41)
        .balancer(proxbal_core::BalancerConfig {
            max_splits: 32,
            ..proxbal_core::BalancerConfig::default()
        })
        .churn(ChurnConfig {
            join_rate: 0.2,
            crash_rate: 0.2,
            ..ChurnConfig::default()
        })
        .drift(DriftConfig::default())
        .faults(FaultConfig::with_loss(0.01, 0xE9))
        .build()
}

/// The same scenario with every source off: no churn, no drift, no faults.
fn quiescent() -> Scenario {
    Scenario::builder().small().seed(43).build()
}

fn short(epochs: usize) -> EngineConfig {
    EngineConfig {
        epochs,
        ..EngineConfig::default()
    }
}

#[test]
fn engine_series_and_trace_are_repeat_deterministic() {
    let run = || {
        let mut prepared = stormy().prepare();
        let mut trace = Trace::enabled("engine");
        let report = run_engine_traced(&mut prepared, &short(8), &mut trace).unwrap();
        (
            serde_json::to_string(&report).unwrap(),
            trace.to_ndjson(),
            trace.to_chrome_json(),
        )
    };
    let (report1, nd1, ch1) = run();
    let (report2, nd2, ch2) = run();
    assert_eq!(report1, report2, "per-epoch series must be byte-identical");
    assert_eq!(nd1, nd2, "ndjson trace must be byte-identical");
    assert_eq!(ch1, ch2, "chrome trace must be byte-identical");
    // The trace actually carries the engine's epoch structure.
    assert!(nd1.contains("engine/epoch0"), "per-epoch tracks present");
    assert!(
        nd1.contains("\"engine/epoch\""),
        "epoch summary spans present"
    );
}

#[test]
fn traced_and_untraced_engine_runs_agree() {
    let mut plain_prep = stormy().prepare();
    let plain = run_engine(&mut plain_prep, &short(6)).unwrap();

    let mut traced_prep = stormy().prepare();
    let mut trace = Trace::enabled("engine");
    let traced = run_engine_traced(&mut traced_prep, &short(6), &mut trace).unwrap();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "tracing must never perturb the engine"
    );

    let mut disabled_prep = stormy().prepare();
    let mut disabled = Trace::disabled();
    let silent = run_engine_traced(&mut disabled_prep, &short(6), &mut disabled).unwrap();
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&silent).unwrap()
    );
    assert_eq!(disabled.event_count(), 0);
}

/// With every source off, a single engine epoch is exactly one one-shot
/// balancing round: same moved load, same transfers, same message counts —
/// because the engine replays the one-shot code path
/// ([`LoadBalancer::run_round`] with a cold cache) on the `BALANCE_LABEL`
/// RNG stream.
#[test]
fn quiescent_single_epoch_matches_one_shot_round() {
    let mut engine_prep = quiescent().prepare();
    let report = run_engine(&mut engine_prep, &short(1)).unwrap();
    assert_eq!(report.samples.len(), 1);
    let epoch = &report.samples[0];
    assert!(epoch.balanced, "the final epoch always balances");

    let mut prepared = quiescent().prepare();
    let balancer = LoadBalancer::new(prepared.scenario.balancer);
    let mut tree = KTree::build(&prepared.net, prepared.scenario.balancer.k);
    let mut rng = prepared.derived_rng(BALANCE_LABEL);
    // Field-wise Underlay construction so the oracle borrows coexist with
    // the &mut net/loads the round needs (same split the engine does).
    let underlay = prepared
        .oracle
        .as_ref()
        .map(|oracle| proxbal_core::Underlay {
            oracle,
            latency_oracle: prepared.latency_oracle.as_ref(),
            landmarks: &prepared.landmarks,
            approx: None,
        });
    let one_shot = balancer
        .run_round(
            &mut prepared.net,
            &mut prepared.loads,
            &mut tree,
            underlay,
            &mut RoundCache::new(),
            &DirtySet::All,
            &mut rng,
        )
        .unwrap();

    assert_eq!(epoch.transfers, one_shot.transfers.len());
    assert_eq!(
        epoch.moved,
        proxbal_core::total_moved_load(&one_shot.transfers)
    );
    let msgs = one_shot.messages.lbi_messages
        + one_shot.messages.dissemination_messages
        + one_shot.messages.vsa_record_hops
        + one_shot.messages.vsa_notifications;
    assert_eq!(epoch.messages, msgs);
    assert_eq!(epoch.heavy, one_shot.heavy_after());
    // No sources: no membership events, no stale links, no DES shadow.
    assert_eq!(report.joins + report.crashes + report.stale_links, 0);
    assert_eq!(epoch.des_messages + epoch.des_retries, 0);
}

/// With every source off, later balancing rounds find an already-balanced
/// system and move nothing — the incremental round's cache keeps the report
/// bindings, and without dirt there is nothing to re-report.
#[test]
fn quiescent_engine_settles_after_first_balance() {
    let mut prepared = quiescent().prepare();
    let cfg = EngineConfig {
        epochs: 6,
        balance_interval: 1,
        ..EngineConfig::default()
    };
    let report = run_engine(&mut prepared, &cfg).unwrap();
    assert_eq!(
        report.balances, 6,
        "balance_interval 1 balances every epoch"
    );
    assert_eq!(report.emergencies, 0);
    let first = &report.samples[0];
    assert!(first.moved > 0.0, "the first round does the work");
    assert_eq!(first.heavy, 0);
    for s in &report.samples[1..] {
        assert_eq!(s.moved, 0.0, "epoch {}: moved {}", s.epoch, s.moved);
        assert_eq!(s.transfers, 0);
        assert_eq!(s.heavy, 0);
        assert_eq!(s.alive_peers, report.samples[0].alive_peers);
    }
}

/// The full stormy combination — churn, drift, 1% loss — still ends its
/// last (forced) balancing epoch with zero heavy nodes, and every source
/// actually fired.
#[test]
fn stormy_engine_clears_heavy_by_final_epoch() {
    let mut prepared = stormy().prepare();
    let report = run_engine(&mut prepared, &short(10)).unwrap();
    assert_eq!(report.final_heavy(), 0);
    assert!(report.joins > 0, "churn joins must fire at rate 0.2");
    assert!(report.crashes > 0, "churn crashes must fire at rate 0.2");
    assert!(
        report.stale_links > 0,
        "fault source must inject stale links"
    );
    assert!(report.balances > 0);
    assert!(report.total_moved > 0.0);
    // The DES shadow ran on balancing epochs and saw retries under loss.
    let des: usize = report.samples.iter().map(|s| s.des_messages).sum();
    assert!(des > 0, "DES shadow must run under a fault plan");
    // Membership really changed on the overlay.
    let last = report.samples.last().unwrap();
    assert_eq!(
        last.alive_peers,
        128 + report.joins - report.crashes,
        "alive count must track joins and crashes"
    );
    prepared.net.check_invariants().unwrap();
}

#[test]
fn engine_rejects_invalid_configs() {
    let mut prepared = quiescent().prepare();
    for bad in [
        EngineConfig {
            epochs: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            epoch_len: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            balance_interval: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            maintenance_interval: 0,
            ..EngineConfig::default()
        },
        EngineConfig {
            emergency_threshold: 0.0,
            ..EngineConfig::default()
        },
    ] {
        let err = run_engine(&mut prepared, &bad).unwrap_err();
        assert!(matches!(err, Error::InvalidEngineConfig(_)), "{err}");
    }
}

/// The builder contract that replaced the removed preset constructors:
/// every preset is a plain field rewrite, serializable and reproducible —
/// two builders with the same spelling yield byte-identical scenarios, and
/// each preset pins the documented knobs.
#[test]
fn builder_presets_are_deterministic_field_rewrites() {
    let json = |s: &Scenario| serde_json::to_string(s).unwrap();
    // Same spelling → byte-identical scenario (presets are pure).
    assert_eq!(
        json(&Scenario::builder().seed(5).build()),
        json(&Scenario::builder().seed(5).build())
    );
    assert_eq!(
        json(&Scenario::builder().small().seed(6).build()),
        json(&Scenario::builder().small().seed(6).build())
    );
    assert_eq!(
        json(&Scenario::builder().xl().seed(7).build()),
        json(&Scenario::builder().xl().seed(7).build())
    );
    assert_eq!(
        json(&Scenario::builder().xl2().seed(7).build()),
        json(&Scenario::builder().xl2().seed(7).build())
    );
    // Presets only rewrite their documented knobs on top of the defaults.
    let default = Scenario::builder().seed(9).build();
    let xl = Scenario::builder().xl().seed(9).build();
    assert_eq!(xl.peers, 65_536);
    assert_eq!(xl.topology, TopologyKind::Ts50k);
    assert_eq!(xl.oracle_capacity, proxbal_sim::XL_ORACLE_CAPACITY);
    assert_eq!(xl.distance_mode, default.distance_mode);
    assert_eq!(xl.shards, 0);
    let xl2 = Scenario::builder().xl2().seed(9).build();
    assert_eq!(xl2.peers, 1_048_576);
    assert_eq!(xl2.topology, TopologyKind::Ts50k);
    assert_eq!(xl2.oracle_capacity, proxbal_sim::XL2_ORACLE_CAPACITY);
    assert_eq!(xl2.distance_mode, proxbal_sim::DistanceMode::Approximate);
    assert_eq!(xl2.shards, 8);
    // The oracle_capacity knob flows through prepare(): bounded and
    // unbounded caches build the identical network and landmarks.
    let bounded = Scenario::builder()
        .small()
        .seed(8)
        .oracle_capacity(16)
        .build()
        .prepare();
    let unbounded = Scenario::builder().small().seed(8).build().prepare();
    assert_eq!(bounded.net.alive_vs_count(), unbounded.net.alive_vs_count());
    assert_eq!(bounded.landmarks, unbounded.landmarks);
}
