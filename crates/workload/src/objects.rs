use crate::load::sample_pareto;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One stored object: a DHT key and the load (storage/bandwidth/CPU) it
/// puts on whichever virtual server owns the key.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    /// The object's DHT key (raw 32-bit ring identifier).
    pub key: u32,
    /// The load this object induces on its owner.
    pub load: f64,
}

/// Object-granularity workload generator.
///
/// The paper justifies its Gaussian per-VS load model by noting it "would
/// result if the load of a virtual server is attributed to a large number
/// of small objects it stores and the individual loads on these objects
/// are independent" (§5.1). This generator makes that microfoundation
/// explicit: `objects` objects with keys uniform over the ring and loads
/// drawn from a chosen per-object distribution; the load of a virtual
/// server is the *sum over objects in its region*, so a region owning a
/// fraction `f` of the ring aggregates `≈ objects·f` objects — Gaussian by
/// the CLT for light-tailed object loads, heavy-tailed for Zipf-skewed
/// popularity.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ObjectWorkload {
    /// Number of objects in the system.
    pub objects: usize,
    /// Total system load, split across objects.
    pub total_load: f64,
    /// Per-object load skew.
    pub skew: ObjectSkew,
}

/// How load is distributed across objects.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjectSkew {
    /// Every object carries the same load (the CLT case: per-VS loads come
    /// out Gaussian with mean `μ·f` and standard deviation `∝ √f`).
    Uniform,
    /// Object loads follow a Zipf law with the given exponent over a random
    /// popularity ranking (a few hot objects dominate; per-VS loads become
    /// heavy-tailed like the paper's Pareto model).
    Zipf {
        /// Zipf exponent `s` (≈1 for classic web/content popularity).
        exponent: f64,
    },
    /// Object loads i.i.d. Pareto with the given shape (mean preserved).
    Pareto {
        /// Shape parameter `α > 1`.
        alpha: f64,
    },
}

impl ObjectWorkload {
    /// A uniform-object workload (paper's Gaussian microfoundation).
    pub fn uniform(objects: usize, total_load: f64) -> Self {
        ObjectWorkload {
            objects,
            total_load,
            skew: ObjectSkew::Uniform,
        }
    }

    /// A Zipf-skewed workload.
    pub fn zipf(objects: usize, total_load: f64, exponent: f64) -> Self {
        assert!(exponent > 0.0);
        ObjectWorkload {
            objects,
            total_load,
            skew: ObjectSkew::Zipf { exponent },
        }
    }

    /// Generates the object population. Keys are uniform over the 32-bit
    /// ring; the sum of loads equals `total_load` (exactly for Uniform and
    /// Zipf; in expectation for Pareto).
    pub fn generate<R: Rng>(&self, rng: &mut R) -> Vec<StoredObject> {
        assert!(self.objects > 0, "need at least one object");
        let n = self.objects;
        let mut out = Vec::with_capacity(n);
        match self.skew {
            ObjectSkew::Uniform => {
                let each = self.total_load / n as f64;
                for _ in 0..n {
                    out.push(StoredObject {
                        key: rng.gen(),
                        load: each,
                    });
                }
            }
            ObjectSkew::Zipf { exponent } => {
                // Normalized Zipf weights over a random rank permutation
                // (the object at a random key is equally likely to be any
                // rank).
                let h: f64 = (1..=n).map(|r| (r as f64).powf(-exponent)).sum();
                for r in 1..=n {
                    let w = (r as f64).powf(-exponent) / h;
                    out.push(StoredObject {
                        key: rng.gen(),
                        load: self.total_load * w,
                    });
                }
            }
            ObjectSkew::Pareto { alpha } => {
                let mean = self.total_load / n as f64;
                for _ in 0..n {
                    out.push(StoredObject {
                        key: rng.gen(),
                        load: sample_pareto(mean, alpha, rng),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_objects_sum_to_total() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = ObjectWorkload::uniform(1000, 5000.0);
        let objs = w.generate(&mut rng);
        assert_eq!(objs.len(), 1000);
        let total: f64 = objs.iter().map(|o| o.load).sum();
        assert!((total - 5000.0).abs() < 1e-6);
        assert!(objs.iter().all(|o| (o.load - 5.0).abs() < 1e-12));
    }

    #[test]
    fn zipf_objects_sum_to_total_and_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = ObjectWorkload::zipf(10_000, 1e6, 1.0);
        let objs = w.generate(&mut rng);
        let total: f64 = objs.iter().map(|o| o.load).sum();
        assert!((total - 1e6).abs() < 1e-3);
        let max = objs.iter().map(|o| o.load).fold(0.0f64, f64::max);
        let mean = total / objs.len() as f64;
        assert!(
            max > 50.0 * mean,
            "hot object should dominate: {max} vs {mean}"
        );
    }

    #[test]
    fn pareto_objects_mean_approximately_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = ObjectWorkload {
            objects: 100_000,
            total_load: 1e6,
            skew: ObjectSkew::Pareto { alpha: 2.5 },
        };
        let objs = w.generate(&mut rng);
        let total: f64 = objs.iter().map(|o| o.load).sum();
        assert!((total - 1e6).abs() / 1e6 < 0.05, "total {total}");
    }

    #[test]
    fn keys_cover_the_ring_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = ObjectWorkload::uniform(100_000, 1.0);
        let objs = w.generate(&mut rng);
        // Quarter-ring buckets should each hold ~25%.
        let mut buckets = [0usize; 4];
        for o in &objs {
            buckets[(o.key >> 30) as usize] += 1;
        }
        for &b in &buckets {
            let frac = b as f64 / objs.len() as f64;
            assert!((frac - 0.25).abs() < 0.01, "bucket fraction {frac}");
        }
    }
}
