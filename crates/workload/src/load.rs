use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of virtual-server loads (paper §5.1).
///
/// `μ` ("mu") and `σ` ("sigma") are the mean and standard deviation of the
/// **total system load**; a virtual server owning fraction `f` of the
/// identifier space draws its load from the per-VS marginal:
///
/// * [`LoadModel::Gaussian`] — `N(μ·f, σ·√f)`, truncated at 0. The paper:
///   "the Gaussian distribution would result if the load of a virtual server
///   is attributed to a large number of small objects it stores and the
///   individual loads on these objects are independent."
/// * [`LoadModel::Pareto`] — shape `α = 1.5`, mean `μ·f` (so scale
///   `x_m = μ·f·(α−1)/α`); heavy-tailed with infinite variance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoadModel {
    /// Gaussian per-VS load `N(mu·f, sigma·√f)`, truncated at zero.
    Gaussian {
        /// Mean of the total system load.
        mu: f64,
        /// Standard deviation of the total system load.
        sigma: f64,
    },
    /// Pareto per-VS load with mean `mu·f` and the given shape.
    Pareto {
        /// Mean of the total system load.
        mu: f64,
        /// Shape parameter `α` (the paper uses 1.5; variance is infinite for
        /// `α ≤ 2`).
        alpha: f64,
    },
}

impl LoadModel {
    /// The paper's Gaussian configuration with a chosen total mean and
    /// standard deviation.
    pub fn gaussian(mu: f64, sigma: f64) -> Self {
        assert!(mu > 0.0 && sigma >= 0.0);
        LoadModel::Gaussian { mu, sigma }
    }

    /// The paper's Pareto configuration: `α = 1.5`, total mean `mu`.
    pub fn pareto(mu: f64) -> Self {
        LoadModel::Pareto { mu, alpha: 1.5 }
    }

    /// Samples the load of a virtual server owning `fraction` of the
    /// identifier space. Always non-negative.
    pub fn sample_vs_load<R: Rng>(&self, fraction: f64, rng: &mut R) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        if fraction == 0.0 {
            return 0.0;
        }
        match *self {
            LoadModel::Gaussian { mu, sigma } => {
                let mean = mu * fraction;
                let sd = sigma * fraction.sqrt();
                (mean + sd * sample_gaussian(rng)).max(0.0)
            }
            LoadModel::Pareto { mu, alpha } => {
                let mean = mu * fraction;
                sample_pareto(mean, alpha, rng)
            }
        }
    }

    /// The expected load of a virtual server owning `fraction` of the space
    /// (equals `μ·f` for both models, modulo Gaussian truncation).
    pub fn expected_vs_load(&self, fraction: f64) -> f64 {
        match *self {
            LoadModel::Gaussian { mu, .. } | LoadModel::Pareto { mu, .. } => mu * fraction,
        }
    }
}

/// Standard normal sample via the Box–Muller transform.
pub fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Pareto sample with the given mean and shape, via inverse CDF.
///
/// A Pareto with scale `x_m` and shape `α > 1` has mean `α·x_m/(α−1)`;
/// solving for the scale gives `x_m = mean·(α−1)/α`.
pub fn sample_pareto<R: Rng>(mean: f64, alpha: f64, rng: &mut R) -> f64 {
    assert!(alpha > 1.0, "Pareto mean finite only for alpha > 1");
    assert!(mean >= 0.0);
    let xm = mean * (alpha - 1.0) / alpha;
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    xm / u.powf(1.0 / alpha)
}
