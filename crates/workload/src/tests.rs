use crate::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn gnutella_profile_matches_paper_levels() {
    let p = CapacityProfile::gnutella();
    assert_eq!(p.class_count(), 5);
    for (i, &c) in GNUTELLA_CAPACITIES.iter().enumerate() {
        assert_eq!(p.capacity_of(CapacityClass(i)), c);
    }
}

#[test]
fn gnutella_sampling_matches_weights() {
    let p = CapacityProfile::gnutella();
    let mut rng = StdRng::seed_from_u64(1);
    let n = 200_000;
    let mut counts = [0usize; 5];
    for _ in 0..n {
        counts[p.sample_class(&mut rng).0] += 1;
    }
    for (i, &w) in GNUTELLA_WEIGHTS.iter().enumerate() {
        let observed = counts[i] as f64 / n as f64;
        let tol = (w * (1.0 - w) / n as f64).sqrt() * 6.0 + 1e-4; // ~6σ
        assert!(
            (observed - w).abs() < tol,
            "class {i}: observed {observed:.4} expected {w:.4}"
        );
    }
}

#[test]
fn profile_mean_closed_form() {
    let p = CapacityProfile::gnutella();
    // 1·0.2 + 10·0.45 + 100·0.3 + 1000·0.049 + 10000·0.001 = 93.7
    assert!((p.mean() - 93.7).abs() < 1e-9);
}

#[test]
fn uniform_profile_is_constant() {
    let p = CapacityProfile::uniform(42.0);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..100 {
        assert_eq!(p.sample(&mut rng), 42.0);
    }
    assert_eq!(p.mean(), 42.0);
}

#[test]
#[should_panic(expected = "positive")]
fn profile_rejects_zero_weight() {
    CapacityProfile::new(&[(1.0, 0.0)]);
}

#[test]
fn gaussian_sampler_moments() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 200_000;
    let (mut sum, mut sq) = (0.0, 0.0);
    for _ in 0..n {
        let x = sample_gaussian(&mut rng);
        sum += x;
        sq += x * x;
    }
    let mean = sum / n as f64;
    let var = sq / n as f64 - mean * mean;
    assert!(mean.abs() < 0.02, "mean {mean}");
    assert!((var - 1.0).abs() < 0.03, "variance {var}");
}

#[test]
fn pareto_sampler_mean_and_support() {
    let mut rng = StdRng::seed_from_u64(4);
    let (mean, alpha) = (50.0, 3.0); // finite variance for a stable test
    let xm = mean * (alpha - 1.0) / alpha;
    let n = 400_000;
    let mut sum = 0.0;
    for _ in 0..n {
        let x = sample_pareto(mean, alpha, &mut rng);
        assert!(x >= xm * 0.999, "support starts at x_m");
        sum += x;
    }
    let observed = sum / n as f64;
    assert!(
        (observed - mean).abs() / mean < 0.02,
        "observed mean {observed}, want {mean}"
    );
}

#[test]
fn pareto_alpha_15_is_heavy_tailed() {
    // With α = 1.5 (the paper's choice) large outliers must appear: the
    // 99.9th percentile is x_m·1000^(1/1.5) ≈ 100·x_m.
    let mut rng = StdRng::seed_from_u64(5);
    let mean = 10.0;
    let xm = mean * 0.5 / 1.5;
    let max = (0..100_000)
        .map(|_| sample_pareto(mean, 1.5, &mut rng))
        .fold(0.0f64, f64::max);
    assert!(max > 50.0 * xm, "expected heavy tail, max {max}");
}

#[test]
fn gaussian_vs_load_scales_with_fraction() {
    let model = LoadModel::gaussian(1_000_000.0, 1000.0);
    let mut rng = StdRng::seed_from_u64(6);
    let n = 50_000;
    for f in [1e-4, 1e-3] {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += model.sample_vs_load(f, &mut rng);
        }
        let mean = sum / n as f64;
        let expect = model.expected_vs_load(f);
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "f={f}: mean {mean} expect {expect}"
        );
    }
}

#[test]
fn pareto_vs_load_mean_scales_with_fraction() {
    let model = LoadModel::pareto(1_000_000.0);
    let mut rng = StdRng::seed_from_u64(7);
    // α = 1.5 converges slowly; generous tolerance, large n.
    let n = 2_000_000;
    let f = 1e-3;
    let mut sum = 0.0;
    for _ in 0..n {
        sum += model.sample_vs_load(f, &mut rng);
    }
    let mean = sum / n as f64;
    let expect = model.expected_vs_load(f);
    assert!(
        (mean - expect).abs() / expect < 0.25,
        "mean {mean} expect {expect}"
    );
}

#[test]
fn vs_load_zero_fraction_is_zero() {
    let mut rng = StdRng::seed_from_u64(8);
    assert_eq!(
        LoadModel::gaussian(100.0, 10.0).sample_vs_load(0.0, &mut rng),
        0.0
    );
    assert_eq!(LoadModel::pareto(100.0).sample_vs_load(0.0, &mut rng), 0.0);
}

proptest! {
    #[test]
    fn prop_loads_never_negative(seed: u64, f in 0.0f64..=1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = LoadModel::gaussian(1000.0, 5000.0); // huge σ forces truncation
        prop_assert!(g.sample_vs_load(f, &mut rng) >= 0.0);
        let p = LoadModel::pareto(1000.0);
        prop_assert!(p.sample_vs_load(f, &mut rng) >= 0.0);
    }

    #[test]
    fn prop_profile_sample_is_a_level(seed: u64) {
        let p = CapacityProfile::gnutella();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = p.sample(&mut rng);
        prop_assert!(GNUTELLA_CAPACITIES.contains(&c));
    }

    #[test]
    fn prop_gaussian_finite(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = sample_gaussian(&mut rng);
        prop_assert!(x.is_finite());
    }
}
