//! Workload models from the paper's experiment setup (§5.1):
//!
//! * **Load distributions** ([`LoadModel`]) — the load of a virtual server
//!   owning a fraction `f` of the identifier space is drawn from either a
//!   Gaussian `N(μf, σ√f)` ("…would result if the load of a virtual server
//!   is attributed to a large number of small objects…") or a Pareto with
//!   shape `α = 1.5` and mean `μf` (infinite standard deviation).
//! * **Capacity profile** ([`CapacityProfile`]) — the Gnutella-like profile:
//!   capacities `1, 10, 10², 10³, 10⁴` with probabilities
//!   `20%, 45%, 30%, 4.9%, 0.1%`.
//!
//! All sampling is deterministic given the caller-supplied RNG. `rand_distr`
//! is not among the approved offline dependencies, so the Gaussian
//! (Box–Muller) and Pareto (inverse CDF) samplers are implemented here and
//! verified against their analytic moments in the test suite.

mod capacity;
mod load;
mod objects;

pub use capacity::{CapacityClass, CapacityProfile, GNUTELLA_CAPACITIES, GNUTELLA_WEIGHTS};
pub use load::{sample_gaussian, sample_pareto, LoadModel};
pub use objects::{ObjectSkew, ObjectWorkload, StoredObject};

#[cfg(test)]
mod tests;
