use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's Gnutella-like capacity levels (§5.1).
pub const GNUTELLA_CAPACITIES: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];
/// …and their probabilities: 20%, 45%, 30%, 4.9%, 0.1%.
pub const GNUTELLA_WEIGHTS: [f64; 5] = [0.20, 0.45, 0.30, 0.049, 0.001];

/// Index of a node's capacity class within its profile (0 = weakest).
/// Figures 5 and 6 of the paper group nodes by this class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CapacityClass(pub usize);

/// A discrete node-capacity distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapacityProfile {
    capacities: Vec<f64>,
    /// Cumulative weights, last entry 1.0.
    cumulative: Vec<f64>,
}

impl CapacityProfile {
    /// Builds a profile from `(capacity, weight)` pairs; weights must be
    /// positive and are normalized to sum to 1.
    pub fn new(levels: &[(f64, f64)]) -> Self {
        assert!(!levels.is_empty(), "profile needs at least one level");
        assert!(
            levels.iter().all(|&(c, w)| c > 0.0 && w > 0.0),
            "capacities and weights must be positive"
        );
        let total: f64 = levels.iter().map(|&(_, w)| w).sum();
        let mut cumulative = Vec::with_capacity(levels.len());
        let mut acc = 0.0;
        for &(_, w) in levels {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().unwrap() = 1.0; // kill rounding drift
        CapacityProfile {
            capacities: levels.iter().map(|&(c, _)| c).collect(),
            cumulative,
        }
    }

    /// The paper's Gnutella-like profile.
    pub fn gnutella() -> Self {
        let levels: Vec<(f64, f64)> = GNUTELLA_CAPACITIES
            .iter()
            .zip(GNUTELLA_WEIGHTS.iter())
            .map(|(&c, &w)| (c, w))
            .collect();
        CapacityProfile::new(&levels)
    }

    /// A degenerate profile where every node has the same capacity
    /// (for homogeneity ablations).
    pub fn uniform(capacity: f64) -> Self {
        CapacityProfile::new(&[(capacity, 1.0)])
    }

    /// Number of capacity classes.
    pub fn class_count(&self) -> usize {
        self.capacities.len()
    }

    /// Capacity value of a class.
    pub fn capacity_of(&self, class: CapacityClass) -> f64 {
        self.capacities[class.0]
    }

    /// Samples a capacity class.
    pub fn sample_class<R: Rng>(&self, rng: &mut R) -> CapacityClass {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.capacities.len() - 1);
        CapacityClass(idx)
    }

    /// Samples a capacity value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.capacity_of(self.sample_class(rng))
    }

    /// Mean capacity of the profile.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (c, &cum) in self.capacities.iter().zip(&self.cumulative) {
            mean += c * (cum - prev);
            prev = cum;
        }
        mean
    }
}
