use crate::node_map::KtNodeMap;
use crate::tree::KTree;

/// A commutative, associative combine operation — the shape of every
/// bottom-up aggregation the tree performs (LBI sums/minima, VSA list
/// unions, …).
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Boxed values merge by delegating to the inner value. Large per-node
/// aggregates (VSA rendezvous lists, million-node LBI maps) are boxed so
/// the dense [`KtNodeMap`] slots stay one pointer wide.
impl<T: Merge> Merge for Box<T> {
    fn merge(&mut self, other: Self) {
        (**self).merge(*other);
    }
}

/// Result of a bottom-up aggregation.
#[derive(Clone, Debug)]
pub struct AggregateOutcome<A> {
    /// The value accumulated at the root (`None` if no inputs were offered).
    pub root_value: Option<A>,
    /// Number of upward **message** rounds: the largest
    /// [`message depth`](KTree::message_depths) among contributing KT nodes
    /// (tree edges between nodes planted in the same virtual server cost no
    /// messages). This is the `O(log_K N)` bound the paper states for LBI
    /// aggregation (§3.2).
    pub rounds: u32,
    /// Per-node aggregated values (each KT node's view), including inner
    /// nodes — useful when intermediate values matter (VSA rendezvous).
    pub per_node: KtNodeMap<A>,
    /// Number of in-tree [`Merge::merge`] operations performed by the sweep
    /// — the aggregation *work* (as opposed to `rounds`, its latency).
    pub merges: usize,
}

impl KTree {
    /// Bottom-up aggregation: `inputs` maps KT nodes (typically report
    /// targets of virtual servers) to locally contributed values; parents
    /// merge children level by level until the root.
    pub fn aggregate<A: Merge + Clone>(
        &self,
        inputs: impl Into<KtNodeMap<A>>,
    ) -> AggregateOutcome<A> {
        let mut inputs: KtNodeMap<A> = inputs.into();
        let levels = self.levels();
        // Message rounds: deepest contributing node by inter-VS hop count.
        let depths = self.message_depths();
        let rounds = inputs
            .keys()
            .map(|id| depths.get(id).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let mut merges = 0usize;
        for level in levels.iter().skip(1).rev() {
            for &id in level {
                if let Some(value) = inputs.remove(id) {
                    let parent = self.node(id).parent.expect("non-root has parent");
                    match inputs.get_mut(parent) {
                        Some(acc) => {
                            acc.merge(value.clone());
                            merges += 1;
                        }
                        None => {
                            inputs.insert(parent, value.clone());
                        }
                    }
                    // Keep this node's own aggregated view.
                    inputs.insert(id, value);
                }
            }
        }
        let root_value = inputs.get(self.root()).cloned();
        AggregateOutcome {
            root_value,
            rounds,
            per_node: inputs,
            merges,
        }
    }

    /// Top-down dissemination of a value from the root to every node;
    /// returns the per-node copies and the number of downward message
    /// rounds (the tree's maximum message depth).
    pub fn disseminate<A: Clone>(&self, value: A) -> (KtNodeMap<A>, u32) {
        let mut out = KtNodeMap::with_slot_bound(self.slot_bound());
        for id in self.iter_ids() {
            out.insert(id, value.clone());
        }
        (out, self.max_message_depth())
    }
}
