use crate::node_map::KtNodeMap;
use crate::tree::{KTree, KtNodeId};

/// A commutative, associative combine operation — the shape of every
/// bottom-up aggregation the tree performs (LBI sums/minima, VSA list
/// unions, …).
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Boxed values merge by delegating to the inner value. Large per-node
/// aggregates (VSA rendezvous lists, million-node LBI maps) are boxed so
/// the dense [`KtNodeMap`] slots stay one pointer wide.
impl<T: Merge> Merge for Box<T> {
    fn merge(&mut self, other: Self) {
        (**self).merge(*other);
    }
}

/// Result of a bottom-up aggregation.
#[derive(Clone, Debug)]
pub struct AggregateOutcome<A> {
    /// The value accumulated at the root (`None` if no inputs were offered).
    pub root_value: Option<A>,
    /// Number of upward **message** rounds: the largest
    /// [`message depth`](KTree::message_depths) among contributing KT nodes
    /// (tree edges between nodes planted in the same virtual server cost no
    /// messages). This is the `O(log_K N)` bound the paper states for LBI
    /// aggregation (§3.2).
    pub rounds: u32,
    /// Per-node aggregated values (each KT node's view), including inner
    /// nodes — useful when intermediate values matter (VSA rendezvous).
    pub per_node: KtNodeMap<A>,
    /// Number of in-tree [`Merge::merge`] operations performed by the sweep
    /// — the aggregation *work* (as opposed to `rounds`, its latency).
    pub merges: usize,
}

/// Subtree roots are farmed out to workers once the frontier at the chosen
/// depth is at least this many times the worker count — below that the
/// spawn overhead outweighs the subtrees.
const MIN_SUBTREES_PER_WORKER: usize = 2;

impl KTree {
    /// Bottom-up aggregation: `inputs` maps KT nodes (typically report
    /// targets of virtual servers) to locally contributed values; parents
    /// merge children until the root.
    ///
    /// # Determinism
    ///
    /// Every node's value is the fold of its own input followed by its
    /// contributing children **in ascending arena-slot order** — the exact
    /// association the original level-by-level sweep produced, so outputs
    /// (including floating-point sums) are byte-identical to it. The fold
    /// of a subtree depends only on the subtree, which is what lets
    /// [`KTree::aggregate_with`] evaluate disjoint subtrees on worker
    /// threads and still merge bit-identically.
    pub fn aggregate<A: Merge + Clone>(
        &self,
        inputs: impl Into<KtNodeMap<A>>,
    ) -> AggregateOutcome<A> {
        let inputs: KtNodeMap<A> = inputs.into();
        let rounds = self.aggregate_rounds(&inputs);
        let mut per_node: KtNodeMap<A> = KtNodeMap::with_slot_bound(self.slot_bound());
        let mut merges = 0usize;
        let root_value = self.fold_subtree(self.root(), &inputs, None, &mut per_node, &mut merges);
        Self::keep_stale_inputs(inputs, &mut per_node);
        AggregateOutcome {
            root_value,
            rounds,
            per_node,
            merges,
        }
    }

    /// [`KTree::aggregate`] with an explicit worker-thread count: disjoint
    /// subtrees hanging below a frontier depth are folded in parallel and
    /// their values merged above the frontier in deterministic child-slot
    /// order. The outcome — root value, per-node views, merge count,
    /// rounds — is bit-identical at any `threads`.
    pub fn aggregate_with<A: Merge + Clone + Send + Sync>(
        &self,
        inputs: impl Into<KtNodeMap<A>>,
        threads: usize,
    ) -> AggregateOutcome<A> {
        let inputs: KtNodeMap<A> = inputs.into();
        let frontier = self.parallel_frontier(threads);
        if frontier.is_empty() {
            return self.aggregate(inputs);
        }
        let rounds = self.aggregate_rounds(&inputs);
        let mut per_node: KtNodeMap<A> = KtNodeMap::with_slot_bound(self.slot_bound());
        let mut merges = 0usize;

        // Evaluate each frontier subtree on a worker: pure function of the
        // (read-only) inputs and the subtree, results slotted in frontier
        // order. Each worker's per-node views land in disjoint slots.
        let results = proxbal_parallel::map_items(&frontier, threads, |_, &sub| {
            let mut local: KtNodeMap<A> = KtNodeMap::new();
            let mut local_merges = 0usize;
            let value = self.fold_subtree(sub, &inputs, None, &mut local, &mut local_merges);
            (value, local, local_merges)
        });
        let mut frontier_values: KtNodeMap<A> = KtNodeMap::with_slot_bound(self.slot_bound());
        for (sub, (value, local, local_merges)) in frontier.iter().zip(results) {
            merges += local_merges;
            for (id, v) in local.into_entries() {
                per_node.insert(id, v);
            }
            if let Some(v) = value {
                frontier_values.insert(*sub, v);
            }
        }
        // Finish the top of the tree serially, treating frontier nodes as
        // precomputed leaves.
        let root_value = self.fold_subtree(
            self.root(),
            &inputs,
            Some(&frontier_values),
            &mut per_node,
            &mut merges,
        );
        Self::keep_stale_inputs(inputs, &mut per_node);
        AggregateOutcome {
            root_value,
            rounds,
            per_node,
            merges,
        }
    }

    /// Message rounds: deepest contributing node by inter-VS hop count.
    fn aggregate_rounds<A>(&self, inputs: &KtNodeMap<A>) -> u32 {
        let depths = self.message_depths();
        inputs
            .keys()
            .map(|id| depths.get(id).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Inputs offered under stale handles sit outside the sweep; the level
    /// sweep left them untouched in the per-node view, so the fold keeps
    /// doing the same. (Every *live* node with an input is reachable from
    /// the root and therefore already present in `per_node`.)
    fn keep_stale_inputs<A>(inputs: KtNodeMap<A>, per_node: &mut KtNodeMap<A>) {
        for (id, v) in inputs.into_entries() {
            if !per_node.contains(id) {
                per_node.insert(id, v);
            }
        }
    }

    /// The subtree roots handed to workers: the shallowest level whose
    /// width can keep `threads` workers busy. Empty (= run serially) for a
    /// single worker or a tree too flat to split.
    fn parallel_frontier(&self, threads: usize) -> Vec<KtNodeId> {
        if threads <= 1 {
            return Vec::new();
        }
        let want = threads * MIN_SUBTREES_PER_WORKER;
        let mut level: Vec<KtNodeId> = vec![self.root()];
        for _ in 0..16 {
            let next: Vec<KtNodeId> = level
                .iter()
                .flat_map(|&id| self.sorted_children(id))
                .collect();
            if next.is_empty() {
                return Vec::new(); // tree exhausted before it got wide
            }
            if next.len() >= want {
                return next;
            }
            level = next;
        }
        level
    }

    /// A node's children in ascending arena-slot order — the merge order
    /// the level-by-level sweep established (within a level, nodes are
    /// visited in slot order), kept as the canonical association.
    fn sorted_children(&self, id: KtNodeId) -> Vec<KtNodeId> {
        let mut kids: Vec<KtNodeId> = self.node(id).children.iter().flatten().copied().collect();
        kids.sort_unstable();
        kids
    }

    /// Folds the subtree at `id`: value = own input, then contributing
    /// children in ascending slot order. Each contributing node's view is
    /// recorded in `per_node`; `merges` counts the merge operations. When
    /// `stop_at` is given, nodes present in it are treated as precomputed
    /// leaves (their subtrees were folded by workers).
    fn fold_subtree<A: Merge + Clone>(
        &self,
        id: KtNodeId,
        inputs: &KtNodeMap<A>,
        stop_at: Option<&KtNodeMap<A>>,
        per_node: &mut KtNodeMap<A>,
        merges: &mut usize,
    ) -> Option<A> {
        if let Some(precomputed) = stop_at {
            if let Some(v) = precomputed.get(id) {
                // The worker already recorded the subtree's per-node views.
                return Some(v.clone());
            }
        }
        let mut acc: Option<A> = inputs.get(id).cloned();
        // Children in ascending slot order; binary nodes (the only degree
        // used at scale) order their two slots with one compare instead of
        // a per-node sort allocation.
        let children: &[Option<KtNodeId>] = &self.node(id).children;
        let pair;
        let heap;
        let ordered: &[Option<KtNodeId>] = if let [a, b] = *children {
            pair = match (a, b) {
                (Some(x), Some(y)) if y < x => [Some(y), Some(x)],
                _ => [a, b],
            };
            &pair
        } else {
            heap = self
                .sorted_children(id)
                .into_iter()
                .map(Some)
                .collect::<Vec<_>>();
            heap.as_slice()
        };
        for child in ordered.iter().flatten().copied() {
            if let Some(value) = self.fold_subtree(child, inputs, stop_at, per_node, merges) {
                match acc.as_mut() {
                    Some(a) => {
                        a.merge(value);
                        *merges += 1;
                    }
                    None => acc = Some(value),
                }
            }
        }
        if let Some(v) = acc.as_ref() {
            per_node.insert(id, v.clone());
        }
        acc
    }

    /// Top-down dissemination of a value from the root to every node;
    /// returns the per-node copies and the number of downward message
    /// rounds (the tree's maximum message depth).
    pub fn disseminate<A: Clone>(&self, value: A) -> (KtNodeMap<A>, u32) {
        let mut out = KtNodeMap::with_slot_bound(self.slot_bound());
        for id in self.iter_ids() {
            out.insert(id, value.clone());
        }
        (out, self.max_message_depth())
    }

    /// [`KTree::disseminate`] with an explicit worker-thread count: the
    /// per-node copies are cloned in fixed-size slot chunks on workers.
    /// Identical output at any `threads` — the map is dense and
    /// slot-indexed, so fill order is invisible.
    pub fn disseminate_with<A: Clone + Send + Sync>(
        &self,
        value: A,
        threads: usize,
    ) -> (KtNodeMap<A>, u32) {
        if threads <= 1 {
            return self.disseminate(value);
        }
        let bound = self.slot_bound();
        let mut out = KtNodeMap::with_slot_bound(bound);
        const CHUNK: usize = 1 << 14;
        let live: Vec<bool> = (0..bound)
            .map(|i| self.contains(KtNodeId(i as u32)))
            .collect();
        let chunks = proxbal_parallel::map_chunked(bound, CHUNK, threads, |range| {
            range
                .filter(|&i| live[i])
                .map(|i| (KtNodeId(i as u32), value.clone()))
                .collect::<Vec<_>>()
        });
        for chunk in chunks {
            for (id, v) in chunk {
                out.insert(id, v);
            }
        }
        (out, self.max_message_depth())
    }
}
