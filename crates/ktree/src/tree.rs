use proxbal_chord::{ChordNetwork, VsId};
use proxbal_id::{Arc, Id};
use serde::{Deserialize, Serialize};

/// Handle of a KT node within a [`KTree`] arena. Slots are recycled after
/// pruning, so handles are only meaningful while the node is live.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct KtNodeId(pub u32);

/// Child-pointer storage for a [`KtNode`].
///
/// Binary trees (`k == 2`, the paper's default degree and the only one used
/// at million-peer scale) keep both slots inline in the node; higher degrees
/// fall back to one boxed slice per node. Dereferences to
/// `[Option<KtNodeId>]` either way, so call sites index and iterate it like
/// the plain vector it replaces — without the per-node heap allocation that
/// dominated arena memory at tens of millions of nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KtChildren {
    /// Both child slots of a binary node, stored inline.
    Inline([Option<KtNodeId>; 2]),
    /// `k` child slots for `k != 2`.
    Heap(Box<[Option<KtNodeId>]>),
}

impl KtChildren {
    /// `k` empty child slots, inline when `k == 2`.
    pub fn none(k: usize) -> Self {
        if k == 2 {
            KtChildren::Inline([None, None])
        } else {
            KtChildren::Heap(vec![None; k].into_boxed_slice())
        }
    }
}

impl std::ops::Deref for KtChildren {
    type Target = [Option<KtNodeId>];
    #[inline]
    fn deref(&self) -> &[Option<KtNodeId>] {
        match self {
            KtChildren::Inline(slots) => slots,
            KtChildren::Heap(slots) => slots,
        }
    }
}

impl std::ops::DerefMut for KtChildren {
    #[inline]
    fn deref_mut(&mut self) -> &mut [Option<KtNodeId>] {
        match self {
            KtChildren::Inline(slots) => slots,
            KtChildren::Heap(slots) => slots,
        }
    }
}

// Serialized as the plain sequence of child slots, indistinguishable from
// the `Vec<Option<KtNodeId>>` representation it replaced.
impl Serialize for KtChildren {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl Deserialize for KtChildren {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let slots = Vec::<Option<KtNodeId>>::from_content(content)?;
        Ok(if let [a, b] = slots[..] {
            KtChildren::Inline([a, b])
        } else {
            KtChildren::Heap(slots.into_boxed_slice())
        })
    }
}

/// One node of the K-nary tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KtNode {
    /// The contiguous arc of the identifier space this KT node covers.
    pub region: Arc,
    /// The virtual server this KT node is planted in.
    pub host: VsId,
    /// Children, indexed by which of the K equal parts of `region` they
    /// cover. `None` where the part needs no subtree (it holds at most one
    /// virtual-server position that the node itself already represents, or
    /// none at all).
    pub children: KtChildren,
    /// Parent (`None` for the root).
    pub parent: Option<KtNodeId>,
    /// Distance from the root.
    pub depth: u32,
}

impl KtNode {
    /// True iff the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(Option::is_none)
    }
}

/// Accounting returned by [`KTree::repair`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairStats {
    /// Orphaned subtrees re-attached at their region's slot.
    pub reattached: usize,
    /// Nodes discarded because their region slot was gone or taken.
    pub pruned: usize,
    /// Maintenance rounds needed to stabilize afterwards.
    pub rounds: usize,
}

/// What [`KTree::repair`] did to one orphaned subtree, identified by the
/// KT slot of its root — the per-subtree identity that lets observers
/// (traces, retention gates) follow a subtree across repairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairAction {
    /// Arena slot of the orphan subtree's root.
    pub slot: KtNodeId,
    /// `true` if the subtree was re-attached, `false` if pruned.
    pub reattached: bool,
}

/// The distributed K-nary tree, materialized as an arena.
///
/// `K` is the tree degree (the paper evaluates K = 2 and K = 8). The root
/// covers the full ring anchored at identifier 0 and can be "located
/// deterministically" (§3.1.1).
///
/// # Termination rule (refinement over the paper's wording)
///
/// The paper splits a KT node until its region is "completely covered by
/// that of a virtual server". Taken literally over a 2³²-point ring, a
/// region straddling the ownership boundary between two adjacent virtual
/// servers keeps splitting until a split boundary aligns with the ownership
/// boundary — an expected ~30 extra levels hosted alternately by the same
/// two virtual servers, which breaks the paper's own `O(log_K N)` time
/// bounds. We therefore stop one step earlier: **a KT node is a leaf once
/// its region contains at most one virtual-server position**, and a leaf
/// whose region holds exactly one position is planted in that virtual
/// server. This preserves the paper's stated guarantee — "a KT leaf node
/// will be planted in each virtual server" — with exactly one leaf per
/// virtual server, while keeping both the structural depth and the message
/// depth `O(log_K N)`. Interior nodes are planted at the owner of their
/// region's center point, exactly as in the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KTree {
    k: usize,
    nodes: Vec<Option<KtNode>>,
    free: Vec<u32>,
    root: KtNodeId,
}

impl KTree {
    /// Builds the complete tree for the current state of `net`.
    /// Panics if the network has no virtual servers or `k < 2`.
    ///
    /// ```
    /// use proxbal_chord::ChordNetwork;
    /// use proxbal_ktree::KTree;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let mut net = ChordNetwork::new();
    /// for _ in 0..16 {
    ///     net.join_peer(3, &mut rng);
    /// }
    /// let tree = KTree::build(&net, 2);
    /// tree.check_invariants(&net).unwrap();
    /// // Every virtual server has its own KT leaf, planted in itself.
    /// for (_, vs) in net.ring().iter() {
    ///     assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
    /// }
    /// ```
    pub fn build(net: &ChordNetwork, k: usize) -> Self {
        assert!(k >= 2, "tree degree must be at least 2");
        assert!(
            net.alive_vs_count() > 0,
            "cannot build a tree over an empty DHT"
        );
        let mut tree = Self::with_root(net, k, Self::arena_estimate(net.ring().len()));
        tree.grow_capped(net, tree.root, None);
        tree
    }

    /// Builds only the top of the tree: growth stops at `split_depth`, and
    /// the handles of the still-unexpanded nodes *at* that depth (the
    /// frontier) are returned in ascending slot order. Sharded preparation
    /// expands each frontier region independently via
    /// [`Self::build_fragment`] and splices the results back with
    /// [`Self::graft`]. Slot numbering of the composed arena depends only on
    /// `(net, k, split_depth)` and the graft sequence — never on which
    /// worker built a fragment — and the composed tree is node-for-node the
    /// tree [`Self::build`] produces (same `(region, host, depth)` set, same
    /// structure; only slot numbering differs).
    pub fn build_prefix(net: &ChordNetwork, k: usize, split_depth: u32) -> (Self, Vec<KtNodeId>) {
        let mut tree = Self::with_root(net, k, Self::arena_estimate(net.ring().len()));
        tree.grow_capped(net, tree.root, Some(split_depth));
        let frontier = tree
            .iter_ids()
            .filter(|&id| {
                let node = tree.node(id);
                node.depth == split_depth && !Self::is_leaf_region(net, &node.region)
            })
            .collect();
        (tree, frontier)
    }

    /// Builds a standalone subtree over `region`, rooted at `depth`, grown
    /// exactly as a full [`Self::build`] would have grown it in place. The
    /// fragment's root is always slot 0; splice it into a prefix tree with
    /// [`Self::graft`].
    pub fn build_fragment(net: &ChordNetwork, k: usize, region: Arc, depth: u32) -> Self {
        assert!(k >= 2, "tree degree must be at least 2");
        let mut tree = KTree {
            k,
            nodes: Vec::new(),
            free: Vec::new(),
            root: KtNodeId(0),
        };
        let root = tree.alloc(KtNode {
            region,
            host: Self::host_for(net, &region),
            children: KtChildren::none(k),
            parent: None,
            depth,
        });
        tree.root = root;
        tree.grow_capped(net, root, None);
        tree
    }

    /// Splices a [`Self::build_fragment`] result into this tree at the
    /// unexpanded frontier node `at` (same region, host and depth). The
    /// fragment's non-root nodes are appended to the arena in fragment-slot
    /// order, so the composed layout is a pure function of the graft
    /// sequence — independent of which worker built each fragment.
    pub fn graft(&mut self, at: KtNodeId, fragment: KTree) {
        assert_eq!(self.k, fragment.k, "tree degree mismatch");
        assert!(
            fragment.free.is_empty(),
            "fragment arena must be freshly built"
        );
        assert_eq!(fragment.root.0, 0, "fragment root must be slot 0");
        {
            let stub = self.node(at);
            assert!(stub.is_leaf(), "graft target already has children");
            let froot = fragment.node(fragment.root);
            assert_eq!(froot.region, stub.region, "fragment region mismatch");
            assert_eq!(froot.depth, stub.depth, "fragment depth mismatch");
            assert_eq!(froot.host, stub.host, "fragment host mismatch");
        }
        let base = self.nodes.len() as u32;
        let remap = |id: KtNodeId| {
            if id.0 == 0 {
                at
            } else {
                KtNodeId(base + id.0 - 1)
            }
        };
        for (i, slot) in fragment.nodes.into_iter().enumerate() {
            let mut node = slot.expect("fragment arena is dense");
            for child in node.children.iter_mut() {
                *child = child.map(remap);
            }
            if i == 0 {
                self.nodes[at.0 as usize].as_mut().unwrap().children = node.children;
            } else {
                node.parent = node.parent.map(remap);
                self.nodes.push(Some(node));
            }
        }
    }

    /// Shared constructor: an arena with capacity for `reserve` slots
    /// holding just the root node.
    fn with_root(net: &ChordNetwork, k: usize, reserve: usize) -> Self {
        assert!(k >= 2, "tree degree must be at least 2");
        assert!(
            net.alive_vs_count() > 0,
            "cannot build a tree over an empty DHT"
        );
        let mut tree = KTree {
            k,
            nodes: Vec::with_capacity(reserve),
            free: Vec::new(),
            root: KtNodeId(0),
        };
        let root_region = Arc::full(Id::ZERO);
        let root = tree.alloc(KtNode {
            region: root_region,
            host: Self::host_for(net, &root_region),
            children: KtChildren::none(k),
            parent: None,
            depth: 0,
        });
        tree.root = root;
        tree
    }

    /// Expected arena slots for a tree over `positions` ring positions
    /// (leaves ≈ positions, inner nodes ≈ positions/ln 2 for the binary
    /// case, plus headroom) — reserving up front avoids the transient
    /// doubling reallocation that would briefly hold two multi-hundred-MB
    /// arenas at million-peer scale.
    fn arena_estimate(positions: usize) -> usize {
        positions * 11 / 4 + 16
    }

    /// The virtual server a KT node with `region` is planted in: the sole
    /// virtual server positioned inside the region if there is exactly one,
    /// otherwise the owner of the region's center point.
    fn host_for(net: &ChordNetwork, region: &Arc) -> VsId {
        // Peek at most two entries instead of materializing the region's
        // whole contents — the root's region holds every virtual server.
        let mut inside = net.ring().iter_in(region);
        match (inside.next(), inside.next()) {
            (Some((_, vs)), None) => vs,
            _ => net.ring().owner(region.center()).expect("non-empty ring"),
        }
    }

    /// Whether a node over `region` should be a leaf.
    fn is_leaf_region(net: &ChordNetwork, region: &Arc) -> bool {
        net.ring().count_in_at_most(region, 2) <= 1
    }

    /// Tree degree `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The root handle.
    pub fn root(&self) -> KtNodeId {
        self.root
    }

    /// Number of live KT nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Exclusive upper bound on raw slot indices of live handles — the
    /// arena length, used to size flat per-node vectors
    /// ([`crate::KtNodeMap`], protocol scratch bitsets).
    pub fn slot_bound(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree is empty (never the case after `build`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff `id` names a live node (slots are recycled after pruning).
    pub fn contains(&self, id: KtNodeId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Access a node. Panics on a stale handle.
    pub fn node(&self, id: KtNodeId) -> &KtNode {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("stale KT node handle")
    }

    /// Height of the tree: number of levels (a lone root has height 1).
    pub fn height(&self) -> u32 {
        self.iter_ids()
            .map(|id| self.node(id).depth + 1)
            .max()
            .unwrap_or(0)
    }

    /// Iterates live node handles in arbitrary order.
    pub fn iter_ids(&self) -> impl Iterator<Item = KtNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|_| KtNodeId(i as u32)))
    }

    /// Live node handles grouped by depth, deepest level last.
    pub fn levels(&self) -> Vec<Vec<KtNodeId>> {
        let mut levels: Vec<Vec<KtNodeId>> = Vec::new();
        for id in self.iter_ids() {
            let d = self.node(id).depth as usize;
            if levels.len() <= d {
                levels.resize_with(d + 1, Vec::new);
            }
            levels[d].push(id);
        }
        levels
    }

    /// All leaves.
    pub fn leaves(&self) -> Vec<KtNodeId> {
        self.iter_ids()
            .filter(|&id| self.node(id).is_leaf())
            .collect()
    }

    /// The *report target* of a virtual server: the deepest KT node on the
    /// descent path of the VS's ring position. On a stable tree this is the
    /// unique leaf whose region contains (only) the VS's position, and it
    /// is planted in the VS itself — so "each virtual server reports its LBI
    /// through a KT node planted in it" (§3.2) always holds.
    pub fn report_target(&self, net: &ChordNetwork, vs: VsId) -> KtNodeId {
        let pos = net.vs(vs).position;
        let mut cur = self.root;
        loop {
            let node = self.node(cur);
            let mut advanced = false;
            for i in 0..self.k {
                if node.region.child(i, self.k).contains(pos) {
                    if let Some(child) = node.children[i] {
                        cur = child;
                        advanced = true;
                    }
                    break;
                }
            }
            if !advanced {
                return cur;
            }
        }
    }

    /// Re-runs every KT node's periodic self-check once, against the current
    /// network state: re-plant on a changed owner, prune children whose part
    /// no longer needs a subtree, grow missing children **one level per
    /// round** — new children are checked next round, which is what makes
    /// post-churn repair take `O(log_K N)` rounds, as the paper claims.
    ///
    /// Returns the number of mutations (replants + prunes + grows); `0`
    /// means the tree is stable for the current network.
    pub fn maintain_round(&mut self, net: &ChordNetwork) -> usize {
        let mut mutations = 0;
        let snapshot: Vec<KtNodeId> = self.iter_ids().collect();
        for id in snapshot {
            // The node may have been pruned earlier in this very round.
            if self.nodes[id.0 as usize].is_none() {
                continue;
            }
            let region = self.node(id).region;
            let host = Self::host_for(net, &region);
            if self.node(id).host != host {
                self.nodes[id.0 as usize].as_mut().unwrap().host = host;
                mutations += 1;
            }
            if Self::is_leaf_region(net, &region) {
                // Leaf: prune any children.
                for i in 0..self.k {
                    if let Some(child) = self.node(id).children[i] {
                        self.prune(child);
                        self.nodes[id.0 as usize].as_mut().unwrap().children[i] = None;
                        mutations += 1;
                    }
                }
                continue;
            }
            for i in 0..self.k {
                let part = region.child(i, self.k);
                let needed = !part.is_empty() && net.ring().count_in_at_most(&part, 1) >= 1;
                let existing = self.node(id).children[i];
                match (needed, existing) {
                    (false, Some(child)) => {
                        self.prune(child);
                        self.nodes[id.0 as usize].as_mut().unwrap().children[i] = None;
                        mutations += 1;
                    }
                    (true, None) => {
                        let depth = self.node(id).depth + 1;
                        let child = self.alloc(KtNode {
                            region: part,
                            host: Self::host_for(net, &part),
                            children: KtChildren::none(self.k),
                            parent: Some(id),
                            depth,
                        });
                        self.nodes[id.0 as usize].as_mut().unwrap().children[i] = Some(child);
                        mutations += 1;
                    }
                    _ => {}
                }
            }
        }
        mutations
    }

    /// Runs [`Self::maintain_round`] until stable, returning the number of
    /// rounds needed (0 if already stable). Panics after `limit` rounds.
    pub fn maintain_until_stable(&mut self, net: &ChordNetwork, limit: usize) -> usize {
        for round in 0..limit {
            if self.maintain_round(net) == 0 {
                return round;
            }
        }
        panic!("K-nary tree failed to stabilize within {limit} rounds");
    }

    /// Like [`Self::maintain_until_stable`], but records a `kt/maintain`
    /// span (one virtual-time unit per round) starting at `ts`.
    pub fn maintain_until_stable_traced(
        &mut self,
        net: &ChordNetwork,
        limit: usize,
        ts: proxbal_trace::VirtualTime,
        trace: &mut proxbal_trace::Trace,
    ) -> usize {
        let rounds = self.maintain_until_stable(net, limit);
        trace.span_args(
            "kt/maintain",
            ts,
            rounds as u64,
            &[("rounds", (rounds as u64).into())],
        );
        rounds
    }

    /// Checks structural invariants of a **stable** tree. Used by tests.
    pub fn check_invariants(&self, net: &ChordNetwork) -> Result<(), String> {
        for id in self.iter_ids() {
            let node = self.node(id);
            let host = Self::host_for(net, &node.region);
            if node.host != host {
                return Err(format!(
                    "{id:?} hosted by {:?}, should be {host:?}",
                    node.host
                ));
            }
            if Self::is_leaf_region(net, &node.region) {
                if !node.is_leaf() {
                    return Err(format!("{id:?} should be a leaf"));
                }
                continue;
            }
            for i in 0..self.k {
                let part = node.region.child(i, self.k);
                let needed = !part.is_empty() && net.ring().count_in_at_most(&part, 1) >= 1;
                match node.children[i] {
                    Some(child) => {
                        if !needed {
                            return Err(format!("{id:?} child {i} should be pruned"));
                        }
                        let c = self.node(child);
                        if c.region != part || c.parent != Some(id) || c.depth != node.depth + 1 {
                            return Err(format!("{id:?} child {i} metadata wrong"));
                        }
                    }
                    None => {
                        if needed {
                            return Err(format!("{id:?} child {i} missing"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Simulates a *stale parent pointer*: detaches `child` from its real
    /// parent (which forgets it, as a pruned-and-rebuilt parent would) and
    /// leaves `child.parent` dangling at `stale` — a node that does not list
    /// it as a child. The whole subtree under `child` becomes unreachable
    /// from the root until [`Self::repair`] runs. Panics on the root.
    pub fn inject_stale_parent(&mut self, child: KtNodeId, stale: KtNodeId) {
        assert!(child != self.root, "cannot orphan the root");
        let real = self.node(child).parent.expect("non-root has a parent");
        let parent = self.nodes[real.0 as usize]
            .as_mut()
            .expect("stale KT node handle");
        for slot in parent.children.iter_mut() {
            if *slot == Some(child) {
                *slot = None;
            }
        }
        self.nodes[child.0 as usize].as_mut().unwrap().parent = Some(stale);
    }

    /// Repairs the tree after faults: orphaned subtrees (stale parent
    /// pointers, crashed hosts) are re-attached by the DHT analogue of
    /// "look up the parent's key region" — a root descent to the node whose
    /// region subdivision exactly matches the orphan's region. An orphan
    /// whose slot is gone (the region no longer needs a subtree, or a fresh
    /// duplicate already grew there) is pruned instead; the periodic
    /// maintenance rounds that follow regrow whatever coverage is missing
    /// and re-plant hosts for the current membership. Returns the repair
    /// accounting; panics (via [`Self::maintain_until_stable`]) if the tree
    /// does not stabilize within `limit` rounds.
    pub fn repair(&mut self, net: &ChordNetwork, limit: usize) -> RepairStats {
        self.repair_with_actions(net, limit).0
    }

    /// [`Self::repair`] plus the per-orphan action log: one
    /// [`RepairAction`] per orphan root, in deterministic slot order.
    pub fn repair_with_actions(
        &mut self,
        net: &ChordNetwork,
        limit: usize,
    ) -> (RepairStats, Vec<RepairAction>) {
        // Phase 1: mark everything reachable from the root.
        let mut reachable = vec![false; self.slot_bound()];
        let mut queue = std::collections::VecDeque::new();
        reachable[self.root.0 as usize] = true;
        queue.push_back(self.root);
        while let Some(id) = queue.pop_front() {
            for &child in self.node(id).children.iter().flatten() {
                if !std::mem::replace(&mut reachable[child.0 as usize], true) {
                    queue.push_back(child);
                }
            }
        }

        // Phase 2: orphan roots — unreachable nodes nobody claims as a
        // child (their descendants are claimed, by them). Slot order keeps
        // the repair deterministic.
        let orphan_roots: Vec<KtNodeId> = self
            .iter_ids()
            .filter(|&id| {
                if reachable[id.0 as usize] {
                    return false;
                }
                match self.node(id).parent {
                    None => true,
                    Some(p) => match &self.nodes[p.0 as usize] {
                        None => true, // parent slot itself is gone
                        Some(pn) => !pn.children.contains(&Some(id)),
                    },
                }
            })
            .collect();

        // Phase 3: re-attach each orphan where its region belongs, or prune.
        let mut stats = RepairStats {
            reattached: 0,
            pruned: 0,
            rounds: 0,
        };
        let mut actions = Vec::with_capacity(orphan_roots.len());
        for orphan in orphan_roots {
            let region = self.node(orphan).region;
            let slot = self.lookup_parent_slot(&region).filter(|&(p, i)| {
                reachable[p.0 as usize]
                    && self.node(p).children[i].is_none()
                    && !Self::is_leaf_region(net, &self.node(p).region)
            });
            match slot {
                Some((p, i)) => {
                    self.nodes[p.0 as usize].as_mut().unwrap().children[i] = Some(orphan);
                    self.nodes[orphan.0 as usize].as_mut().unwrap().parent = Some(p);
                    // Fix depths and extend reachability over the subtree.
                    let base = self.node(p).depth + 1;
                    let mut fix = std::collections::VecDeque::new();
                    fix.push_back((orphan, base));
                    while let Some((id, depth)) = fix.pop_front() {
                        self.nodes[id.0 as usize].as_mut().unwrap().depth = depth;
                        reachable[id.0 as usize] = true;
                        for &child in self.node(id).children.iter().flatten() {
                            fix.push_back((child, depth + 1));
                        }
                    }
                    stats.reattached += 1;
                    actions.push(RepairAction {
                        slot: orphan,
                        reattached: true,
                    });
                }
                None => {
                    stats.pruned += self.subtree_len(orphan);
                    self.prune(orphan);
                    actions.push(RepairAction {
                        slot: orphan,
                        reattached: false,
                    });
                }
            }
        }

        // Phase 4: ordinary periodic maintenance converges the rest
        // (replanting, missing coverage, leftover duplicates).
        stats.rounds = self.maintain_until_stable(net, limit);
        (stats, actions)
    }

    /// Like [`Self::repair`], but records a `kt/repair` span (one
    /// virtual-time unit per stabilization round) starting at `ts`, plus
    /// `kt_reattached` / `kt_pruned` counters.
    pub fn repair_traced(
        &mut self,
        net: &ChordNetwork,
        limit: usize,
        ts: proxbal_trace::VirtualTime,
        trace: &mut proxbal_trace::Trace,
    ) -> RepairStats {
        self.repair_traced_with_actions(net, limit, ts, trace).0
    }

    /// [`Self::repair_traced`] plus the per-orphan action log. Each orphan
    /// root additionally records a `kt/repair/orphan` instant carrying its
    /// KT slot and outcome, so a trace consumer can follow an individual
    /// subtree across the run (e.g. a retention gate checking that a
    /// repaired subtree stays attached).
    pub fn repair_traced_with_actions(
        &mut self,
        net: &ChordNetwork,
        limit: usize,
        ts: proxbal_trace::VirtualTime,
        trace: &mut proxbal_trace::Trace,
    ) -> (RepairStats, Vec<RepairAction>) {
        let (stats, actions) = self.repair_with_actions(net, limit);
        trace.span_args(
            "kt/repair",
            ts,
            stats.rounds as u64,
            &[
                ("reattached", stats.reattached.into()),
                ("pruned", stats.pruned.into()),
            ],
        );
        for a in &actions {
            trace.instant_args(
                "kt/repair/orphan",
                ts,
                &[
                    ("slot", u64::from(a.slot.0).into()),
                    ("reattached", a.reattached.into()),
                ],
            );
        }
        trace.count("kt_reattached", stats.reattached as u64);
        trace.count("kt_pruned", stats.pruned as u64);
        (stats, actions)
    }

    /// Root descent to the (node, child-slot) whose region subdivision is
    /// exactly `region` — the DHT-lookup analogue used by [`Self::repair`]
    /// (any peer can locate the root deterministically and walk down by key
    /// region). `None` if the current tree shape has no such slot.
    fn lookup_parent_slot(&self, region: &Arc) -> Option<(KtNodeId, usize)> {
        let pos = region.center();
        let mut cur = self.root;
        loop {
            let node = self.node(cur);
            let mut next = None;
            for i in 0..self.k {
                let part = node.region.child(i, self.k);
                if part == *region {
                    return Some((cur, i));
                }
                if part.contains(pos) {
                    next = node.children[i];
                    break;
                }
            }
            cur = next?;
        }
    }

    /// Number of nodes in the subtree rooted at `id`.
    fn subtree_len(&self, id: KtNodeId) -> usize {
        1 + self
            .node(id)
            .children
            .iter()
            .flatten()
            .map(|&c| self.subtree_len(c))
            .sum::<usize>()
    }

    /// Number of **inter-virtual-server messages** needed to reach each KT
    /// node from the root along tree edges: an edge between KT nodes planted
    /// in the *same* virtual server is free (intra-process). This is the
    /// metric behind the paper's `O(log_K N)` bounds.
    pub fn message_depths(&self) -> crate::KtNodeMap<u32> {
        let mut out = crate::KtNodeMap::with_slot_bound(self.slot_bound());
        let mut queue = std::collections::VecDeque::new();
        out.insert(self.root, 0u32);
        queue.push_back(self.root);
        while let Some(id) = queue.pop_front() {
            let md = out[id];
            let node = self.node(id);
            for &child in node.children.iter().flatten() {
                let hop = u32::from(self.node(child).host != node.host);
                out.insert(child, md + hop);
                queue.push_back(child);
            }
        }
        out
    }

    /// The largest message depth in the tree (`O(log_K N)` in expectation).
    pub fn max_message_depth(&self) -> u32 {
        self.message_depths().values().copied().max().unwrap_or(0)
    }

    /// Full recursive growth (used by `build` and `build_fragment`;
    /// maintenance grows one level per round instead). With
    /// `cap = Some(d)`, nodes at depth `d` are left unexpanded — the
    /// frontier [`Self::build_prefix`] hands to fragment workers.
    fn grow_capped(&mut self, net: &ChordNetwork, id: KtNodeId, cap: Option<u32>) {
        let region = self.node(id).region;
        if Self::is_leaf_region(net, &region) {
            return;
        }
        let depth = self.node(id).depth + 1;
        if cap.is_some_and(|limit| depth > limit) {
            return;
        }
        for i in 0..self.k {
            let part = region.child(i, self.k);
            if part.is_empty() || net.ring().count_in_at_most(&part, 1) == 0 {
                continue;
            }
            let child = self.alloc(KtNode {
                region: part,
                host: Self::host_for(net, &part),
                children: KtChildren::none(self.k),
                parent: Some(id),
                depth,
            });
            self.nodes[id.0 as usize].as_mut().unwrap().children[i] = Some(child);
            self.grow_capped(net, child, cap);
        }
    }

    fn alloc(&mut self, node: KtNode) -> KtNodeId {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = Some(node);
            KtNodeId(slot)
        } else {
            self.nodes.push(Some(node));
            KtNodeId((self.nodes.len() - 1) as u32)
        }
    }

    /// Removes `id` and its whole subtree.
    fn prune(&mut self, id: KtNodeId) {
        let children: Vec<KtNodeId> = self.node(id).children.iter().flatten().copied().collect();
        for c in children {
            self.prune(c);
        }
        self.nodes[id.0 as usize] = None;
        self.free.push(id.0);
    }
}
