use crate::*;
use proptest::prelude::*;
use proxbal_chord::ChordNetwork;
use proxbal_id::{Arc, Id, RING_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn net_with(peers: usize, vs_per_peer: usize, seed: u64) -> (ChordNetwork, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = ChordNetwork::new();
    for _ in 0..peers {
        net.join_peer(vs_per_peer, &mut rng);
    }
    (net, rng)
}

#[test]
fn build_satisfies_invariants() {
    for k in [2usize, 3, 8] {
        let (net, _) = net_with(16, 3, 1);
        let tree = KTree::build(&net, k);
        tree.check_invariants(&net).unwrap();
        assert_eq!(tree.node(tree.root()).region, Arc::full(Id::ZERO));
    }
}

#[test]
fn root_is_planted_at_ring_center_owner() {
    let (net, _) = net_with(8, 2, 2);
    let tree = KTree::build(&net, 2);
    let expect = net.ring().owner(Id::new(1 << 31)).unwrap();
    assert_eq!(tree.node(tree.root()).host, expect);
}

#[test]
fn single_vs_tree_is_just_the_root() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = ChordNetwork::new();
    net.join_peer(1, &mut rng);
    let tree = KTree::build(&net, 2);
    assert_eq!(tree.len(), 1);
    assert!(tree.node(tree.root()).is_leaf());
    assert_eq!(tree.height(), 1);
}

#[test]
fn message_depth_is_logarithmic() {
    // Structural depth degenerates toward 32 around VS boundaries (regions
    // straddling an ownership boundary keep splitting), but all those deep
    // KT nodes share hosts, so the *message* depth — what the paper's
    // O(log_K N) bounds are about — stays logarithmic in the VS count.
    for k in [2usize, 8] {
        let (net, _) = net_with(256, 4, 4); // 1024 VSs
        let tree = KTree::build(&net, k);
        let m = 1024f64;
        // Depth is driven by the closest pair of VS positions: for M uniform
        // positions the minimum gap is ~2³²/M², i.e. ~2·log_K(M) levels.
        let bound = (2.0 * m.log(k as f64)).ceil() as u32 + 6;
        let md = tree.max_message_depth();
        assert!(md <= bound, "k={k}: message depth {md} bound {bound}");
        assert!(
            tree.height() <= bound + 1,
            "k={k}: height {}",
            tree.height()
        );
        // Sanity floor: the tree is genuinely multi-level.
        assert!(md >= m.log(k as f64).floor() as u32 / 2);
    }
}

#[test]
fn every_vs_has_a_report_target_hosted_by_itself() {
    let (net, _) = net_with(64, 5, 5);
    let tree = KTree::build(&net, 2);
    for (_, vs) in net.ring().iter() {
        let target = tree.report_target(&net, vs);
        assert_eq!(
            tree.node(target).host,
            vs,
            "report target of {vs:?} must be planted in it"
        );
    }
}

#[test]
fn report_targets_distinct_per_vs() {
    // Distinct virtual servers must not share a report target (otherwise
    // LBI would be merged prematurely).
    let (net, _) = net_with(32, 3, 6);
    let tree = KTree::build(&net, 2);
    let mut seen = std::collections::HashSet::new();
    for (_, vs) in net.ring().iter() {
        let t = tree.report_target(&net, vs);
        assert!(seen.insert(t), "{t:?} serves two virtual servers");
    }
}

#[test]
fn leaves_hold_at_most_one_vs_position() {
    let (net, _) = net_with(32, 4, 7);
    let tree = KTree::build(&net, 4);
    let mut singleton_leaves = 0;
    for leaf in tree.leaves() {
        let node = tree.node(leaf);
        let inside = net.ring().vss_in(&node.region);
        assert!(inside.len() <= 1, "leaf holds {} positions", inside.len());
        if let [(_, vs)] = inside.as_slice() {
            singleton_leaves += 1;
            assert_eq!(node.host, *vs, "singleton leaf planted in its VS");
        }
    }
    // Exactly one singleton leaf per virtual server.
    assert_eq!(singleton_leaves, net.alive_vs_count());
}

#[test]
fn stable_tree_needs_no_maintenance() {
    let (net, _) = net_with(24, 3, 8);
    let mut tree = KTree::build(&net, 2);
    assert_eq!(tree.maintain_round(&net), 0);
}

#[test]
fn maintenance_rebuilds_after_crash_in_logarithmic_rounds() {
    let (mut net, _) = net_with(64, 4, 9);
    let mut tree = KTree::build(&net, 2);
    // Crash a quarter of the peers.
    for p in net.alive_peers().into_iter().take(16) {
        net.crash_peer(p);
    }
    let rounds = tree.maintain_until_stable(&net, 64);
    assert!(rounds >= 1);
    tree.check_invariants(&net).unwrap();
    // O(log_K N): bounded by the (new) tree height plus a small constant.
    let bound = tree.height() + 2;
    assert!(
        rounds as u32 <= bound,
        "repair took {rounds} rounds, height bound {bound}"
    );
}

#[test]
fn maintenance_tracks_joins() {
    let (mut net, mut rng) = net_with(16, 2, 10);
    let mut tree = KTree::build(&net, 2);
    for _ in 0..16 {
        net.join_peer(2, &mut rng);
    }
    tree.maintain_until_stable(&net, 64);
    tree.check_invariants(&net).unwrap();
    // Every (new) VS must have a self-hosted report target again.
    for (_, vs) in net.ring().iter() {
        assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
    }
}

#[test]
fn maintenance_converges_to_fresh_build() {
    let (mut net, _) = net_with(32, 3, 11);
    let mut tree = KTree::build(&net, 2);
    for p in net.alive_peers().into_iter().take(8) {
        net.crash_peer(p);
    }
    tree.maintain_until_stable(&net, 64);
    let fresh = KTree::build(&net, 2);
    assert_eq!(tree.len(), fresh.len());
    // Same set of (region, host) pairs.
    let key = |t: &KTree| {
        let mut v: Vec<(u32, u64, proxbal_chord::VsId)> = t
            .iter_ids()
            .map(|id| {
                let n = t.node(id);
                (n.region.start().raw(), n.region.len(), n.host)
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&tree), key(&fresh));
}

#[derive(Clone, Debug, PartialEq)]
struct Sum(u64);
impl Merge for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

#[test]
fn aggregate_sums_all_inputs_to_root() {
    let (net, _) = net_with(32, 4, 12);
    let tree = KTree::build(&net, 2);
    let mut inputs = HashMap::new();
    let mut expect = 0u64;
    for (i, (_, vs)) in net.ring().iter().enumerate() {
        let v = (i as u64 + 1) * 7;
        expect += v;
        inputs.insert(tree.report_target(&net, vs), Sum(v));
    }
    let out = tree.aggregate(inputs);
    assert_eq!(out.root_value, Some(Sum(expect)));
    assert!(out.rounds >= 1);
    assert!(out.rounds <= tree.max_message_depth());
    // The root's per-node view equals the total.
    assert_eq!(out.per_node[&tree.root()], Sum(expect));
}

#[test]
fn aggregate_rounds_bounded_by_height() {
    for k in [2usize, 8] {
        let (net, _) = net_with(128, 4, 13);
        let tree = KTree::build(&net, k);
        let inputs: HashMap<KtNodeId, Sum> = net
            .ring()
            .iter()
            .map(|(_, vs)| (tree.report_target(&net, vs), Sum(1)))
            .collect();
        let out = tree.aggregate(inputs);
        assert_eq!(out.root_value, Some(Sum(net.alive_vs_count() as u64)));
        // Message rounds are logarithmic in the VS count, far below the
        // structural height near boundaries.
        let m = net.alive_vs_count() as f64;
        let bound = m.log(k as f64).ceil() as u32 + 8;
        assert!(
            out.rounds <= bound,
            "k={k}: rounds {} bound {bound}",
            out.rounds
        );
    }
}

#[test]
fn aggregate_empty_inputs() {
    let (net, _) = net_with(4, 2, 14);
    let tree = KTree::build(&net, 2);
    let out = tree.aggregate::<Sum>(HashMap::<KtNodeId, Sum>::new());
    assert_eq!(out.root_value, None);
    assert_eq!(out.rounds, 0);
}

#[test]
fn aggregate_partial_inputs_interior_contribution() {
    // Values attached directly to interior nodes (as in the VSA sweep, where
    // unpaired lists propagate from rendezvous nodes) still reach the root.
    let (net, _) = net_with(16, 3, 15);
    let tree = KTree::build(&net, 2);
    let interior = tree
        .iter_ids()
        .find(|&id| !tree.node(id).is_leaf() && id != tree.root())
        .expect("has interior node");
    let mut inputs = HashMap::new();
    inputs.insert(interior, Sum(41));
    inputs.insert(tree.root(), Sum(1));
    let out = tree.aggregate(inputs);
    assert_eq!(out.root_value, Some(Sum(42)));
}

#[test]
fn disseminate_reaches_every_node() {
    let (net, _) = net_with(32, 3, 16);
    let tree = KTree::build(&net, 2);
    let (copies, rounds) = tree.disseminate(7u32);
    assert_eq!(copies.len(), tree.len());
    assert_eq!(rounds, tree.max_message_depth());
    assert!(copies.values().all(|&v| v == 7));
}

/// Concatenation under a separator — associative but **not** commutative,
/// so any deviation from the canonical child-slot merge order shows up.
#[derive(Clone, Debug, PartialEq)]
struct Concat(String);
impl Merge for Concat {
    fn merge(&mut self, other: Self) {
        self.0.push('|');
        self.0.push_str(&other.0);
    }
}

/// The original level-by-level sweep, kept verbatim as the reference the
/// subtree fold must reproduce byte-for-byte (values, per-node views,
/// merge count, rounds).
fn level_sweep_reference<A: Merge + Clone>(
    tree: &KTree,
    inputs: HashMap<KtNodeId, A>,
) -> AggregateOutcome<A> {
    let mut inputs: KtNodeMap<A> = inputs.into();
    let levels = tree.levels();
    let depths = tree.message_depths();
    let rounds = inputs
        .keys()
        .map(|id| depths.get(id).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let mut merges = 0usize;
    for level in levels.iter().skip(1).rev() {
        for &id in level {
            if let Some(value) = inputs.remove(id) {
                let parent = tree.node(id).parent.expect("non-root has parent");
                match inputs.get_mut(parent) {
                    Some(acc) => {
                        acc.merge(value.clone());
                        merges += 1;
                    }
                    None => {
                        inputs.insert(parent, value.clone());
                    }
                }
                inputs.insert(id, value);
            }
        }
    }
    let root_value = inputs.get(tree.root()).cloned();
    AggregateOutcome {
        root_value,
        rounds,
        per_node: inputs,
        merges,
    }
}

/// A churned tree whose arena slots were recycled, so child-slot order no
/// longer coincides with creation order — the case where the fold's
/// explicit per-parent child sort is load-bearing.
fn churned_tree(seed: u64) -> (ChordNetwork, KTree) {
    let (mut net, mut rng) = net_with(48, 3, seed);
    let mut tree = KTree::build(&net, 2);
    for p in net.alive_peers().into_iter().take(12) {
        net.crash_peer(p);
    }
    for _ in 0..8 {
        net.join_peer(2, &mut rng);
    }
    tree.maintain_until_stable(&net, 256);
    tree.check_invariants(&net).unwrap();
    (net, tree)
}

#[test]
fn aggregate_matches_level_sweep_reference_and_is_thread_invariant() {
    for seed in [21u64, 22, 23] {
        let (net, tree) = churned_tree(seed);
        let inputs: HashMap<KtNodeId, Concat> = net
            .ring()
            .iter()
            .enumerate()
            .map(|(i, (_, vs))| (tree.report_target(&net, vs), Concat(format!("v{i}"))))
            .collect();
        let reference = level_sweep_reference(&tree, inputs.clone());
        for threads in [1usize, 2, 3, 8] {
            let out = tree.aggregate_with(inputs.clone(), threads);
            assert_eq!(out.root_value, reference.root_value, "{threads} threads");
            assert_eq!(out.merges, reference.merges, "{threads} threads");
            assert_eq!(out.rounds, reference.rounds, "{threads} threads");
            let got: Vec<_> = out.per_node.iter().map(|(id, v)| (id, v.clone())).collect();
            let want: Vec<_> = reference
                .per_node
                .iter()
                .map(|(id, v)| (id, v.clone()))
                .collect();
            assert_eq!(got, want, "{threads} threads");
        }
    }
}

#[test]
fn aggregate_with_keeps_stale_inputs_like_the_sweep() {
    let (net, tree) = churned_tree(24);
    let mut inputs: HashMap<KtNodeId, Concat> = net
        .ring()
        .iter()
        .take(6)
        .map(|(_, vs)| (tree.report_target(&net, vs), Concat("x".into())))
        .collect();
    // An input under a handle the tree does not contain survives untouched
    // in the per-node view, exactly as the level sweep left it.
    let stale = KtNodeId(tree.slot_bound() as u32 + 7);
    inputs.insert(stale, Concat("stale".into()));
    let reference = level_sweep_reference(&tree, inputs.clone());
    for threads in [1usize, 4] {
        let out = tree.aggregate_with(inputs.clone(), threads);
        assert_eq!(out.per_node.get(stale), Some(&Concat("stale".into())));
        assert_eq!(out.root_value, reference.root_value);
        assert_eq!(out.per_node.len(), reference.per_node.len());
    }
}

#[test]
fn disseminate_with_matches_serial_at_any_thread_count() {
    let (_, tree) = churned_tree(25);
    let (serial, serial_rounds) = tree.disseminate(string_payload());
    for threads in [2usize, 3, 8] {
        let (par, rounds) = tree.disseminate_with(string_payload(), threads);
        assert_eq!(rounds, serial_rounds);
        assert_eq!(par.len(), serial.len());
        let got: Vec<_> = par.iter().map(|(id, v)| (id, v.clone())).collect();
        let want: Vec<_> = serial.iter().map(|(id, v)| (id, v.clone())).collect();
        assert_eq!(got, want, "{threads} threads");
    }
}

fn string_payload() -> String {
    "broadcast-payload".to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_parallel_aggregate_equals_reference(seed in 0u64..2000, threads in 1usize..9) {
        let (net, tree) = churned_tree(seed);
        let inputs: HashMap<KtNodeId, Concat> = net
            .ring()
            .iter()
            .enumerate()
            .map(|(i, (_, vs))| (tree.report_target(&net, vs), Concat(format!("p{i}"))))
            .collect();
        let reference = level_sweep_reference(&tree, inputs.clone());
        let out = tree.aggregate_with(inputs, threads);
        prop_assert_eq!(out.root_value, reference.root_value);
        prop_assert_eq!(out.merges, reference.merges);
        prop_assert_eq!(out.rounds, reference.rounds);
        let got: Vec<_> = out.per_node.iter().map(|(id, v)| (id, v.clone())).collect();
        let want: Vec<_> = reference.per_node.iter().map(|(id, v)| (id, v.clone())).collect();
        prop_assert_eq!(got, want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_tree_invariants_random_networks(seed in 0u64..10_000, k in 2usize..6) {
        let (net, _) = net_with(12, 3, seed);
        let tree = KTree::build(&net, k);
        tree.check_invariants(&net).map_err(TestCaseError::fail)?;
        // Report targets are self-hosted for every VS.
        for (_, vs) in net.ring().iter() {
            prop_assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
        }
    }

    #[test]
    fn prop_leaf_regions_disjoint_and_within_ring(seed in 0u64..10_000) {
        let (net, _) = net_with(10, 2, seed);
        let tree = KTree::build(&net, 2);
        let leaves = tree.leaves();
        // Pairwise disjoint.
        for (i, &a) in leaves.iter().enumerate() {
            for &b in &leaves[i + 1..] {
                let (ra, rb) = (tree.node(a).region, tree.node(b).region);
                prop_assert!(!ra.overlaps(&rb), "{:?} overlaps {:?}", ra, rb);
            }
        }
        // A leaf set plus "implicit" coverage by interior hosts spans the
        // ring: every id is inside *some* node whose host covers it. Sample
        // a few points.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..32 {
            let p = Id::new(rand::Rng::gen(&mut rng));
            let owner = net.ring().owner(p).unwrap();
            // The deepest node on p's descent path must be hosted by a VS
            // whose region contains p (ownership consistency).
            let t = tree.report_target(&net, owner);
            let host = tree.node(t).host;
            prop_assert_eq!(host, owner);
        }
    }

    #[test]
    fn prop_aggregate_total_conserved(seed in 0u64..10_000, k in 2usize..5) {
        let (net, _) = net_with(8, 3, seed);
        let tree = KTree::build(&net, k);
        let mut total = 0u64;
        let mut inputs = HashMap::new();
        let mut x = seed;
        for (_, vs) in net.ring().iter() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = x >> 40;
            total += v;
            inputs.insert(tree.report_target(&net, vs), Sum(v));
        }
        let out = tree.aggregate(inputs);
        prop_assert_eq!(out.root_value, Some(Sum(total)));
    }
}

#[test]
fn stale_parent_orphans_subtree_and_repair_reattaches_it() {
    let (net, _) = net_with(32, 3, 17);
    let mut tree = KTree::build(&net, 2);
    let before = tree.len();
    let victim = tree
        .iter_ids()
        .find(|&id| tree.node(id).depth >= 2 && !tree.node(id).is_leaf())
        .expect("deep interior node");
    tree.inject_stale_parent(victim, tree.root());
    // The orphan no longer answers a root descent for its region.
    assert!(tree
        .iter_ids()
        .filter(|&id| tree.node(id).parent == Some(tree.root()))
        .all(|id| tree.node(tree.root()).children.contains(&Some(id)) || id == victim));
    let stats = tree.repair(&net, 64);
    // Nothing changed in the network, so the subtree slots straight back in.
    assert_eq!(stats.reattached, 1);
    assert_eq!(stats.pruned, 0);
    assert_eq!(tree.len(), before);
    tree.check_invariants(&net).unwrap();
    assert_eq!(
        tree.node(victim).parent.map(|p| tree.node(p).depth + 1),
        Some(tree.node(victim).depth)
    );
}

#[test]
fn repair_prunes_orphan_whose_slot_regrew() {
    let (net, _) = net_with(32, 3, 18);
    let mut tree = KTree::build(&net, 2);
    let victim = tree
        .iter_ids()
        .find(|&id| tree.node(id).depth >= 2 && !tree.node(id).is_leaf())
        .expect("deep interior node");
    tree.inject_stale_parent(victim, tree.root());
    // A maintenance round that runs *before* repair regrows the vacated
    // slot, so the orphan's place is taken and repair must discard it.
    assert!(tree.maintain_round(&net) > 0);
    let stats = tree.repair(&net, 64);
    assert_eq!(stats.reattached, 0);
    assert!(stats.pruned >= 1);
    tree.check_invariants(&net).unwrap();
    let fresh = KTree::build(&net, 2);
    assert_eq!(tree.len(), fresh.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_repair_after_crashes_and_stale_links_restores_coverage(
        seed in 0u64..3000,
        crashes in 1usize..8,
        stale in 0usize..4,
        k in 2usize..5,
    ) {
        let (mut net, mut rng) = net_with(24, 3, seed);
        let mut tree = KTree::build(&net, k);
        // Rewire some deep links to a stale parent (the root), then crash
        // a batch of random peers.
        for _ in 0..stale {
            let candidates: Vec<KtNodeId> = tree
                .iter_ids()
                .filter(|&id| tree.node(id).depth >= 2)
                .collect();
            if let Some(&victim) = candidates
                .get(rand::Rng::gen_range(&mut rng, 0..candidates.len().max(1)))
            {
                tree.inject_stale_parent(victim, tree.root());
            }
        }
        let alive = net.alive_peers();
        for p in alive.into_iter().take(crashes) {
            net.crash_peer(p);
        }
        tree.repair(&net, 256);
        // Well-formed K-nary tree again...
        tree.check_invariants(&net).map_err(TestCaseError::fail)?;
        // ...no orphans: every non-root node is its parent's child...
        for id in tree.iter_ids() {
            match tree.node(id).parent {
                None => prop_assert_eq!(id, tree.root()),
                Some(p) => {
                    prop_assert!(tree.node(p).children.contains(&Some(id)));
                    prop_assert_eq!(tree.node(id).depth, tree.node(p).depth + 1);
                }
            }
        }
        // ...and its leaves cover the live ID space: every live VS has a
        // self-hosted report target (the paper's planting guarantee).
        for (_, vs) in net.ring().iter() {
            prop_assert_eq!(tree.node(tree.report_target(&net, vs)).host, vs);
        }
        // Repair converges to exactly the fresh build.
        let fresh = KTree::build(&net, k);
        prop_assert_eq!(tree.len(), fresh.len());
    }
}

#[test]
fn node_map_clear_and_retain() {
    let mut map = KtNodeMap::with_slot_bound(8);
    for i in 0..6u32 {
        map.insert(KtNodeId(i), i * 10);
    }
    map.retain(|id, v| {
        *v += 1;
        id.0 % 2 == 0
    });
    assert_eq!(map.len(), 3);
    assert_eq!(map.get(KtNodeId(2)), Some(&21));
    assert_eq!(map.get(KtNodeId(3)), None);
    map.clear();
    assert!(map.is_empty());
    assert_eq!(map.get(KtNodeId(2)), None);
}

#[test]
fn split_regions_sum_check() {
    // Guard against a regression where child(i, k) and split(k) disagree for
    // the full ring (the root always splits the full ring).
    let full = Arc::full(Id::ZERO);
    for k in 2..10 {
        let parts = full.split(k);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<u64>(), RING_SIZE);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_maintenance_converges_to_fresh_build_after_mixed_churn(
        seed in 0u64..3000,
        ops in 1usize..25,
        k in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new();
        net.join_peer(3, &mut rng);
        net.join_peer(3, &mut rng);
        let mut tree = KTree::build(&net, k);
        for _ in 0..ops {
            let alive = net.alive_peers();
            match rand::Rng::gen_range(&mut rng, 0..3u8) {
                0 => {
                    net.join_peer(rand::Rng::gen_range(&mut rng, 1..4), &mut rng);
                }
                1 if alive.len() > 2 => {
                    let p = alive[rand::Rng::gen_range(&mut rng, 0..alive.len())];
                    net.crash_peer(p);
                }
                _ if alive.len() >= 2 => {
                    let from = alive[rand::Rng::gen_range(&mut rng, 0..alive.len())];
                    let to = alive[rand::Rng::gen_range(&mut rng, 0..alive.len())];
                    let vss = net.vss_of(from);
                    if !vss.is_empty() && from != to {
                        let v = vss[rand::Rng::gen_range(&mut rng, 0..vss.len())];
                        net.transfer_vs(v, to);
                    }
                }
                _ => {}
            }
            // Interleave partial maintenance (may be incomplete).
            tree.maintain_round(&net);
        }
        // After the dust settles, maintenance must converge to exactly the
        // fresh build (same (region, host) set).
        tree.maintain_until_stable(&net, 256);
        tree.check_invariants(&net).map_err(TestCaseError::fail)?;
        let fresh = KTree::build(&net, k);
        let key = |t: &KTree| {
            let mut v: Vec<(u32, u64, proxbal_chord::VsId)> = t
                .iter_ids()
                .map(|id| {
                    let n = t.node(id);
                    (n.region.start().raw(), n.region.len(), n.host)
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(key(&tree), key(&fresh));
    }
}

/// Multiset of (region, host, depth) — the identity of a tree irrespective
/// of arena slot numbering.
fn shape_key(t: &KTree) -> Vec<(u32, u64, proxbal_chord::VsId, u32)> {
    let mut v: Vec<_> = t
        .iter_ids()
        .map(|id| {
            let n = t.node(id);
            (n.region.start().raw(), n.region.len(), n.host, n.depth)
        })
        .collect();
    v.sort();
    v
}

#[test]
fn prefix_fragment_graft_matches_serial_build() {
    let (net, _) = net_with(96, 4, 7);
    for k in [2usize, 3, 8] {
        let serial = KTree::build(&net, k);
        for split_depth in [0u32, 1, 2, 3, 6] {
            let (mut tree, frontier) = KTree::build_prefix(&net, k, split_depth);
            // Frontier handles come back in ascending slot order.
            assert!(frontier.windows(2).all(|w| w[0] < w[1]));
            for &at in &frontier {
                let (region, depth) = {
                    let stub = tree.node(at);
                    (stub.region, stub.depth)
                };
                let fragment = KTree::build_fragment(&net, k, region, depth);
                tree.graft(at, fragment);
            }
            tree.check_invariants(&net)
                .unwrap_or_else(|e| panic!("k={k} split={split_depth}: {e}"));
            assert_eq!(tree.len(), serial.len(), "k={k} split={split_depth}");
            assert_eq!(shape_key(&tree), shape_key(&serial));
            // The composed tree is stable: maintenance has nothing to do.
            let mut composed = tree.clone();
            assert_eq!(composed.maintain_round(&net), 0);
        }
    }
}

#[test]
fn build_prefix_past_leaves_has_empty_frontier() {
    let (net, _) = net_with(8, 2, 11);
    let serial = KTree::build(&net, 2);
    let (tree, frontier) = KTree::build_prefix(&net, 2, serial.height() + 4);
    assert!(frontier.is_empty());
    assert_eq!(shape_key(&tree), shape_key(&serial));
}

#[test]
fn kt_node_stays_compact() {
    // The 1M-peer run materializes tens of millions of arena slots; the
    // inline child representation must keep each slot within 64 bytes and
    // leave a niche for the arena's Option wrapper.
    assert!(std::mem::size_of::<KtNode>() <= 64);
    assert_eq!(
        std::mem::size_of::<Option<KtNode>>(),
        std::mem::size_of::<KtNode>()
    );
}

#[test]
fn kt_children_serde_roundtrip() {
    let (net, _) = net_with(24, 3, 13);
    for k in [2usize, 5] {
        let tree = KTree::build(&net, k);
        let json = serde_json::to_string(&tree).unwrap();
        let back: KTree = serde_json::from_str(&json).unwrap();
        assert_eq!(shape_key(&back), shape_key(&tree));
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        back.check_invariants(&net).unwrap();
    }
}

#[test]
fn boxed_merge_delegates() {
    #[derive(Clone, Debug, PartialEq)]
    struct Sum(u64);
    impl Merge for Sum {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
    }
    let mut a = Box::new(Sum(3));
    a.merge(Box::new(Sum(4)));
    assert_eq!(*a, Sum(7));
}
