//! The self-organized, fully distributed K-nary tree of paper §3.1.
//!
//! Each tree node (*KT node*) is responsible for a contiguous arc of the
//! DHT's identifier space; the root is responsible for the whole ring. A KT
//! node is *planted* in the virtual server that owns the **center point** of
//! its responsible region. A KT node whose region is completely covered by
//! its hosting virtual server's region is a leaf; otherwise its region is
//! split into `K` equal parts and a child is grown for every part **not**
//! covered by the hosting virtual server.
//!
//! The tree is soft state: [`KTree::maintain_round`] re-runs each KT node's
//! periodic check against the current DHT (re-plant, prune, grow — one level
//! of growth per round), which is how the tree self-repairs in
//! `O(log_K N)` rounds after churn, matching the paper's claim.
//!
//! Aggregation ([`KTree::aggregate`]) and dissemination
//! ([`KTree::disseminate`]) are generic over the value type; `proxbal-core`
//! uses them both for load-balancing information (LBI) and for the bottom-up
//! virtual-server-assignment sweep.

mod aggregate;
mod node_map;
mod tree;

pub use aggregate::{AggregateOutcome, Merge};
pub use node_map::KtNodeMap;
pub use tree::{KTree, KtChildren, KtNode, KtNodeId, RepairAction, RepairStats};

#[cfg(test)]
mod tests;
