use crate::tree::KtNodeId;

/// A dense map from [`KtNodeId`] to `A`, backed by a flat slot vector.
///
/// KT node handles are arena slot indices, so a `Vec<Option<A>>` indexed by
/// the raw slot replaces `HashMap<KtNodeId, A>` everywhere a per-node value
/// travels with a tree: O(1) access with no hashing, one allocation for the
/// whole map, and — load-bearing for reproducibility — **iteration in
/// ascending slot order**, the same deterministic order
/// [`KTree::levels`](crate::KTree::levels) walks, regardless of insertion
/// history.
#[derive(Clone, Debug, Default)]
pub struct KtNodeMap<A> {
    slots: Vec<Option<A>>,
    len: usize,
}

impl<A> KtNodeMap<A> {
    /// An empty map.
    pub fn new() -> Self {
        KtNodeMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// An empty map with room for slots `0..bound` without reallocating
    /// (use [`KTree::slot_bound`](crate::KTree::slot_bound)).
    pub fn with_slot_bound(bound: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(bound, || None);
        KtNodeMap { slots, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&mut self, id: KtNodeId) -> &mut Option<A> {
        let i = id.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        &mut self.slots[i]
    }

    /// Inserts `value` at `id`, returning the previous value if any.
    pub fn insert(&mut self, id: KtNodeId, value: A) -> Option<A> {
        let slot = self.slot(id);
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value at `id`, if present.
    pub fn get(&self, id: KtNodeId) -> Option<&A> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the value at `id`, if present.
    pub fn get_mut(&mut self, id: KtNodeId) -> Option<&mut A> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Removes and returns the value at `id`.
    pub fn remove(&mut self, id: KtNodeId) -> Option<A> {
        let old = self.slots.get_mut(id.0 as usize).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// True iff `id` has a value.
    pub fn contains(&self, id: KtNodeId) -> bool {
        self.get(id).is_some()
    }

    /// Empties the map, keeping its slot allocation — lets one map be
    /// pooled across repeated tree walks (maintenance/repair rounds)
    /// instead of reallocating per round.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    /// Keeps only entries whose `(key, value)` satisfies `keep` — e.g.
    /// dropping entries whose KT node was pruned by a repair.
    pub fn retain(&mut self, mut keep: impl FnMut(KtNodeId, &mut A) -> bool) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let drop = match slot {
                Some(v) => !keep(KtNodeId(i as u32), v),
                None => false,
            };
            if drop {
                *slot = None;
                self.len -= 1;
            }
        }
    }

    /// The value at `id`, inserting `A::default()` first if absent
    /// (the `entry(..).or_default()` idiom).
    pub fn or_default(&mut self, id: KtNodeId) -> &mut A
    where
        A: Default,
    {
        if self.get(id).is_none() {
            self.insert(id, A::default());
        }
        self.get_mut(id).expect("just filled")
    }

    /// Keys in ascending slot order.
    pub fn keys(&self) -> impl Iterator<Item = KtNodeId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| KtNodeId(i as u32)))
    }

    /// Values in ascending key (slot) order.
    pub fn values(&self) -> impl Iterator<Item = &A> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Consumes the map, yielding `(key, value)` pairs in ascending key
    /// (slot) order.
    pub fn into_entries(self) -> impl Iterator<Item = (KtNodeId, A)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (KtNodeId(i as u32), v)))
    }

    /// `(key, value)` pairs in ascending key (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = (KtNodeId, &A)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (KtNodeId(i as u32), v)))
    }
}

impl<A> std::ops::Index<KtNodeId> for KtNodeMap<A> {
    type Output = A;
    fn index(&self, id: KtNodeId) -> &A {
        self.get(id).expect("no value for KT node")
    }
}

impl<A> std::ops::Index<&KtNodeId> for KtNodeMap<A> {
    type Output = A;
    fn index(&self, id: &KtNodeId) -> &A {
        self.get(*id).expect("no value for KT node")
    }
}

impl<A> FromIterator<(KtNodeId, A)> for KtNodeMap<A> {
    fn from_iter<T: IntoIterator<Item = (KtNodeId, A)>>(iter: T) -> Self {
        let mut map = KtNodeMap::new();
        for (id, v) in iter {
            map.insert(id, v);
        }
        map
    }
}

impl<A> From<std::collections::HashMap<KtNodeId, A>> for KtNodeMap<A> {
    fn from(map: std::collections::HashMap<KtNodeId, A>) -> Self {
        map.into_iter().collect()
    }
}
