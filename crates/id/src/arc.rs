use crate::{Id, RING_SIZE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open contiguous region `[start, start + len)` of the identifier
/// ring. `len` ranges over `0 ..= 2^32`, so the empty region and the full ring
/// are distinct values.
///
/// Arcs are the "responsible regions" of the paper: every virtual server owns
/// an arc of the ring, and every K-nary tree node is responsible for an arc
/// that it recursively splits into `K` equal children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Arc {
    start: Id,
    len: u64,
}

impl Arc {
    /// Creates `[start, start + len)`. Panics if `len > 2^32`.
    #[inline]
    pub fn new(start: Id, len: u64) -> Self {
        assert!(len <= RING_SIZE, "arc length {len} exceeds ring size");
        Arc { start, len }
    }

    /// The empty region anchored at `start` (contains nothing).
    #[inline]
    pub const fn empty(start: Id) -> Self {
        Arc { start, len: 0 }
    }

    /// The entire ring, anchored at `start`.
    #[inline]
    pub const fn full(start: Id) -> Self {
        Arc {
            start,
            len: RING_SIZE,
        }
    }

    /// Region from `start` (inclusive) clockwise to `end` (exclusive).
    /// `start == end` yields the **empty** region — use [`Arc::full`] for the
    /// whole ring.
    #[inline]
    pub fn from_bounds(start: Id, end: Id) -> Self {
        Arc {
            start,
            len: start.distance_to(end),
        }
    }

    /// First identifier in the region.
    #[inline]
    pub const fn start(&self) -> Id {
        self.start
    }

    /// One past the last identifier (wraps; equals `start` for empty and full
    /// arcs — disambiguate with [`Arc::len`]).
    #[inline]
    pub const fn end(&self) -> Id {
        self.start.wrapping_add(self.len)
    }

    /// Number of identifiers in the region, in `0 ..= 2^32`.
    #[inline]
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// True iff the region contains no identifier.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff the region is the whole ring.
    #[inline]
    pub const fn is_full(&self) -> bool {
        self.len == RING_SIZE
    }

    /// Fraction of the identifier space covered, in `[0, 1]`.
    #[inline]
    pub fn fraction(&self) -> f64 {
        self.len as f64 / RING_SIZE as f64
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: Id) -> bool {
        self.start.distance_to(id) < self.len
    }

    /// True iff every identifier of `other` is in `self`.
    /// The empty region is covered by everything.
    pub fn covers(&self, other: &Arc) -> bool {
        if other.is_empty() || self.is_full() {
            return true;
        }
        if other.len > self.len {
            return false;
        }
        let offset = self.start.distance_to(other.start);
        offset <= self.len - other.len
    }

    /// True iff the two regions share at least one identifier.
    pub fn overlaps(&self, other: &Arc) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if self.is_full() || other.is_full() {
            return true;
        }
        self.start.distance_to(other.start) < self.len
            || other.start.distance_to(self.start) < other.len
    }

    /// The midpoint of the region: `start + len/2`. This is the "center point"
    /// the paper uses as the DHT key at which a K-nary tree node is planted.
    /// Panics on an empty arc (an empty region has no center).
    #[inline]
    pub fn center(&self) -> Id {
        assert!(!self.is_empty(), "empty arc has no center");
        self.start.wrapping_add(self.len / 2)
    }

    /// Splits the region into `k` consecutive child arcs of (near-)equal
    /// length, in clockwise order. Children partition the parent exactly:
    /// lengths differ by at most 1, earlier children take the remainder.
    ///
    /// This is the K-nary tree partition rule from §3.1 of the paper: "each
    /// KT node's responsible region is partitioned into K equal parts, each
    /// of which is taken by its K children".
    pub fn split(&self, k: usize) -> Vec<Arc> {
        assert!(k >= 1, "cannot split into zero parts");
        let base = self.len / k as u64;
        let rem = self.len % k as u64;
        let mut out = Vec::with_capacity(k);
        let mut cursor = self.start;
        for i in 0..k as u64 {
            let part = base + u64::from(i < rem);
            out.push(Arc::new(cursor, part));
            cursor = cursor.wrapping_add(part);
        }
        out
    }

    /// The `i`-th of `k` children (see [`Arc::split`]) without materializing
    /// the whole vector.
    pub fn child(&self, i: usize, k: usize) -> Arc {
        assert!(k >= 1 && i < k, "child index {i} out of range for k={k}");
        let base = self.len / k as u64;
        let rem = self.len % k as u64;
        let i = i as u64;
        let start_off = base * i + i.min(rem);
        let part = base + u64::from(i < rem);
        Arc::new(self.start.wrapping_add(start_off), part)
    }
}

impl fmt::Debug for Arc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Arc[{:#010x}, {:#010x}; len={}]",
            self.start.raw(),
            self.end().raw(),
            self.len
        )
    }
}

impl fmt::Display for Arc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end())
    }
}
