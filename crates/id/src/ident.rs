use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of the identifier space: 2³² points (the paper uses a 32-bit ring).
pub const RING_SIZE: u64 = 1 << 32;

/// A point on the 32-bit identifier ring.
///
/// `Id` is ordered by its raw value; *ring* comparisons (is `b` on the
/// clockwise path from `a` to `c`?) go through [`Arc`](crate::Arc) instead,
/// because ring order is only meaningful relative to a region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Id(u32);

impl Id {
    /// The zero identifier.
    pub const ZERO: Id = Id(0);
    /// The largest identifier on the ring.
    pub const MAX: Id = Id(u32::MAX);

    /// Wraps a raw 32-bit value as a ring identifier.
    #[inline]
    pub const fn new(v: u32) -> Self {
        Id(v)
    }

    /// Raw 32-bit value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Clockwise (additive) movement along the ring, wrapping modulo 2³².
    #[inline]
    pub const fn wrapping_add(self, delta: u64) -> Self {
        Id(self.0.wrapping_add(delta as u32))
    }

    /// Counter-clockwise movement along the ring.
    #[inline]
    pub const fn wrapping_sub(self, delta: u64) -> Self {
        Id(self.0.wrapping_sub(delta as u32))
    }

    /// Clockwise distance from `self` to `other`: the number of steps needed
    /// to reach `other` travelling in increasing-id direction. Zero iff equal.
    #[inline]
    pub const fn distance_to(self, other: Id) -> u64 {
        other.0.wrapping_sub(self.0) as u64
    }

    /// The point `2^k` past `self` on the ring — the start of Chord finger `k`
    /// (`k` in `0..32`).
    #[inline]
    pub const fn finger_start(self, k: u32) -> Id {
        debug_assert!(k < 32);
        Id(self.0.wrapping_add(1u32 << k))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:#010x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for Id {
    fn from(v: u32) -> Self {
        Id(v)
    }
}

impl From<Id> for u32 {
    fn from(v: Id) -> Self {
        v.0
    }
}
