//! Identifier-space arithmetic for a 32-bit Chord-style ring.
//!
//! The paper (Zhu & Hu, IPDPS 2004, §5.1) evaluates on a Chord simulator with
//! a **32-bit identifier space**. Every other crate in the workspace builds on
//! the two types defined here:
//!
//! * [`Id`] — a point on the ring (a 32-bit identifier). All arithmetic wraps
//!   modulo 2³².
//! * [`Arc`] — a half-open contiguous region `[start, start+len)` of the ring,
//!   the "responsible region" of a virtual server or a K-nary tree node.
//!
//! An [`Arc`] stores its length as a `u64` in `[0, 2^32]` so that the *full
//! ring* and the *empty region* are distinct, unambiguous values — a classic
//! pitfall when regions are stored as `(start, end)` pairs.
//!
//! # Example
//!
//! ```
//! use proxbal_id::{Id, Arc};
//!
//! let region = Arc::new(Id::new(0xF000_0000), 0x2000_0000); // wraps past 0
//! assert!(region.contains(Id::new(0xFFFF_FFFF)));
//! assert!(region.contains(Id::new(0x0000_0001)));
//! assert!(!region.contains(Id::new(0x1000_0000)));
//!
//! let halves = region.split(2);
//! assert_eq!(halves[0].start(), Id::new(0xF000_0000));
//! assert_eq!(halves[1].start(), Id::new(0x0000_0000));
//! ```

mod arc;
mod ident;

pub use arc::Arc;
pub use ident::{Id, RING_SIZE};

#[cfg(test)]
mod tests;
