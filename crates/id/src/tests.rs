use crate::{Arc, Id, RING_SIZE};
use proptest::prelude::*;

#[test]
fn distance_wraps() {
    let a = Id::new(u32::MAX);
    let b = Id::new(2);
    assert_eq!(a.distance_to(b), 3);
    assert_eq!(b.distance_to(a), RING_SIZE - 3);
    assert_eq!(a.distance_to(a), 0);
}

#[test]
fn add_sub_roundtrip() {
    let a = Id::new(0xDEAD_BEEF);
    assert_eq!(a.wrapping_add(17).wrapping_sub(17), a);
    assert_eq!(a.wrapping_add(RING_SIZE), a);
}

#[test]
fn finger_starts() {
    let a = Id::new(0);
    assert_eq!(a.finger_start(0), Id::new(1));
    assert_eq!(a.finger_start(31), Id::new(1 << 31));
    let b = Id::new(u32::MAX);
    assert_eq!(b.finger_start(0), Id::new(0));
}

#[test]
fn empty_and_full_are_distinct() {
    let e = Arc::empty(Id::new(5));
    let f = Arc::full(Id::new(5));
    assert!(e.is_empty() && !e.is_full());
    assert!(f.is_full() && !f.is_empty());
    assert_eq!(e.start(), f.start());
    assert_eq!(e.end(), f.end()); // same representation boundary…
    assert_ne!(e.len(), f.len()); // …but lengths disambiguate
    assert!(!e.contains(Id::new(5)));
    assert!(f.contains(Id::new(5)));
}

#[test]
fn from_bounds_half_open() {
    let r = Arc::from_bounds(Id::new(10), Id::new(20));
    assert_eq!(r.len(), 10);
    assert!(r.contains(Id::new(10)));
    assert!(r.contains(Id::new(19)));
    assert!(!r.contains(Id::new(20)));
    // start == end → empty
    assert!(Arc::from_bounds(Id::new(7), Id::new(7)).is_empty());
}

#[test]
fn contains_across_wrap() {
    let r = Arc::from_bounds(Id::new(0xFFFF_FFF0), Id::new(0x10));
    assert!(r.contains(Id::new(0xFFFF_FFF0)));
    assert!(r.contains(Id::new(0xFFFF_FFFF)));
    assert!(r.contains(Id::new(0)));
    assert!(r.contains(Id::new(0xF)));
    assert!(!r.contains(Id::new(0x10)));
    assert!(!r.contains(Id::new(0x8000_0000)));
}

#[test]
fn covers_basics() {
    let outer = Arc::from_bounds(Id::new(100), Id::new(200));
    let inner = Arc::from_bounds(Id::new(120), Id::new(180));
    assert!(outer.covers(&inner));
    assert!(!inner.covers(&outer));
    assert!(outer.covers(&outer));
    assert!(outer.covers(&Arc::empty(Id::new(0)))); // empty covered by all
    assert!(Arc::full(Id::ZERO).covers(&outer));
    assert!(!outer.covers(&Arc::full(Id::ZERO)));
}

#[test]
fn covers_wraparound() {
    let outer = Arc::from_bounds(Id::new(0xF000_0000), Id::new(0x1000_0000));
    let inner = Arc::from_bounds(Id::new(0xFF00_0000), Id::new(0x0100_0000));
    assert!(outer.covers(&inner));
    // inner straddling outer's end boundary is not covered
    let straddle = Arc::from_bounds(Id::new(0x0F00_0000), Id::new(0x1100_0000));
    assert!(!outer.covers(&straddle));
}

#[test]
fn overlaps_cases() {
    let a = Arc::from_bounds(Id::new(0), Id::new(100));
    let b = Arc::from_bounds(Id::new(50), Id::new(150));
    let c = Arc::from_bounds(Id::new(100), Id::new(200));
    assert!(a.overlaps(&b));
    assert!(b.overlaps(&a));
    assert!(!a.overlaps(&c)); // half-open: touch at 100 is no overlap
    assert!(!a.overlaps(&Arc::empty(Id::new(10))));
    assert!(a.overlaps(&Arc::full(Id::ZERO)));
}

#[test]
fn center_of_regions() {
    assert_eq!(
        Arc::from_bounds(Id::new(3), Id::new(5)).center(),
        Id::new(4)
    );
    // wrapping center
    let r = Arc::from_bounds(Id::new(0xFFFF_FFFE), Id::new(2));
    assert_eq!(r.center(), Id::new(0));
    assert_eq!(Arc::full(Id::ZERO).center(), Id::new(1 << 31));
}

#[test]
#[should_panic(expected = "empty arc has no center")]
fn center_of_empty_panics() {
    let _ = Arc::empty(Id::ZERO).center();
}

#[test]
fn split_partitions_exactly() {
    let r = Arc::from_bounds(Id::new(0), Id::new(10));
    let parts = r.split(3); // 4, 3, 3
    assert_eq!(parts.len(), 3);
    assert_eq!(parts[0].len(), 4);
    assert_eq!(parts[1].len(), 3);
    assert_eq!(parts[2].len(), 3);
    assert_eq!(parts[0].start(), Id::new(0));
    assert_eq!(parts[1].start(), Id::new(4));
    assert_eq!(parts[2].start(), Id::new(7));
    assert_eq!(parts[2].end(), Id::new(10));
}

#[test]
fn split_full_ring() {
    let parts = Arc::full(Id::ZERO).split(2);
    assert_eq!(parts[0].len(), RING_SIZE / 2);
    assert_eq!(parts[1].len(), RING_SIZE / 2);
    assert_eq!(parts[1].start(), Id::new(1 << 31));
}

#[test]
fn child_matches_split() {
    let r = Arc::from_bounds(Id::new(123), Id::new(1001));
    for k in 1..=9 {
        let parts = r.split(k);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(r.child(i, k), *p, "k={k} i={i}");
        }
    }
}

proptest! {
    #[test]
    fn prop_distance_antisymmetric(a: u32, b: u32) {
        let (a, b) = (Id::new(a), Id::new(b));
        if a != b {
            prop_assert_eq!(a.distance_to(b) + b.distance_to(a), RING_SIZE);
        } else {
            prop_assert_eq!(a.distance_to(b), 0);
        }
    }

    #[test]
    fn prop_contains_iff_offset_lt_len(start: u32, len in 0u64..=RING_SIZE, p: u32) {
        let arc = Arc::new(Id::new(start), len);
        let inside = Id::new(start).distance_to(Id::new(p)) < len;
        prop_assert_eq!(arc.contains(Id::new(p)), inside);
    }

    #[test]
    fn prop_split_covers_and_is_disjoint(start: u32, len in 1u64..=RING_SIZE, k in 1usize..10, p: u32) {
        let arc = Arc::new(Id::new(start), len);
        let parts = arc.split(k);
        // total length preserved
        prop_assert_eq!(parts.iter().map(Arc::len).sum::<u64>(), len);
        // membership: p is in the parent iff it is in exactly one child
        let count = parts.iter().filter(|c| c.contains(Id::new(p))).count();
        prop_assert_eq!(count, usize::from(arc.contains(Id::new(p))));
        // children are consecutive
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end(), w[1].start());
        }
        // lengths near-equal
        let min = parts.iter().map(Arc::len).min().unwrap();
        let max = parts.iter().map(Arc::len).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn prop_covers_implies_membership_subset(
        s1: u32, l1 in 0u64..=RING_SIZE, s2: u32, l2 in 0u64..=RING_SIZE, probe: u32
    ) {
        let a = Arc::new(Id::new(s1), l1);
        let b = Arc::new(Id::new(s2), l2);
        if a.covers(&b) && b.contains(Id::new(probe)) {
            prop_assert!(a.contains(Id::new(probe)));
        }
    }

    #[test]
    fn prop_overlap_symmetric(s1: u32, l1 in 0u64..=RING_SIZE, s2: u32, l2 in 0u64..=RING_SIZE) {
        let a = Arc::new(Id::new(s1), l1);
        let b = Arc::new(Id::new(s2), l2);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn prop_center_is_member(start: u32, len in 1u64..=RING_SIZE) {
        let arc = Arc::new(Id::new(start), len);
        prop_assert!(arc.contains(arc.center()));
    }
}
