//! Profiling-layer contracts (DESIGN.md §5c): the virtual-time flamegraph
//! is byte-identical at any thread count, and enabling the profiler or the
//! allocation counter never perturbs a run's deterministic output.

use proxbal_sim::experiments::{fault_sweep_traced, fig4_unit_load};
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_trace::Trace;

#[global_allocator]
static ALLOC: proxbal_profile::CountingAlloc = proxbal_profile::CountingAlloc;

/// A fast fault sweep that exercises parallel workers, per-cell child
/// traces and the repair path — the trace shape the flamegraph folds.
fn sweep_trace(threads: usize) -> Trace {
    let mut s = Scenario::builder().small().seed(60).build();
    s.peers = 96;
    s.topology = TopologyKind::Tiny;
    let mut trace = Trace::enabled("repro");
    fault_sweep_traced(&s, &[0.0, 0.05], threads, &mut trace);
    trace
}

#[test]
fn virtual_time_flamegraph_is_thread_invariant() {
    let artifacts: Vec<(String, String)> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let trace = sweep_trace(threads);
            let folded = proxbal_bench::fold_trace(&trace);
            (
                folded.to_collapsed(),
                folded.to_speedscope("repro (virtual time)"),
            )
        })
        .collect();
    assert!(
        !artifacts[0].0.is_empty(),
        "sweep produced no folded stacks"
    );
    assert_eq!(artifacts[0], artifacts[1], "1 vs 2 threads");
    assert_eq!(artifacts[0], artifacts[2], "1 vs 8 threads");
}

#[test]
fn enabling_profiler_and_counting_does_not_perturb_results() {
    let run = || {
        let mut s = Scenario::builder().small().peers(128).seed(7).build();
        s.topology = TopologyKind::None;
        let mut prepared = s.prepare_threads(2);
        let out = fig4_unit_load(&mut prepared);
        serde_json::to_string(&out).expect("serialize fig4 output")
    };
    let baseline = run();
    proxbal_profile::enable_counting();
    proxbal_profile::enable_profiler();
    let profiled = {
        let _guard = proxbal_profile::phase("perturbation-check");
        run()
    };
    assert_eq!(baseline, profiled);
    let rows = proxbal_profile::report().rows;
    assert!(rows.iter().any(|r| r.name == "perturbation-check"));
    assert!(proxbal_profile::AllocSnapshot::global().allocs > 0);
}
