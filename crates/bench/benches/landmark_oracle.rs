//! Benchmarks the hierarchical (landmark-approximate) distance scheme
//! against the exact oracle on ts5k-large: throughput of bound/estimate
//! queries vs cached exact point queries, the oracle build itself, and —
//! printed once at startup — the filter hit rate: the fraction of random
//! pairs whose triangle-inequality bounds already pin the distance, i.e.
//! the share of transfer-pair queries that never need exact refinement.

use criterion::{criterion_group, criterion_main, Criterion};
use proxbal_topology::{
    select_landmarks, DistanceOracle, LandmarkOracle, TransitStubConfig, TransitStubTopology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn bench_landmark_oracle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let landmarks = select_landmarks(&topo, 15, &mut rng);
    let graph = Arc::new(topo.graph.clone());
    let n = graph.node_count() as u32;
    let oracle = DistanceOracle::new(Arc::clone(&graph));
    let lm = LandmarkOracle::build(&oracle, &landmarks, 1);

    // Random pairs drawn once so every benchmark measures the same queries.
    let pairs: Vec<(u32, u32)> = (0..4096)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();

    // Filter-then-refine hit rate: pairs whose bounds already meet.
    let exact_hits = pairs
        .iter()
        .filter(|&&(a, b)| {
            let (lo, hi) = lm.bounds(a, b);
            lo == hi
        })
        .count();
    eprintln!(
        "landmark filter hit rate: {}/{} random pairs exact from bounds ({:.1}%), {} landmarks, {} bytes resident",
        exact_hits,
        pairs.len(),
        100.0 * exact_hits as f64 / pairs.len() as f64,
        lm.landmarks().len(),
        lm.size_bytes()
    );

    let mut group = c.benchmark_group("landmark_oracle");
    group.sample_size(10);

    group.bench_function("build_15_landmarks", |b| {
        b.iter(|| {
            let fresh = DistanceOracle::new(Arc::clone(&graph));
            std::hint::black_box(LandmarkOracle::build(&fresh, &landmarks, 1))
        });
    });

    group.bench_function("bounds_query", |b| {
        b.iter(|| {
            for &(a, s) in &pairs {
                std::hint::black_box(lm.bounds(a, s));
            }
        });
    });

    group.bench_function("estimate_query", |b| {
        b.iter(|| {
            for &(a, s) in &pairs {
                std::hint::black_box(lm.estimate(a, s));
            }
        });
    });

    // The exact path the approximate scheme displaces: cached rows for
    // every distinct source (the best exact case — no Dijkstra in the
    // timed loop).
    let sources: Vec<u32> = {
        let mut s: Vec<u32> = pairs.iter().map(|&(a, _)| a).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    oracle.precompute(&sources, 1);
    group.bench_function("exact_cached_query", |b| {
        b.iter(|| {
            for &(a, s) in &pairs {
                std::hint::black_box(oracle.distance(a, s));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_landmark_oracle);
criterion_main!(benches);
