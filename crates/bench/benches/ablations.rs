//! Ablation benches for the design choices DESIGN.md calls out:
//! ε (balance-quality knob), rendezvous threshold, Hilbert grid order, and
//! tree degree K. Each variant runs the full balancer so regressions in any
//! phase show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxbal_core::{BalancerConfig, LoadBalancer, ProximityMode, ProximityParams};
use proxbal_sim::{Prepared, Scenario, TopologyKind};

fn prepared() -> Prepared {
    let mut scenario = Scenario::builder().small().seed(17).build();
    scenario.peers = 256;
    scenario.landmarks = 8;
    scenario.topology = TopologyKind::Tiny;
    scenario.prepare()
}

fn run_with(prepared: &Prepared, cfg: BalancerConfig) -> proxbal_core::BalanceReport {
    let mut net = prepared.net.clone();
    let mut loads = prepared.loads.clone();
    let balancer = LoadBalancer::new(cfg);
    let mut rng = prepared.derived_rng(1717);
    let underlay = prepared.underlay();
    balancer
        .run(&mut net, &mut loads, underlay, &mut rng)
        .expect("attached network")
}

fn bench_epsilon(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_epsilon");
    group.sample_size(10);
    for eps in [0.0f64, 0.05, 0.2, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let cfg = BalancerConfig {
                epsilon: eps,
                ..p.scenario.balancer
            };
            b.iter(|| std::hint::black_box(run_with(&p, cfg)));
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_threshold");
    group.sample_size(10);
    for thr in [2usize, 10, 30, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |b, &thr| {
            let cfg = BalancerConfig {
                rendezvous_threshold: thr,
                ..p.scenario.balancer
            };
            b.iter(|| std::hint::black_box(run_with(&p, cfg)));
        });
    }
    group.finish();
}

fn bench_hilbert_order(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_hilbert_bits");
    group.sample_size(10);
    for bits in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let cfg = BalancerConfig {
                mode: ProximityMode::Aware(ProximityParams {
                    bits_per_dim: bits,
                    ..ProximityParams::default()
                }),
                ..p.scenario.balancer
            };
            b.iter(|| std::hint::black_box(run_with(&p, cfg)));
        });
    }
    group.finish();
}

fn bench_tree_degree(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_tree_degree");
    group.sample_size(10);
    for k in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = BalancerConfig {
                k,
                ..p.scenario.balancer
            };
            b.iter(|| std::hint::black_box(run_with(&p, cfg)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_epsilon,
    bench_threshold,
    bench_hilbert_order,
    bench_tree_degree,
    bench_key_dims,
    bench_splitting
);
criterion_main!(benches);

fn bench_key_dims(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_key_dims");
    group.sample_size(10);
    for kd in [1usize, 2, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(kd), &kd, |b, &kd| {
            let cfg = BalancerConfig {
                mode: ProximityMode::Aware(ProximityParams {
                    key_dims: Some(kd),
                    ..ProximityParams::default()
                }),
                ..p.scenario.balancer
            };
            b.iter(|| std::hint::black_box(run_with(&p, cfg)));
        });
    }
    group.finish();
}

fn bench_splitting(c: &mut Criterion) {
    let p = prepared();
    let mut group = c.benchmark_group("ablation_max_splits");
    group.sample_size(10);
    for splits in [0usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(splits),
            &splits,
            |b, &splits| {
                let cfg = BalancerConfig {
                    epsilon: 0.0, // the regime where splitting matters
                    max_splits: splits,
                    ..p.scenario.balancer
                };
                b.iter(|| std::hint::black_box(run_with(&p, cfg)));
            },
        );
    }
    group.finish();
}
