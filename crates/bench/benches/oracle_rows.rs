//! Benchmarks the [`DistanceOracle`] row cache under the three regimes the
//! balancer actually exercises: a cold row fill (Dijkstra + insert), a
//! cached point query (pure lookup), and point queries under eviction
//! pressure — a capacity-bounded cache cycling through more sources than it
//! can hold, so the clock hand keeps evicting and refilling rows.

use criterion::{criterion_group, criterion_main, Criterion};
use proxbal_topology::{DistanceOracle, TransitStubConfig, TransitStubTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn topology() -> TransitStubTopology {
    let mut rng = StdRng::seed_from_u64(42);
    TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng)
}

fn bench_oracle_rows(c: &mut Criterion) {
    let topo = topology();
    let graph = Arc::new(topo.graph.clone());
    let n = graph.node_count() as u32;
    let sources: Vec<u32> = (0..n).step_by((n as usize / 64).max(1)).take(64).collect();

    let mut group = c.benchmark_group("oracle_rows");
    group.sample_size(10);

    group.bench_function("cold_row_fill", |b| {
        b.iter(|| {
            let oracle = DistanceOracle::new(Arc::clone(&graph));
            for &s in &sources[..8] {
                std::hint::black_box(oracle.distance(s, s ^ 1));
            }
        });
    });

    let warm = DistanceOracle::new(Arc::clone(&graph));
    warm.precompute(&sources, 1);
    group.bench_function("cached_point_query", |b| {
        b.iter(|| {
            for &s in &sources {
                std::hint::black_box(warm.distance(s, n - 1 - s));
            }
        });
    });

    // Capacity of 16 rows but 64 distinct sources: every pass evicts and
    // refills rows, measuring the clock sweep + re-Dijkstra path.
    let bounded = DistanceOracle::with_capacity(Arc::clone(&graph), 16);
    group.bench_function("eviction_pressure_query", |b| {
        b.iter(|| {
            for &s in &sources {
                std::hint::black_box(bounded.distance(s, n - 1 - s));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_oracle_rows);
criterion_main!(benches);
