//! Benchmarks the Figure-7/8 pipeline: proximity-aware vs proximity-ignorant
//! balance runs over a transit-stub topology (including landmark-vector
//! computation and Hilbert publication). Figure data comes from
//! `repro --fig 7` / `--fig 8`; this bench compares the *cost* of the two
//! modes.

use criterion::{criterion_group, criterion_main, Criterion};
use proxbal_core::{BalancerConfig, LoadBalancer, ProximityMode, ProximityParams};
use proxbal_sim::{Scenario, TopologyKind};

fn bench_modes(c: &mut Criterion) {
    let mut scenario = Scenario::builder().small().seed(11).build();
    scenario.peers = 512;
    scenario.landmarks = 15;
    scenario.topology = TopologyKind::Ts5kLarge;
    let prepared = scenario.prepare();
    let underlay = prepared.underlay().unwrap();
    // Warm the oracle so both modes see the same cache state.
    let _ = proxbal_sim::experiments::fig78_moved_load(&prepared);

    let mut group = c.benchmark_group("fig7_modes_ts5k_large");
    group.sample_size(10);
    for (name, mode) in [
        ("ignorant", ProximityMode::Ignorant),
        ("aware", ProximityMode::Aware(ProximityParams::default())),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut net = prepared.net.clone();
                let mut loads = prepared.loads.clone();
                let balancer = LoadBalancer::new(BalancerConfig {
                    mode,
                    ..prepared.scenario.balancer
                });
                let mut rng = prepared.derived_rng(7);
                std::hint::black_box(
                    balancer
                        .run(&mut net, &mut loads, Some(underlay), &mut rng)
                        .expect("attached network"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
