//! Benchmarks the tree phases behind the O(log_K N) round claims: tree
//! construction, LBI aggregation and the VSA sweep, for K = 2 and K = 8.
//! Round *counts* come from `repro --claim rounds`; this bench tracks the
//! wall-clock of each phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxbal_core::{ClassifyParams, Lbi};
use proxbal_ktree::KTree;
use proxbal_sim::{Scenario, TopologyKind};
use std::collections::HashMap;

fn bench_phases(c: &mut Criterion) {
    let mut scenario = Scenario::builder().small().seed(13).build();
    scenario.peers = 1024;
    scenario.topology = TopologyKind::None;
    let prepared = scenario.prepare();
    let net = &prepared.net;
    let loads = &prepared.loads;

    let mut group = c.benchmark_group("tree_phases");
    group.sample_size(10);
    for k in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, &k| {
            b.iter(|| std::hint::black_box(KTree::build(net, k)));
        });

        let tree = KTree::build(net, k);
        group.bench_with_input(BenchmarkId::new("lbi_aggregate", k), &k, |b, _| {
            b.iter(|| {
                let mut inputs: HashMap<_, Lbi> = HashMap::new();
                for p in net.alive_peers() {
                    let vs = net.vss_of(p)[0];
                    inputs.insert(tree.report_target(net, vs), loads.node_lbi(net, p));
                }
                std::hint::black_box(tree.aggregate(inputs))
            });
        });

        group.bench_with_input(BenchmarkId::new("vsa_sweep", k), &k, |b, _| {
            let params = ClassifyParams::default();
            let system = loads.totals(net);
            let classification = proxbal_core::Classification::compute(net, loads, &params, system);
            let shed = proxbal_core::reports::shed_candidates(net, loads, &params, &classification);
            let light = proxbal_core::reports::light_slots(net, loads, &params, &classification);
            b.iter(|| {
                let mut rng = prepared.derived_rng(99);
                let inputs =
                    proxbal_core::reports::ignorant_inputs(net, &tree, &shed, &light, &mut rng);
                let vsa_params = proxbal_core::VsaParams::paper(system.min_vs_load);
                std::hint::black_box(proxbal_core::run_vsa(&tree, inputs, &vsa_params))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
