//! Benchmarks the single-source shortest-path kernels behind the distance
//! oracle: the binary-heap baseline (`dijkstra_reference`), the bucket-queue
//! kernel with a fresh allocation per call (`dijkstra`), and the zero-alloc
//! `dijkstra_into` that reuses a [`DijkstraScratch`] across calls — the form
//! the oracle's row fills actually use.
//!
//! Two weight regimes: the hop-cost graph (weights 1/3, well inside the
//! bucket threshold) and the latency graph (Euclidean weights, the regime
//! where the kernel may fall back to the heap).

use criterion::{criterion_group, criterion_main, Criterion};
use proxbal_topology::{DijkstraScratch, Graph, TransitStubConfig, TransitStubTopology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_graph(c: &mut Criterion, name: &str, graph: &Graph) {
    let mut group = c.benchmark_group(format!("dijkstra_{name}"));
    group.sample_size(20);
    // Spread sources over the graph so no kernel wins by cache luck.
    let n = graph.node_count() as u32;
    let sources: Vec<u32> = (0..8).map(|i| i * (n / 8)).collect();

    group.bench_function("heap_reference", |b| {
        b.iter(|| {
            for &src in &sources {
                std::hint::black_box(graph.dijkstra_reference(src));
            }
        });
    });
    group.bench_function("bucket_alloc", |b| {
        b.iter(|| {
            for &src in &sources {
                std::hint::black_box(graph.dijkstra(src));
            }
        });
    });
    group.bench_function("bucket_scratch", |b| {
        let mut scratch = DijkstraScratch::new();
        b.iter(|| {
            for &src in &sources {
                std::hint::black_box(graph.dijkstra_into(src, &mut scratch));
            }
        });
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    bench_graph(c, "ts5k_large_hops", &topo.graph);
    bench_graph(c, "ts5k_large_latency", &topo.latency_graph);
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
