//! Benchmarks the Figure-4 pipeline (full four-phase balance run, Gaussian
//! workload, no underlay) across overlay sizes. The *data* for Figure 4 is
//! produced by `cargo run -p proxbal-bench --bin repro -- --fig 4`; this
//! bench tracks how fast the balancer itself is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxbal_core::LoadBalancer;
use proxbal_sim::{Scenario, TopologyKind};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_balance_run");
    group.sample_size(10);
    for peers in [256usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            let mut scenario = Scenario::builder().small().seed(7).build();
            scenario.peers = peers;
            scenario.topology = TopologyKind::None;
            let prepared = scenario.prepare();
            b.iter(|| {
                let mut net = prepared.net.clone();
                let mut loads = prepared.loads.clone();
                let balancer = LoadBalancer::new(prepared.scenario.balancer);
                let mut rng = prepared.derived_rng(4);
                std::hint::black_box(
                    balancer
                        .run(&mut net, &mut loads, None, &mut rng)
                        .expect("attached network"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
