//! Benchmarks the parallel kernels *inside* a balancing round — the hot
//! per-peer loops the `--threads` knob accelerates: node classification,
//! shed-candidate/light-slot extraction, and the complete proximity-aware
//! four-phase round. Each kernel runs at 1 and 8 worker threads so the
//! scaling (and the fixed-chunk merge overhead at 1 thread) is visible in
//! one report. Outputs are byte-identical across thread counts — the
//! determinism tests pin that — so these benches measure pure wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use proxbal_core::reports::{light_slots_with, shed_candidates_with};
use proxbal_core::{
    BalancerConfig, Classification, ClassifyParams, LoadBalancer, ProximityMode, ProximityParams,
    RoundWalls, Underlay,
};
use proxbal_ktree::KTree;
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_trace::Trace;

const THREAD_COUNTS: [usize; 2] = [1, 8];

fn bench_round_kernels(c: &mut Criterion) {
    let mut scenario = Scenario::builder().small().seed(7).build();
    scenario.peers = 4096;
    scenario.topology = TopologyKind::Ts5kSmall;
    let prepared = scenario.prepare();
    let params = ClassifyParams {
        epsilon: prepared.scenario.balancer.epsilon,
    };
    let system = prepared.loads.totals(&prepared.net);

    let mut group = c.benchmark_group("round_kernels");
    group.sample_size(20);

    for threads in THREAD_COUNTS {
        group.bench_function(format!("classify_t{threads}"), |b| {
            b.iter(|| {
                std::hint::black_box(Classification::compute_with(
                    &prepared.net,
                    &prepared.loads,
                    &params,
                    system,
                    threads,
                ))
            });
        });
    }

    let classification =
        Classification::compute_with(&prepared.net, &prepared.loads, &params, system, 1);
    for threads in THREAD_COUNTS {
        group.bench_function(format!("shed_and_light_t{threads}"), |b| {
            b.iter(|| {
                let shed = shed_candidates_with(
                    &prepared.net,
                    &prepared.loads,
                    &params,
                    &classification,
                    threads,
                );
                let light = light_slots_with(
                    &prepared.net,
                    &prepared.loads,
                    &params,
                    &classification,
                    threads,
                );
                std::hint::black_box((shed, light))
            });
        });
    }

    // The complete proximity-aware round (all four phases, exact transfer
    // distances — the refinement path) from a cloned initial state. One
    // untimed warm-up round first: the prepared oracle caches distance rows
    // across calls, so without it the first thread count measured would pay
    // every Dijkstra fill and the later ones would ride its warm cache.
    let aware_round = |threads: usize| {
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let underlay = Underlay {
            oracle: prepared.oracle.as_ref().expect("topology present"),
            latency_oracle: prepared.latency_oracle.as_ref(),
            landmarks: &prepared.landmarks,
            approx: None,
        };
        let cfg = BalancerConfig {
            mode: ProximityMode::Aware(ProximityParams::default()),
            ..prepared.scenario.balancer
        };
        let mut tree = KTree::build(&net, cfg.k);
        let mut rng = prepared.derived_rng(78);
        let mut walls = RoundWalls::default();
        LoadBalancer::new(cfg)
            .with_threads(threads)
            .run_with_tree_walls(
                &mut net,
                &mut loads,
                &mut tree,
                Some(underlay),
                &mut rng,
                &mut Trace::disabled(),
                &mut walls,
            )
            .expect("attached network")
    };
    std::hint::black_box(aware_round(1));
    for threads in THREAD_COUNTS {
        group.bench_function(format!("aware_round_t{threads}"), |b| {
            b.iter(|| std::hint::black_box(aware_round(threads)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_kernels);
criterion_main!(benches);
