//! Micro-benchmarks of the substrates: Chord lookups, ring ownership,
//! Hilbert encode/decode, Dijkstra, shed-set selection and rendezvous
//! pairing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proxbal_chord::{ChordNetwork, PrefixRouting, RoutingState};
use proxbal_hilbert::HilbertCurve;
use proxbal_id::Id;
use proxbal_topology::{TransitStubConfig, TransitStubTopology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_chord(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let mut net = ChordNetwork::new();
    for _ in 0..512 {
        net.join_peer(5, &mut rng);
    }
    let routing = RoutingState::build(&net);
    let sources: Vec<_> = net.ring().iter().map(|(_, v)| v).collect();

    let mut group = c.benchmark_group("chord");
    group.bench_function("ring_owner", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B9);
            std::hint::black_box(net.ring().owner(Id::new(i)))
        });
    });
    group.bench_function("iterative_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let from = sources[i % sources.len()];
            let key = Id::new((i as u32).wrapping_mul(0x9E3779B9));
            std::hint::black_box(routing.lookup(&net, from, key))
        });
    });
    group.bench_function("routing_build_2560_vss", |b| {
        b.iter(|| std::hint::black_box(RoutingState::build(&net)));
    });
    let prefix = PrefixRouting::build(&net);
    group.bench_function("prefix_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let from = sources[i % sources.len()];
            let key = Id::new((i as u32).wrapping_mul(0x9E3779B9));
            std::hint::black_box(prefix.lookup(&net, from, key))
        });
    });
    group.bench_function("prefix_build_2560_vss", |b| {
        b.iter(|| std::hint::black_box(PrefixRouting::build(&net)));
    });
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let curve = HilbertCurve::new(15, 2); // the paper's configuration
    let mut group = c.benchmark_group("hilbert_15d");
    group.bench_function("encode", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let p: Vec<u32> = (0..15).map(|d| (i >> d) & 3).collect();
            std::hint::black_box(curve.encode(&p))
        });
    });
    group.bench_function("decode", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 0x9E3779B9) & ((1 << 30) - 1);
            std::hint::black_box(curve.decode(i))
        });
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let mut group = c.benchmark_group("topology");
    group.sample_size(20);
    group.bench_function("dijkstra_ts5k_large", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % topo.node_count() as u32;
            std::hint::black_box(topo.graph.dijkstra(i))
        });
    });
    group.bench_with_input(BenchmarkId::new("generate", "ts5k_large"), &(), |b, ()| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            std::hint::black_box(TransitStubTopology::generate(
                TransitStubConfig::ts5k_large(),
                &mut rng,
            ))
        });
    });
    group.finish();
}

fn bench_core_pieces(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(29);
    let mut group = c.benchmark_group("core");
    group.bench_function("shed_selection_12vss", |b| {
        let vss: Vec<(proxbal_chord::VsId, f64)> = (0..12)
            .map(|i| (proxbal_chord::VsId(i), rng.gen_range(1.0..100.0)))
            .collect();
        let total: f64 = vss.iter().map(|x| x.1).sum();
        b.iter(|| std::hint::black_box(proxbal_core::choose_shed_set(&vss, total * 0.4)));
    });
    group.bench_function("rendezvous_pairing_200", |b| {
        b.iter_batched(
            || {
                let mut lists = proxbal_core::RendezvousLists::new();
                let mut r = StdRng::seed_from_u64(31);
                for i in 0..100u32 {
                    lists.push_shed(proxbal_core::ShedCandidate {
                        load: r.gen_range(1.0..50.0),
                        vs: proxbal_chord::VsId(i),
                        from: proxbal_chord::PeerId(i),
                    });
                    lists.push_light(proxbal_core::LightSlot {
                        spare: r.gen_range(1.0..80.0),
                        peer: proxbal_chord::PeerId(1000 + i),
                    });
                }
                lists
            },
            |mut lists| std::hint::black_box(lists.pair(1.0)),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chord,
    bench_hilbert,
    bench_topology,
    bench_core_pieces
);
criterion_main!(benches);
