//! Bench-support crate: Criterion benches live in `benches/`, the figure
//! regenerator in `src/bin/repro.rs`. Shared helpers are re-exported here.

use proxbal_profile::flame::{fold, Folded, SpanView};
use proxbal_sim::metrics::DistanceHistogram;
use proxbal_trace::{EventKind, Trace};

/// Formats a histogram's headline numbers the way the paper quotes them
/// ("about 67% of total moved load within 2 hops … 86% within 10 hops").
pub fn headline(h: &DistanceHistogram) -> String {
    format!(
        "≤2 hops: {:5.1}%   ≤10 hops: {:5.1}%   mean distance: {:.2}",
        100.0 * h.fraction_within(2),
        100.0 * h.fraction_within(10),
        h.mean_distance()
    )
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`), or
/// `None` when `/proc/self/status` is unavailable or unparsable.
pub fn peak_rss_bytes() -> Option<u64> {
    proxbal_profile::peak_rss_bytes()
}

/// Folds a trace's span hierarchy into flamegraph stacks weighted by
/// **virtual time** — a pure function of the trace, hence byte-identical
/// at any `--threads` setting. Track names (`fig/graph0`) become the top
/// frames; the enclosing-span chain within each track extends the stack.
pub fn fold_trace(trace: &Trace) -> Folded {
    fold(trace.tracks().map(|(track, events)| {
        let spans: Vec<SpanView> = events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .map(|e| SpanView {
                name: &e.name,
                ts: e.ts,
                dur: e.dur,
            })
            .collect();
        (track, spans)
    }))
}
