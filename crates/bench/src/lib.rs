//! Bench-support crate: Criterion benches live in `benches/`, the figure
//! regenerator in `src/bin/repro.rs`. Shared helpers are re-exported here.

use proxbal_sim::metrics::DistanceHistogram;

/// Formats a histogram's headline numbers the way the paper quotes them
/// ("about 67% of total moved load within 2 hops … 86% within 10 hops").
pub fn headline(h: &DistanceHistogram) -> String {
    format!(
        "≤2 hops: {:5.1}%   ≤10 hops: {:5.1}%   mean distance: {:.2}",
        100.0 * h.fraction_within(2),
        100.0 * h.fraction_within(10),
        h.mean_distance()
    )
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`), or
/// `None` when `/proc/self/status` is unavailable or unparsable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}
