//! Regenerates every figure and claim of the paper's evaluation (§5).
//!
//! ```text
//! repro --fig 4            # Figure 4: unit-load scatter before/after
//! repro --fig 5            # Figure 5: load by capacity class (Gaussian)
//! repro --fig 6            # Figure 6: load by capacity class (Pareto)
//! repro --fig 7            # Figure 7: moved load vs distance, ts5k-large
//! repro --fig 8            # Figure 8: moved load vs distance, ts5k-small
//! repro --claim rounds     # §5.2: VSA completes in O(log_K N) rounds
//! repro --claim repair     # §3.1.1: tree self-repair after crashes
//! repro --claim baselines  # §1.1: CFS thrashing comparison
//! repro --all              # everything
//! repro ... --scale small  # reduced size for quick runs
//! repro ... --seed 42      # change the master seed
//! ```

use proxbal_bench::headline;
use proxbal_core::NodeClass;
use proxbal_sim::experiments::{
    ablation_sweep, fig4_unit_load, fig56_class_loads, fig78_replicated, repair_after_crash,
    rounds_scaling, scheme_comparison,
};
use proxbal_sim::metrics::{gini, Summary};
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_workload::LoadModel;

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Full,
    Small,
}

struct Args {
    figs: Vec<u32>,
    claims: Vec<String>,
    scale: Scale,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: Vec::new(),
        claims: Vec::new(),
        scale: Scale::Full,
        seed: 1,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                let v = it.next().expect("--fig needs a number");
                args.figs.push(v.parse().expect("figure number"));
            }
            "--claim" => args.claims.push(it.next().expect("--claim needs a name")),
            "--scale" => {
                args.scale = match it.next().expect("--scale needs full|small").as_str() {
                    "small" => Scale::Small,
                    _ => Scale::Full,
                }
            }
            "--seed" => args.seed = it.next().expect("--seed needs a value").parse().unwrap(),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--all" => {
                args.figs = vec![4, 5, 6, 7, 8];
                args.claims = vec![
                    "rounds".into(),
                    "repair".into(),
                    "baselines".into(),
                    "ablations".into(),
                    "overhead".into(),
                    "latency".into(),
                    "drift".into(),
                ];
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if args.figs.is_empty() && args.claims.is_empty() {
        args.figs = vec![4, 5, 6, 7, 8];
        args.claims = vec![
            "rounds".into(),
            "repair".into(),
            "baselines".into(),
            "ablations".into(),
            "overhead".into(),
            "latency".into(),
            "drift".into(),
        ];
    }
    args
}

fn scenario(args: &Args, topology: TopologyKind) -> Scenario {
    let mut s = match args.scale {
        Scale::Full => Scenario::paper(args.seed),
        Scale::Small => {
            let mut s = Scenario::small(args.seed);
            s.peers = 512;
            s.landmarks = 15;
            s
        }
    };
    s.topology = topology;
    s
}

fn main() {
    let args = parse_args();
    let mut results = serde_json::Map::new();
    for fig in args.figs.clone() {
        let value = match fig {
            4 => fig4(&args),
            5 => fig56(&args, false),
            6 => fig56(&args, true),
            7 => fig78(&args, TopologyKind::Ts5kLarge, 7),
            8 => fig78(&args, TopologyKind::Ts5kSmall, 8),
            other => {
                eprintln!("no figure {other} in the paper's evaluation");
                continue;
            }
        };
        results.insert(format!("figure_{fig}"), value);
    }
    for claim in args.claims.clone() {
        let value = match claim.as_str() {
            "rounds" => claim_rounds(&args),
            "repair" => claim_repair(&args),
            "baselines" => claim_baselines(&args),
            "ablations" => claim_ablations(&args),
            "drift" => claim_drift(&args),
            "latency" => claim_latency(&args),
            "overhead" => claim_overhead(&args),
            other => {
                eprintln!("unknown claim {other}");
                continue;
            }
        };
        results.insert(format!("claim_{claim}"), value);
    }
    if let Some(path) = &args.json {
        let doc = serde_json::json!({
            "paper": "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)",
            "seed": args.seed,
            "scale": if args.scale == Scale::Full { "full" } else { "small" },
            "results": serde_json::Value::Object(results),
        });
        std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
}

fn fig4(args: &Args) -> serde_json::Value {
    println!("── Figure 4: unit load per node before/after load balancing (Gaussian) ──");
    let mut prepared = scenario(args, TopologyKind::None).prepare();
    let out = fig4_unit_load(&mut prepared);
    let before = Summary::of(&out.before);
    let after = Summary::of(&out.after);
    let heavy_before = out
        .report
        .before
        .get(&NodeClass::Heavy)
        .copied()
        .unwrap_or(0);
    let total = out.before.len();
    println!(
        "nodes: {total}   heavy before: {heavy_before} ({:.0}%)   heavy after: {}",
        100.0 * heavy_before as f64 / total as f64,
        out.report.heavy_after()
    );
    println!(
        "unit load before: mean {:10.1}  max {:10.1}  gini {:.3}",
        before.mean,
        before.max,
        gini(&out.before)
    );
    println!(
        "unit load after : mean {:10.1}  max {:10.1}  gini {:.3}",
        after.mean,
        after.max,
        gini(&out.after)
    );
    println!("(paper: ~75% heavy before; all heavy become light after)\n");
    serde_json::json!({
        "nodes": total,
        "heavy_before": heavy_before,
        "heavy_after": out.report.heavy_after(),
        "gini_before": gini(&out.before),
        "gini_after": gini(&out.after),
        "unit_load_before": { "mean": before.mean, "max": before.max },
        "unit_load_after": { "mean": after.mean, "max": after.max },
    })
}

fn fig56(args: &Args, pareto: bool) -> serde_json::Value {
    let (fig, label) = if pareto { (6, "Pareto") } else { (5, "Gaussian") };
    println!("── Figure {fig}: load by capacity class before/after ({label}) ──");
    let mut s = scenario(args, TopologyKind::None);
    if pareto {
        s.load = LoadModel::pareto(1_000_000.0);
    }
    let mut prepared = s.prepare();
    let out = fig56_class_loads(&mut prepared);
    println!(
        "{:>10} {:>6} {:>16} {:>16}",
        "capacity", "nodes", "mean load pre", "mean load post"
    );
    let mut classes = Vec::new();
    for (i, cap) in out.class_capacity.iter().enumerate() {
        let b = Summary::of(&out.before[i]);
        let a = Summary::of(&out.after[i]);
        println!("{:>10} {:>6} {:>16.1} {:>16.1}", cap, b.count, b.mean, a.mean);
        classes.push(serde_json::json!({
            "capacity": cap, "nodes": b.count,
            "mean_load_before": b.mean, "mean_load_after": a.mean,
        }));
    }
    println!("(paper: after balancing, load tracks the capacity skew)\n");
    serde_json::json!({ "workload": label, "classes": classes })
}

fn fig78(args: &Args, topology: TopologyKind, fig: u32) -> serde_json::Value {
    let name = if fig == 7 { "ts5k-large" } else { "ts5k-small" };
    // The paper runs 10 independently generated graphs per topology and
    // pools them; do the same (in parallel) at full scale.
    let graphs = match args.scale {
        Scale::Full => 10,
        Scale::Small => 3,
    };
    println!("── Figure {fig}: moved load vs transfer distance ({name}, {graphs} graphs) ──");
    let base = scenario(args, topology);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let out = fig78_replicated(&base, graphs, threads);
    println!("proximity-aware   : {}", headline(&out.aware));
    println!("proximity-ignorant: {}", headline(&out.ignorant));
    assert_eq!(out.max_heavy_after, 0, "every run must fully balance");
    println!("\n  CDF of moved load (distance: aware | ignorant)");
    for d in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50] {
        println!(
            "  <={d:>3} hops: {:6.1}% | {:6.1}%",
            (100.0 * out.aware.fraction_within(d)).max(0.0),
            (100.0 * out.ignorant.fraction_within(d)).max(0.0)
        );
    }
    let spread = |i: usize| {
        let vals: Vec<f64> = out.per_graph.iter().map(|g| match i {
            0 => g.0,
            1 => g.1,
            _ => g.2,
        }).collect();
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(0.0f64, f64::max);
        (100.0 * lo, 100.0 * hi)
    };
    let (a2l, a2h) = spread(0);
    let (a10l, a10h) = spread(1);
    let (i10l, i10h) = spread(2);
    println!("  per-graph spread: aware<=2 {a2l:.0}-{a2h:.0}%, aware<=10 {a10l:.0}-{a10h:.0}%, ignorant<=10 {i10l:.0}-{i10h:.0}%");
    if fig == 7 {
        println!("(paper: aware ~67% within 2 hops, ~86% within 10; ignorant ~13% within 10)\n");
    } else {
        println!("(paper: aware still wins on ts5k-small, with a smaller margin)\n");
    }
    serde_json::json!({
        "topology": name,
        "graphs": graphs,
        "aware": { "cdf": out.aware.cdf(), "mean_distance": out.aware.mean_distance() },
        "ignorant": { "cdf": out.ignorant.cdf(), "mean_distance": out.ignorant.mean_distance() },
    })
}

fn claim_rounds(args: &Args) -> serde_json::Value {
    println!("── Claim (§5.2): LBI/VSA complete in O(log_K N) message rounds ──");
    let sizes: Vec<usize> = match args.scale {
        Scale::Full => vec![256, 512, 1024, 2048, 4096],
        Scale::Small => vec![64, 128, 256, 512],
    };
    let rows = rounds_scaling(&sizes, &[2, 8], args.seed);
    let json = serde_json::to_value(&rows).expect("serialize rows");
    println!(
        "{:>6} {:>8} {:>3} {:>10} {:>10} {:>10} {:>10}",
        "peers", "VSs", "K", "LBI rnds", "dissem", "VSA rnds", "log_K(M)"
    );
    for r in rows {
        println!(
            "{:>6} {:>8} {:>3} {:>10} {:>10} {:>10} {:>10.1}",
            r.peers,
            r.virtual_servers,
            r.k,
            r.lbi_rounds,
            r.dissemination_rounds,
            r.vsa_rounds,
            r.log_k_m
        );
    }
    println!();
    json
}

fn claim_repair(args: &Args) -> serde_json::Value {
    println!("── Claim (§3.1.1): tree self-repairs in O(log_K N) rounds after crashes ──");
    let peers = match args.scale {
        Scale::Full => 2048,
        Scale::Small => 256,
    };
    println!(
        "{:>6} {:>3} {:>8} {:>12} {:>12} {:>13}",
        "peers", "K", "crash %", "crash rnds", "regrow rnds", "height after"
    );
    let mut rows = Vec::new();
    for k in [2usize, 8] {
        for frac in [0.1, 0.25, 0.5] {
            let row = repair_after_crash(peers, frac, k, args.seed);
            println!(
                "{:>6} {:>3} {:>8.0} {:>12} {:>12} {:>13}",
                row.peers,
                k,
                frac * 100.0,
                row.crash_repair_rounds,
                row.join_repair_rounds,
                row.height_after
            );
            rows.push(serde_json::json!({
                "k": k, "crash_fraction": frac,
                "crash_repair_rounds": row.crash_repair_rounds,
                "join_repair_rounds": row.join_repair_rounds,
                "height_after": row.height_after,
            }));
        }
    }
    println!();
    serde_json::Value::Array(rows)
}

fn claim_baselines(args: &Args) -> serde_json::Value {
    println!("── Baselines (§1.1): our scheme vs CFS-style shedding ──");
    let mut s = scenario(args, TopologyKind::None);
    if args.scale == Scale::Full {
        s.peers = 1024; // CFS loop is O(rounds · peers); keep runtime sane
    }
    let prepared = s.prepare();
    let cmp = scheme_comparison(&prepared);
    println!("unit-load gini before: {:.3}", cmp.gini_before);
    println!("unit-load gini after (tree scheme): {:.3}", cmp.gini_tree);
    println!(
        "heavy nodes: {} -> {} (tree scheme)",
        cmp.heavy_before, cmp.heavy_after
    );
    println!(
        "CFS baseline: converged = {}, thrash events = {}",
        cmp.cfs_converged, cmp.cfs_thrash_events
    );
    println!("(the paper criticizes CFS for exactly this load thrashing)\n");
    serde_json::to_value(&cmp).expect("serialize comparison")
}

fn claim_ablations(args: &Args) -> serde_json::Value {
    println!("── Ablations: design choices on ts5k-large (aware mode unless noted) ──");
    let mut s = scenario(args, TopologyKind::Ts5kLarge);
    if args.scale == Scale::Full {
        s.peers = 2048; // 14 full-scale runs; keep runtime sane
    }
    let prepared = s.prepare();
    let rows = ablation_sweep(&prepared);
    let json = serde_json::to_value(&rows).expect("serialize ablations");
    println!(
        "{:<40} {:>6} {:>12} {:>7} {:>7} {:>6}",
        "variant", "heavy", "moved load", "<=2", "<=10", "mean"
    );
    for r in rows {
        println!(
            "{:<40} {:>6} {:>12.3e} {:>6.1}% {:>6.1}% {:>6.2}",
            r.label,
            r.heavy_after,
            r.moved_load,
            100.0 * r.frac2,
            100.0 * r.frac10,
            r.mean_distance
        );
    }
    println!();
    json
}

fn claim_drift(args: &Args) -> serde_json::Value {
    println!("── Extension: periodic re-balancing under load drift ──");
    let peers = match args.scale {
        Scale::Full => 1024,
        Scale::Small => 256,
    };
    let mut s = scenario(args, TopologyKind::None);
    s.peers = peers;
    let mut prepared = s.prepare();
    let cfg = proxbal_sim::drift::DriftConfig {
        steps: 50,
        rebalance_every: 10,
        sigma: 0.1,
    };
    let balancer_cfg = proxbal_core::BalancerConfig {
        max_splits: 16,
        ..prepared.scenario.balancer
    };
    let mut rng = prepared.derived_rng(0xD21F7);
    let stats = proxbal_sim::drift::run_drift(
        &mut prepared.net,
        &mut prepared.loads,
        &cfg,
        balancer_cfg,
        None,
        &mut rng,
    );
    println!(
        "{} steps, rebalance every {}, sigma {}",
        cfg.steps, cfg.rebalance_every, cfg.sigma
    );
    let post: Vec<usize> = stats
        .timeline
        .iter()
        .filter(|s| s.moved > 0.0)
        .map(|s| s.heavy)
        .collect();
    println!(
        "heavy nodes right after each rebalance: {post:?} (peers: {peers})"
    );
    println!(
        "worst heavy count between rebalances: {}",
        stats.max_heavy()
    );
    println!(
        "total load moved across {} rebalances: {:.3e}",
        stats.rebalances, stats.total_moved
    );
    println!();
    serde_json::json!({
        "rebalances": stats.rebalances,
        "total_moved": stats.total_moved,
        "heavy_after_each_rebalance": post,
        "max_heavy": stats.max_heavy(),
    })
}

fn claim_latency(args: &Args) -> serde_json::Value {
    println!("── Timing: message-level wall-clock of the tree phases (ts5k-large) ──");
    let sizes: Vec<usize> = match args.scale {
        Scale::Full => vec![1024, 4096],
        Scale::Small => vec![256],
    };
    let rows = proxbal_sim::experiments::protocol_latency(&sizes, &[2, 8], &[0.0, 0.05], args.seed);
    let json = serde_json::to_value(&rows).expect("serialize latency rows");
    println!(
        "{:>6} {:>3} {:>6} {:>12} {:>12} {:>10}",
        "peers", "K", "loss", "LBI time", "dissem time", "messages"
    );
    for r in rows {
        println!(
            "{:>6} {:>3} {:>6.2} {:>12} {:>12} {:>10}",
            r.peers, r.k, r.loss, r.aggregation, r.dissemination, r.messages
        );
    }
    println!("(time in latency units: interdomain hop = 3, intradomain = 1)\n");
    json
}

fn claim_overhead(args: &Args) -> serde_json::Value {
    println!("── Overhead: control messages and transfer bandwidth per phase ──");
    let mut s = scenario(args, TopologyKind::Ts5kLarge);
    if args.scale == Scale::Full {
        s.peers = 2048;
    }
    let prepared = s.prepare();
    let underlay = prepared.underlay().unwrap();
    let mut rows = Vec::new();
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10} {:>14}",
        "mode", "LBI msgs", "dissem", "record-hops", "notifies", "VST load·dist"
    );
    for (name, mode) in [
        ("ignorant", proxbal_core::ProximityMode::Ignorant),
        (
            "aware",
            proxbal_core::ProximityMode::Aware(proxbal_core::ProximityParams::default()),
        ),
    ] {
        let mut net = prepared.net.clone();
        let mut loads = prepared.loads.clone();
        let cfg = proxbal_core::BalancerConfig {
            mode,
            ..prepared.scenario.balancer
        };
        let mut rng = prepared.derived_rng(0x0F0F);
        let report = proxbal_core::LoadBalancer::new(cfg)
            .run(&mut net, &mut loads, Some(underlay), &mut rng);
        let m = report.messages;
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>10} {:>14.3e}",
            name,
            m.lbi_messages,
            m.dissemination_messages,
            m.vsa_record_hops,
            m.vsa_notifications,
            m.vst_weighted_cost
        );
        rows.push(serde_json::json!({ "mode": name, "stats": m }));
    }
    println!("(the aware mode's whole point: the VST column — bandwidth — collapses)\n");
    serde_json::Value::Array(rows)
}
