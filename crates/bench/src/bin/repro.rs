//! Regenerates every figure and claim of the paper's evaluation (§5).
//!
//! The verb-first form groups the phases into subcommands:
//!
//! ```text
//! repro figs [4 5 6 7 8]   # the figure grid (all five when none given)
//! repro claims [names...]  # the claim grid (all seven when none given)
//! repro faults [rate]      # fault-injection sweep at losses {0,1%,5%,rate}
//! repro xl                 # 65,536 peers on a ts50k underlay (bounded RAM)
//! repro xl2                # 1,048,576 peers: sharded prepare + landmark distances
//! repro engine             # continuous operation: churn + drift + loss
//! repro all                # the full figure + claim grid
//! repro analyze <files>    # behavioral queries over a run's artifacts
//! ```
//!
//! `repro analyze` takes the artifacts a run wrote — an `EngineReport`
//! JSON (`repro engine --json r.json`) and/or a trace event log
//! (`--trace t.json` writes `t.ndjson`) — and either prints a behavioral
//! summary, or with `--gates <dir|file>` evaluates declarative threshold
//! gates (`gates/*.toml`, DESIGN.md §7) and exits nonzero on violations:
//!
//! ```text
//! repro analyze report.json trace.ndjson            # behavioral summary
//! repro analyze report.json trace.ndjson --gates gates/
//! repro analyze ... --gates gates/ --out analyze-report.json
//! ```
//!
//! Shared flags may follow any subcommand (and the legacy flag-only
//! spelling below keeps working — `repro --all` is an alias of
//! `repro all`):
//!
//! ```text
//! repro --fig 4            # Figure 4: unit-load scatter before/after
//! repro --fig 5            # Figure 5: load by capacity class (Gaussian)
//! repro --fig 6            # Figure 6: load by capacity class (Pareto)
//! repro --fig 7            # Figure 7: moved load vs distance, ts5k-large
//! repro --fig 8            # Figure 8: moved load vs distance, ts5k-small
//! repro --claim rounds     # §5.2: VSA completes in O(log_K N) rounds
//! repro --claim repair     # §3.1.1: tree self-repair after crashes
//! repro --claim baselines  # §1.1: CFS thrashing comparison
//! repro --all              # everything
//! repro --scale xl         # 65,536 peers on a ts50k underlay (bounded RAM)
//! repro ... --scale small  # reduced size for quick runs
//! repro xl2 --peers 65536  # xl2 machinery at a reduced peer count (smoke)
//! repro xl2 ... --exact   # same pipeline, exact distances (sensitivity)
//! repro ... --seed 42      # change the master seed
//! repro ... --threads 4    # worker threads for the sweep engine
//! repro ... --timing       # per-phase wall-clock -> BENCH_repro.json
//! repro --faults 0.1       # fault-injection sweep at loss rates {0,1%,5%,10%}
//! repro ... --trace t.json # chrome://tracing trace + t.ndjson event log
//! repro engine --epochs 50 # epoch count of the continuous-operation run
//! repro ... --profile out/ # flamegraphs + resource profile into out/
//! repro ... --progress     # heartbeat lines (epoch k/N, RSS, allocs) on stderr
//! repro ... --quiet        # suppress heartbeats even if --progress is set
//! ```
//!
//! Every phase derives its state from the master seed alone, so the output
//! is bit-identical regardless of `--threads`. The `--trace` collector
//! records only virtual-time spans and deterministic counters, so the trace
//! files obey the same contract — and without `--trace` the collector is
//! disabled and stdout stays byte-identical to an untraced build.
//!
//! `--profile <dir>` (DESIGN.md §5c) enables the trace collector and the
//! phase profiler and writes four artifacts: `flame.virt.folded` and
//! `flame.virt.speedscope.json` weighted by virtual time (deterministic —
//! byte-identical at any `--threads`), plus `flame.wall.folded` and
//! `resources.txt` carrying wall/CPU/allocation numbers (volatile, never
//! compared across runs). Heartbeats go to stderr only, so neither flag
//! can perturb stdout.

use proxbal_bench::headline;
use proxbal_core::NodeClass;
use proxbal_profile::{AllocSnapshot, CountingAlloc, NullSink, ProgressSink, StderrSink};
use proxbal_sim::experiments::{
    ablation_sweep_traced, fig4_unit_load_traced, fig56_class_loads_traced,
    fig78_replicated_traced, repair_after_crash_traced, rounds_scaling_traced, scheme_comparison,
};
use proxbal_sim::metrics::{gini, Summary};
use proxbal_sim::{Scenario, TopologyKind};
use proxbal_trace::{Trace, TraceSummary};
use proxbal_workload::LoadModel;
use std::time::Instant;

/// Allocation accounting for every run: inert (one relaxed load per
/// allocator call) until `enable_counting` flips it on in `main`.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Appends a rendered line to a phase's output buffer (phases run through
/// the parallel engine, so they write to a buffer instead of stdout and the
/// driver prints the buffers in declaration order).
macro_rules! say {
    ($buf:expr) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf);
    }};
    ($buf:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($buf, $($arg)*);
    }};
}

#[derive(Clone, Copy, PartialEq)]
enum Scale {
    Full,
    Small,
    /// 65,536 peers over a ~50k-node underlay with a bounded oracle cache.
    /// Runs its own phase (four balancer phases + the fig-7-shaped
    /// proximity sweep) instead of the figure/claim grid.
    Xl,
    /// 1,048,576 peers: sharded preparation, sharded KT-tree build and
    /// landmark-approximate transfer distances. One proximity-aware pass,
    /// in place. `--peers` rescales it for smoke runs.
    Xl2,
}

impl Scale {
    fn name(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Small => "small",
            Scale::Xl => "xl",
            Scale::Xl2 => "xl2",
        }
    }
}

struct Args {
    figs: Vec<u32>,
    claims: Vec<String>,
    scale: Scale,
    seed: u64,
    json: Option<String>,
    threads: usize,
    timing: bool,
    faults: Option<f64>,
    /// chrome://tracing output path; also derives the `.ndjson` event-log
    /// path. `None` disables the collector entirely.
    trace: Option<String>,
    /// `repro engine` — run the continuous-operation engine phase.
    engine: bool,
    /// `--epochs` override for the engine phase.
    epochs: Option<usize>,
    /// `--peers` override for the xl2 phase (reduced-scale smoke runs).
    peers: Option<usize>,
    /// `--exact` forces exact distances in the xl2 phase (sensitivity runs
    /// comparing the landmark-approximate scheme against ground truth).
    exact: bool,
    /// `repro analyze` — run behavioral queries/gates over run artifacts.
    analyze: bool,
    /// Artifact paths for `repro analyze` (`.ndjson` = trace event log,
    /// anything else = `EngineReport` JSON).
    inputs: Vec<String>,
    /// `--gates <dir|file>`: evaluate gate files instead of summarizing.
    gates: Option<String>,
    /// `--out <path>`: write the machine-readable gate report JSON.
    out: Option<String>,
    /// `--profile <dir>`: write flamegraph + resource-profile artifacts.
    /// Enables the trace collector and the phase profiler.
    profile: Option<String>,
    /// `--progress`: heartbeat lines on stderr while phases run.
    progress: bool,
    /// `--quiet`: suppress heartbeats even when `--progress` is given.
    quiet: bool,
}

const ALL_CLAIMS: [&str; 7] = [
    "rounds",
    "repair",
    "baselines",
    "ablations",
    "overhead",
    "latency",
    "drift",
];

/// Applies a verb-first subcommand (`repro figs 4 7`, `repro claims drift`,
/// `repro faults 0.1`, `repro xl`, `repro engine`, `repro all`) to `args`,
/// consuming the verb's positional operands. Returns the remaining argv —
/// shared flags — for the common flag loop.
fn apply_subcommand<'a>(cmd: &str, operands: &'a [String], args: &mut Args) -> &'a [String] {
    let split = operands
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(operands.len());
    let (pos, rest) = operands.split_at(split);
    let no_operands = |cmd: &str| {
        if !pos.is_empty() {
            eprintln!("repro {cmd} takes no positional operands (got {pos:?})");
            std::process::exit(2);
        }
    };
    match cmd {
        "figs" => {
            args.figs = if pos.is_empty() {
                vec![4, 5, 6, 7, 8]
            } else {
                pos.iter()
                    .map(|v| v.parse().expect("figure number"))
                    .collect()
            };
        }
        "claims" => {
            args.claims = if pos.is_empty() {
                ALL_CLAIMS.iter().map(|s| s.to_string()).collect()
            } else {
                pos.to_vec()
            };
        }
        "faults" => {
            if pos.len() > 1 {
                eprintln!("repro faults takes at most one loss rate");
                std::process::exit(2);
            }
            args.faults = Some(pos.first().map_or(0.1, |v| v.parse().expect("loss rate")));
        }
        "xl" => {
            no_operands("xl");
            args.scale = Scale::Xl;
        }
        "xl2" => {
            no_operands("xl2");
            args.scale = Scale::Xl2;
        }
        "engine" => {
            no_operands("engine");
            args.engine = true;
        }
        "analyze" => {
            if pos.is_empty() {
                eprintln!("repro analyze needs at least one artifact path (report JSON and/or trace .ndjson)");
                std::process::exit(2);
            }
            args.analyze = true;
            args.inputs = pos.to_vec();
        }
        "all" => {
            no_operands("all");
            args.figs = vec![4, 5, 6, 7, 8];
            args.claims = ALL_CLAIMS.iter().map(|s| s.to_string()).collect();
        }
        other => {
            eprintln!("unknown subcommand {other} (expected figs|claims|faults|xl|xl2|engine|analyze|all)");
            std::process::exit(2);
        }
    }
    rest
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: Vec::new(),
        claims: Vec::new(),
        scale: Scale::Full,
        seed: 1,
        json: None,
        threads: proxbal_sim::parallel::default_threads(),
        timing: false,
        faults: None,
        trace: None,
        engine: false,
        epochs: None,
        peers: None,
        exact: false,
        analyze: false,
        inputs: Vec::new(),
        gates: None,
        out: None,
        profile: None,
        progress: false,
        quiet: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let flags: &[String] = match argv.first() {
        Some(first) if !first.starts_with("--") => apply_subcommand(first, &argv[1..], &mut args),
        _ => &argv,
    };
    let mut it = flags.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                let v = it.next().expect("--fig needs a number");
                args.figs.push(v.parse().expect("figure number"));
            }
            "--claim" => args.claims.push(it.next().expect("--claim needs a name")),
            "--scale" => {
                args.scale = match it.next().expect("--scale needs full|small|xl|xl2").as_str() {
                    "small" => Scale::Small,
                    "xl" => Scale::Xl,
                    "xl2" => Scale::Xl2,
                    _ => Scale::Full,
                }
            }
            "--seed" => args.seed = it.next().expect("--seed needs a value").parse().unwrap(),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--threads" => {
                args.threads = it
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("thread count");
            }
            "--timing" => args.timing = true,
            "--trace" => args.trace = Some(it.next().expect("--trace needs a path")),
            "--faults" => {
                args.faults = Some(
                    it.next()
                        .expect("--faults needs a loss rate")
                        .parse()
                        .expect("loss rate"),
                );
            }
            "--epochs" => {
                args.epochs = Some(
                    it.next()
                        .expect("--epochs needs a count")
                        .parse()
                        .expect("epoch count"),
                );
            }
            "--peers" => {
                args.peers = Some(
                    it.next()
                        .expect("--peers needs a count")
                        .parse()
                        .expect("peer count"),
                );
            }
            "--exact" => args.exact = true,
            "--gates" => args.gates = Some(it.next().expect("--gates needs a dir or file")),
            "--out" => args.out = Some(it.next().expect("--out needs a path")),
            "--profile" => args.profile = Some(it.next().expect("--profile needs a directory")),
            "--progress" => args.progress = true,
            "--quiet" => args.quiet = true,
            "--all" => {
                args.figs = vec![4, 5, 6, 7, 8];
                args.claims = ALL_CLAIMS.iter().map(|s| s.to_string()).collect();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if args.scale != Scale::Xl
        && args.scale != Scale::Xl2
        && !args.engine
        && !args.analyze
        && args.faults.is_none()
        && args.figs.is_empty()
        && args.claims.is_empty()
    {
        args.figs = vec![4, 5, 6, 7, 8];
        args.claims = ALL_CLAIMS.iter().map(|s| s.to_string()).collect();
    }
    args
}

fn scenario(args: &Args, topology: TopologyKind) -> Scenario {
    let mut s = match args.scale {
        Scale::Full => Scenario::builder().seed(args.seed).build(),
        Scale::Small => Scenario::builder()
            .small()
            .peers(512)
            .landmarks(15)
            .seed(args.seed)
            .build(),
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    s.topology = topology;
    s
}

#[derive(Clone)]
enum Phase {
    Fig(u32),
    Claim(String),
}

impl Phase {
    fn key(&self) -> String {
        match self {
            Phase::Fig(n) => format!("figure_{n}"),
            Phase::Claim(c) => format!("claim_{c}"),
        }
    }
}

fn run_phase(phase: &Phase, args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    match phase {
        Phase::Fig(4) => fig4(args, trace),
        Phase::Fig(5) => fig56(args, false, trace),
        Phase::Fig(6) => fig56(args, true, trace),
        Phase::Fig(7) => fig78(args, TopologyKind::Ts5kLarge, 7, trace),
        Phase::Fig(8) => fig78(args, TopologyKind::Ts5kSmall, 8, trace),
        Phase::Fig(_) => unreachable!("validated in main"),
        Phase::Claim(c) => match c.as_str() {
            "rounds" => claim_rounds(args, trace),
            "repair" => claim_repair(args, trace),
            "baselines" => claim_baselines(args, trace),
            "ablations" => claim_ablations(args, trace),
            "drift" => claim_drift(args, trace),
            "latency" => claim_latency(args, trace),
            "overhead" => claim_overhead(args, trace),
            _ => unreachable!("validated in main"),
        },
    }
}

/// The largest message-ish count anywhere in a phase's JSON — the per-phase
/// "peak messages" column of BENCH_repro.json.
fn peak_messages(v: &serde_json::Value) -> Option<u64> {
    match v {
        serde_json::Value::Object(map) => map
            .iter()
            .filter_map(|(k, v)| {
                let counts = k.contains("messages")
                    || k.contains("record_hops")
                    || k.contains("notifications");
                if counts {
                    v.as_u64()
                } else {
                    peak_messages(v)
                }
            })
            .max(),
        serde_json::Value::Array(a) => a.iter().filter_map(peak_messages).max(),
        _ => None,
    }
}

/// Merges `key` → `entry` into BENCH_repro.json, preserving every other
/// top-level key an earlier run recorded (the `--timing` doc and the `xl`
/// entry are written by different invocations).
fn merge_bench_json(key: &str, entry: serde_json::Value) {
    let mut doc = std::fs::read_to_string("BENCH_repro.json")
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .and_then(|v| match v {
            serde_json::Value::Object(m) => Some(m),
            _ => None,
        })
        .unwrap_or_else(serde_json::Map::new);
    if !doc.contains_key("bench") {
        doc.insert("bench".to_string(), serde_json::json!("repro"));
    }
    if !doc.contains_key("paper") {
        doc.insert(
            "paper".to_string(),
            serde_json::json!(
                "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)"
            ),
        );
    }
    doc.insert(key.to_string(), entry);
    std::fs::write(
        "BENCH_repro.json",
        serde_json::to_string_pretty(&serde_json::Value::Object(doc)).expect("serialize timings"),
    )
    .expect("write BENCH_repro.json");
    println!("wrote BENCH_repro.json ({key})");
}

/// The xl-scale phase: all four balancer phases at 65,536 peers over a
/// ts50k underlay (twice: aware + ignorant — the fig-7-shaped proximity
/// sweep), with wall time and peak RSS appended to BENCH_repro.json.
fn run_xl(args: &Args, trace: &mut Trace, progress: &dyn ProgressSink) {
    for fig in &args.figs {
        assert!(
            *fig == 7,
            "--scale xl runs the fig-7-shaped sweep only (got --fig {fig})"
        );
    }
    assert!(
        args.claims.is_empty(),
        "--scale xl does not run the claim grid"
    );
    println!(
        "── xl scale: four-phase protocol at 65,536 peers on ts50k (seed {}) ──",
        args.seed
    );
    let total = Instant::now();
    let out = proxbal_sim::experiments::xl_scale_run(args.seed, args.threads, trace, progress);
    let total_wall = total.elapsed().as_secs_f64();
    let peak_rss = proxbal_bench::peak_rss_bytes();

    println!(
        "underlay: {} nodes   peers: {}   virtual servers: {}   oracle cache: {} rows",
        out.underlay_nodes, out.peers, out.virtual_servers, out.oracle_capacity
    );
    println!("prepare: {:.1}s", out.prepare_wall_s);
    for run in [&out.aware, &out.ignorant] {
        println!(
            "{:<18}: {}   heavy {} -> {}   transfers {}   {:.1}s",
            format!("proximity-{}", run.label),
            headline(&run.histogram),
            run.heavy_before,
            run.heavy_after,
            run.transfers,
            run.wall_s
        );
    }
    println!("\n  CDF of moved load (distance: aware | ignorant)");
    for d in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50] {
        println!(
            "  <={d:>3} hops: {:6.1}% | {:6.1}%",
            (100.0 * out.aware.histogram.fraction_within(d)).max(0.0),
            (100.0 * out.ignorant.histogram.fraction_within(d)).max(0.0)
        );
    }
    match peak_rss {
        Some(b) => println!(
            "total: {total_wall:.1}s   peak RSS: {:.2} GiB",
            b as f64 / (1u64 << 30) as f64
        ),
        None => println!("total: {total_wall:.1}s   peak RSS: unavailable"),
    }

    let entry = serde_json::json!({
        "seed": args.seed,
        "peers": out.peers,
        "underlay_nodes": out.underlay_nodes,
        "virtual_servers": out.virtual_servers,
        "oracle_capacity": out.oracle_capacity,
        "threads": args.threads,
        "total_wall_s": total_wall,
        "prepare_wall_s": out.prepare_wall_s,
        "aware_wall_s": out.aware.wall_s,
        "ignorant_wall_s": out.ignorant.wall_s,
        "peak_rss_bytes": peak_rss.unwrap_or(0),
        "lbi_messages": out.aware.lbi_messages,
        "vsa_record_hops": out.aware.vsa_record_hops,
        "aware_frac2": out.aware.frac2,
        "aware_frac10": out.aware.frac10,
        "ignorant_frac10": out.ignorant.frac10,
        "heavy_after": out.aware.heavy_after.max(out.ignorant.heavy_after),
    });
    merge_bench_json("xl", entry);

    if let Some(path) = &args.json {
        let doc = serde_json::json!({
            "paper": "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)",
            "seed": args.seed,
            "scale": "xl",
            "results": serde_json::to_value(&out).expect("serialize xl output"),
        });
        std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
}

/// The xl2 phase: the million-peer run — sharded preparation, sharded
/// KT-tree build, landmark-approximate transfer distances — through one
/// proximity-aware four-phase pass executed in place. Appends an `xl2`
/// entry to BENCH_repro.json unless `--peers` rescaled the run (smoke runs
/// must not clobber the committed full-scale entry).
fn run_xl2(args: &Args, trace: &mut Trace, progress: &dyn ProgressSink) {
    assert!(
        args.figs.is_empty() && args.claims.is_empty(),
        "repro xl2 runs its own phase (figures/claims not supported)"
    );
    let mut scenario = Scenario::builder().xl2().seed(args.seed).build();
    if let Some(p) = args.peers {
        scenario.peers = p;
    }
    if args.exact {
        scenario.distance_mode = proxbal_sim::DistanceMode::Exact;
    }
    println!(
        "── xl2 scale: sharded prepare + landmark distances at {} peers on ts50k (seed {}) ──",
        scenario.peers, args.seed
    );
    let total = Instant::now();
    let out = proxbal_sim::experiments::xl2_scale_run(scenario, args.threads, trace, progress);
    let total_wall = total.elapsed().as_secs_f64();
    let peak_rss = proxbal_bench::peak_rss_bytes();

    println!(
        "underlay: {} nodes   peers: {}   virtual servers: {}   oracle cache: {} rows   shards: {}   refine: {} rows",
        out.underlay_nodes,
        out.peers,
        out.virtual_servers,
        out.oracle_capacity,
        out.shards,
        out.refine_sources
    );
    println!(
        "prepare: {:.1}s   tree build: {:.1}s",
        out.prepare_wall_s, out.tree_wall_s
    );
    let run = &out.aware;
    println!(
        "{:<18}: {}   heavy {} -> {}   transfers {}   {:.1}s",
        format!("proximity-{}", run.label),
        headline(&run.histogram),
        run.heavy_before,
        run.heavy_after,
        run.transfers,
        run.wall_s
    );
    // One wall per line with the seconds last, so the thread-invariance
    // smoke (scripts/check.sh scrub_xl2) strips them like every other wall.
    println!("  lbi wall: {:.2}s", run.lbi_wall_s);
    println!("  aggregate wall: {:.2}s", run.aggregate_wall_s);
    println!("  vsa wall: {:.2}s", run.vsa_wall_s);
    println!("  transfer wall: {:.2}s", run.transfer_wall_s);
    println!("\n  CDF of moved load (distance: aware)");
    for d in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50] {
        println!(
            "  <={d:>3} hops: {:6.1}%",
            (100.0 * run.histogram.fraction_within(d)).max(0.0)
        );
    }
    match peak_rss {
        Some(b) => println!(
            "total: {total_wall:.1}s   peak RSS: {:.2} GiB",
            b as f64 / (1u64 << 30) as f64
        ),
        None => println!("total: {total_wall:.1}s   peak RSS: unavailable"),
    }

    if args.peers.is_none() && !args.exact {
        // Allocation accounting is on from the top of `main`, so these
        // cover the whole run. Schema-gated only: counts are deterministic
        // per (workload, thread count) but not across thread counts, so
        // bench_drift.sh lists them as volatile.
        let alloc = AllocSnapshot::global();
        let entry = serde_json::json!({
            "seed": args.seed,
            "peers": out.peers,
            "underlay_nodes": out.underlay_nodes,
            "virtual_servers": out.virtual_servers,
            "oracle_capacity": out.oracle_capacity,
            "shards": out.shards,
            "refine_sources": out.refine_sources,
            "threads": args.threads,
            "total_wall_s": total_wall,
            "prepare_wall_s": out.prepare_wall_s,
            "tree_wall_s": out.tree_wall_s,
            "aware_wall_s": run.wall_s,
            "lbi_wall_s": run.lbi_wall_s,
            "aggregate_wall_s": run.aggregate_wall_s,
            "vsa_wall_s": run.vsa_wall_s,
            "transfer_wall_s": run.transfer_wall_s,
            "peak_rss_bytes": peak_rss.unwrap_or(0),
            "alloc_count": alloc.allocs,
            "alloc_bytes": alloc.bytes,
            "peak_alloc_bytes": proxbal_profile::alloc::peak_live_bytes(),
            "lbi_messages": run.lbi_messages,
            "vsa_record_hops": run.vsa_record_hops,
            "aware_frac2": run.frac2,
            "aware_frac10": run.frac10,
            "heavy_after": run.heavy_after,
        });
        merge_bench_json("xl2", entry);
    }

    if let Some(path) = &args.json {
        let doc = serde_json::json!({
            "paper": "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)",
            "seed": args.seed,
            "scale": "xl2",
            "results": serde_json::to_value(&out).expect("serialize xl2 output"),
        });
        std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
}

/// The `--faults <rate>` phase: the four-phase protocol driven through a
/// seeded fault plan at loss rates {0, 1%, 5%, `<rate>`}, reporting phase
/// completion, repair work, convergence rounds and residual imbalance per
/// rate. Every merged metric is a pure function of `(seed, rates)` — no
/// wall-clocks — so the entry is byte-stable across machines and thread
/// counts and can be diffed by the CI bench-drift gate.
fn run_faults(args: &Args, rate: f64, trace: &mut Trace, progress: &dyn ProgressSink) {
    assert!(
        (0.0..1.0).contains(&rate),
        "--faults rate must be in [0, 1)"
    );
    let mut rates = vec![0.0, 0.01, 0.05, rate];
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rate"));
    rates.dedup();
    let s = scenario(args, TopologyKind::Ts5kLarge);
    let t = Instant::now();
    let rows = proxbal_sim::experiments::fault_sweep_run(&s, &rates, args.threads, trace, progress);
    let wall = t.elapsed();

    println!(
        "── Fault-injection sweep ({} peers, seed {}) ──",
        s.peers, s.seed
    );
    println!(
        "{:>6} {:>7} {:>5} | {:>6} {:>6} | {:>5} {:>5} {:>6} | {:>8} {:>7} {:>6} | {:>6} {:>6} {:>8} | {:>5} {:>4} {:>4} {:>4}",
        "loss", "crashed", "stale", "agg", "diss", "reatt", "prune", "rounds", "msgs",
        "retries", "gaveup", "heavy0", "heavy1", "residual", "xfers", "rq", "re", "ab"
    );
    for r in &rows {
        println!(
            "{:>5.1}% {:>7} {:>5} | {:>5.1}% {:>5.1}% | {:>5} {:>5} {:>6} | {:>8} {:>7} {:>6} | {:>6} {:>6} {:>8.4} | {:>5} {:>4} {:>4} {:>4}",
            r.loss_rate * 100.0,
            r.crashed_peers,
            r.stale_links,
            r.aggregation_completion * 100.0,
            r.dissemination_completion * 100.0,
            r.repair_reattached,
            r.repair_pruned,
            r.convergence_rounds,
            r.messages,
            r.retries,
            r.gave_up,
            r.heavy_before,
            r.heavy_after,
            r.residual_heavy_fraction,
            r.transfers,
            r.requeued,
            r.reassigned,
            r.abandoned,
        );
    }
    println!("fault sweep wall: {:.2}s", wall.as_secs_f64());

    let entry = serde_json::json!({
        "seed": args.seed,
        "scale": args.scale.name(),
        "rates": rates,
        "rows": rows,
    });
    merge_bench_json("faults", entry);
}

/// The `repro engine` phase: continuous operation — Poisson churn,
/// geometric load drift and 1% message loss playing against periodic +
/// emergency balancing on one virtual clock (DESIGN.md §6). Prints the
/// per-epoch time series and merges an `engine` entry into
/// BENCH_repro.json; every merged field except the wall-clock and thread
/// count is a pure function of the seed, so the entry is byte-stable
/// across machines and `--threads` settings.
fn run_engine_cmd(args: &Args, trace: &mut Trace, progress: &dyn ProgressSink) {
    assert!(
        args.figs.is_empty() && args.claims.is_empty(),
        "repro engine runs its own phase (figures/claims not supported)"
    );
    assert!(
        args.scale != Scale::Xl && args.scale != Scale::Xl2,
        "repro engine runs at full or small scale"
    );
    let cfg = proxbal_sim::EngineConfig {
        epochs: args.epochs.unwrap_or(50),
        ..proxbal_sim::EngineConfig::default()
    };
    let mut builder = Scenario::builder().seed(args.seed);
    if args.scale == Scale::Small {
        builder = builder.small().peers(512).landmarks(15);
    }
    let scenario = builder
        // Repeated balancing concentrates big virtual servers on the few
        // high-capacity peers; once one drifts heavy its servers fit no
        // light node — the case VS-splitting exists for (claim `drift`).
        .balancer(proxbal_core::BalancerConfig {
            max_splits: 256,
            ..proxbal_core::BalancerConfig::default()
        })
        .churn(proxbal_sim::churn::ChurnConfig::default())
        .drift(proxbal_sim::drift::DriftConfig::default())
        .faults(proxbal_sim::faults::FaultConfig::with_loss(
            0.01,
            args.seed ^ 0xE9_614E,
        ))
        .build();

    println!(
        "── engine: continuous operation, {} peers, {} epochs (seed {}) ──",
        scenario.peers, cfg.epochs, args.seed
    );
    let total = Instant::now();
    let mut prepared = scenario.prepare_run(args.threads, progress);
    let report =
        proxbal_sim::run_engine_with(&mut prepared, &cfg, trace, progress).expect("engine run");
    let total_wall = total.elapsed().as_secs_f64();

    println!(
        "{:>5} {:>6} {:>6} {:>5} | {:>4} {:>5} {:>5} {:>5} | {:>3} {:>6} {:>10} {:>5} {:>7} | {:>7} {:>5}",
        "epoch", "alive", "gini", "heavy", "join", "crash", "stale", "reatt", "bal", "passes",
        "moved", "xfers", "msgs", "desmsg", "retry"
    );
    for s in &report.samples {
        let bal = match (s.balanced, s.emergency) {
            (true, true) => "E",
            (true, false) => "*",
            _ => "-",
        };
        println!(
            "{:>5} {:>6} {:>6.3} {:>5} | {:>4} {:>5} {:>5} {:>5} | {:>3} {:>6} {:>10.3e} {:>5} {:>7} | {:>7} {:>5}",
            s.epoch,
            s.alive_peers,
            s.gini,
            s.heavy,
            s.joins,
            s.crashes,
            s.stale_links,
            s.repair_reattached,
            bal,
            s.balance_passes,
            s.moved,
            s.transfers,
            s.messages,
            s.des_messages,
            s.des_retries,
        );
    }
    println!(
        "joins {}   crashes {}   stale links {}   balances {} ({} emergency)",
        report.joins, report.crashes, report.stale_links, report.balances, report.emergencies
    );
    println!(
        "moved {:.3e}   transfers {}   messages {}   mean gini {:.4}   final heavy {}",
        report.total_moved,
        report.total_transfers,
        report.total_messages,
        report.mean_gini(),
        report.final_heavy()
    );
    println!("engine wall: {total_wall:.2}s");

    let entry = serde_json::json!({
        "seed": args.seed,
        "scale": args.scale.name(),
        "peers": scenario.peers,
        "epochs": cfg.epochs,
        "threads": args.threads,
        "total_wall_s": total_wall,
        "joins": report.joins,
        "crashes": report.crashes,
        "stale_links": report.stale_links,
        "balances": report.balances,
        "emergencies": report.emergencies,
        "total_moved": report.total_moved,
        "total_transfers": report.total_transfers,
        "total_messages": report.total_messages,
        "mean_gini": report.mean_gini(),
        "final_heavy": report.final_heavy(),
        "final_alive": report.samples.last().map_or(0, |s| s.alive_peers),
    });
    merge_bench_json("engine", entry);

    if let Some(path) = &args.json {
        let doc = serde_json::json!({
            "paper": "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)",
            "seed": args.seed,
            "scale": args.scale.name(),
            "results": serde_json::to_value(&report).expect("serialize engine report"),
        });
        std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
}

/// Writes the collected trace (chrome://tracing JSON at the `--trace` path,
/// newline-JSON event log next to it) and prints the summary table. A no-op
/// when `--trace` was not given, so plain runs stay byte-identical.
fn finish_trace(args: &Args, trace: &Trace) {
    let Some(path) = &args.trace else {
        return;
    };
    std::fs::write(path, trace.to_chrome_json()).expect("write trace json");
    let ndjson_path = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.ndjson"),
        None => format!("{path}.ndjson"),
    };
    std::fs::write(&ndjson_path, trace.to_ndjson()).expect("write trace ndjson");
    print!("{}", TraceSummary::of(trace));
    println!("wrote {path} (chrome://tracing) and {ndjson_path} (event log)");
}

/// Writes the `--profile <dir>` artifacts (DESIGN.md §5c). Deterministic:
/// `flame.virt.folded` + `flame.virt.speedscope.json` (virtual-time
/// weights, pure functions of the trace — byte-identical at any
/// `--threads`) and `trace_summary.txt`. Volatile: `flame.wall.folded` +
/// `resources.txt` (wall/CPU/allocation numbers). A no-op without
/// `--profile`.
fn finish_profile(args: &Args, trace: &Trace) {
    let Some(dir) = &args.profile else {
        return;
    };
    std::fs::create_dir_all(dir).expect("create profile directory");
    let write = |name: &str, data: String| {
        let path = std::path::Path::new(dir).join(name);
        std::fs::write(&path, data).expect("write profile artifact");
        println!("wrote {}", path.display());
    };
    let folded = proxbal_bench::fold_trace(trace);
    write("flame.virt.folded", folded.to_collapsed());
    write(
        "flame.virt.speedscope.json",
        folded.to_speedscope("repro (virtual time)"),
    );
    write("trace_summary.txt", TraceSummary::of(trace).to_string());
    let report = proxbal_profile::report();
    write("flame.wall.folded", report.to_folded_wall());
    let mut res = String::new();
    {
        use std::fmt::Write as _;
        let alloc = AllocSnapshot::global();
        let _ = writeln!(
            res,
            "allocations: {} calls, {} bytes",
            alloc.allocs, alloc.bytes
        );
        let _ = writeln!(
            res,
            "peak counted live bytes: {}",
            proxbal_profile::alloc::peak_live_bytes()
        );
        if let Some(b) = proxbal_profile::peak_rss_bytes() {
            let _ = writeln!(res, "peak rss bytes: {b}");
        }
        if let Some(cpu) = proxbal_profile::cpu_time() {
            let _ = writeln!(res, "cpu time: {:.2}s", cpu.as_secs_f64());
        }
        let _ = writeln!(res);
        res.push_str(&report.to_text());
    }
    write("resources.txt", res);
}

/// `repro analyze`: loads the run artifacts named on the command line,
/// then either prints the behavioral summary or — with `--gates` —
/// evaluates every gate file and exits nonzero on any violation.
fn run_analyze(args: &Args) {
    use proxbal_analyze::{evaluate_gates, parse_gate_file, render_table, Run};
    let mut run = Run::default();
    for path in &args.inputs {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        if let Err(e) = run.load(path, &text) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let Some(gate_path) = &args.gates else {
        if args.out.is_some() {
            eprintln!("--out only applies with --gates (the summary goes to stdout)");
            std::process::exit(2);
        }
        print!("{}", run.summarize());
        return;
    };
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let meta = std::fs::metadata(gate_path).unwrap_or_else(|e| {
        eprintln!("cannot read {gate_path}: {e}");
        std::process::exit(2);
    });
    if meta.is_dir() {
        for entry in std::fs::read_dir(gate_path).expect("readable gate directory") {
            let p = entry.expect("readable gate directory entry").path();
            if p.extension().is_some_and(|e| e == "toml") {
                files.push(p);
            }
        }
        files.sort();
        if files.is_empty() {
            eprintln!("{gate_path}: no *.toml gate files found");
            std::process::exit(2);
        }
    } else {
        files.push(gate_path.into());
    }
    let mut gates = Vec::new();
    for file in &files {
        let origin = file.display().to_string();
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {origin}: {e}");
            std::process::exit(2);
        });
        match parse_gate_file(&text, &origin) {
            Ok(parsed) => gates.extend(parsed),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    for gate in &gates {
        if !seen.insert(gate.name.clone()) {
            eprintln!("duplicate gate name {:?} across gate files", gate.name);
            std::process::exit(2);
        }
    }
    let results = evaluate_gates(&gates, &run.artifacts(), args.threads);
    print!("{}", render_table(&results));
    if let Some(out) = &args.out {
        let json = serde_json::to_string_pretty(&results).expect("serialize gate results");
        std::fs::write(out, json + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        });
    }
    if results.iter().any(|r| !r.pass) {
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.analyze {
        run_analyze(&args);
        return;
    }
    // Allocation accounting is on for every run (it only feeds stderr
    // heartbeats, volatile profile artifacts and schema-gated BENCH
    // fields, so stdout stays byte-identical); the phase profiler only
    // with --profile.
    proxbal_profile::enable_counting();
    if args.profile.is_some() {
        proxbal_profile::enable_profiler();
    }
    let stderr_sink;
    let progress: &dyn ProgressSink = if args.progress && !args.quiet {
        stderr_sink = StderrSink::default();
        &stderr_sink
    } else {
        &NullSink
    };
    let mut trace = Trace::new(args.trace.is_some() || args.profile.is_some(), "repro");
    if args.engine {
        {
            let _p = proxbal_profile::phase("engine");
            run_engine_cmd(&args, &mut trace, progress);
        }
        finish_trace(&args, &trace);
        finish_profile(&args, &trace);
        return;
    }
    if args.scale == Scale::Xl {
        {
            let _p = proxbal_profile::phase("xl");
            run_xl(&args, &mut trace, progress);
        }
        finish_trace(&args, &trace);
        finish_profile(&args, &trace);
        return;
    }
    if args.scale == Scale::Xl2 {
        {
            let _p = proxbal_profile::phase("xl2");
            run_xl2(&args, &mut trace, progress);
        }
        finish_trace(&args, &trace);
        finish_profile(&args, &trace);
        return;
    }
    if let Some(rate) = args.faults {
        {
            let _p = proxbal_profile::phase("faults");
            run_faults(&args, rate, &mut trace, progress);
        }
        if args.figs.is_empty() && args.claims.is_empty() {
            finish_trace(&args, &trace);
            finish_profile(&args, &trace);
            return;
        }
    }
    let mut phases: Vec<Phase> = Vec::new();
    for &fig in &args.figs {
        if (4..=8).contains(&fig) {
            phases.push(Phase::Fig(fig));
        } else {
            eprintln!("no figure {fig} in the paper's evaluation");
            std::process::exit(2);
        }
    }
    for claim in &args.claims {
        if ALL_CLAIMS.contains(&claim.as_str()) {
            phases.push(Phase::Claim(claim.clone()));
        } else {
            eprintln!(
                "unknown claim {claim} (expected one of: {})",
                ALL_CLAIMS.join(", ")
            );
            std::process::exit(2);
        }
    }

    // Phases are independent — each prepares its own scenario from the
    // master seed — so they run through the same engine as the inner
    // sweeps. With --timing they run one at a time so per-phase
    // wall-clocks are not distorted by concurrent phases.
    let phase_threads = if args.timing { 1 } else { args.threads };
    let total = Instant::now();
    let ran = proxbal_sim::parallel::map_items_traced(
        &phases,
        phase_threads,
        &mut trace,
        |_, phase, trace| {
            trace.relabel(&phase.key());
            // Worker threads have an empty phase stack, so each grid phase
            // profiles as its own root.
            let _p = proxbal_profile::phase(&phase.key());
            let t = Instant::now();
            let (text, value) = run_phase(phase, &args, trace);
            (text, value, t.elapsed())
        },
    );
    let total_wall = total.elapsed();

    let mut results = serde_json::Map::new();
    let mut timings = Vec::new();
    for (phase, (text, value, wall)) in phases.iter().zip(ran) {
        print!("{text}");
        let key = phase.key();
        let mut entry = serde_json::Map::new();
        entry.insert("phase".into(), serde_json::json!(key.clone()));
        entry.insert("wall_s".into(), serde_json::json!(wall.as_secs_f64()));
        if let Some(graphs) = value.get("graphs").and_then(serde_json::Value::as_u64) {
            entry.insert("graphs".into(), serde_json::json!(graphs));
            entry.insert(
                "graphs_per_s".into(),
                serde_json::json!(graphs as f64 / wall.as_secs_f64()),
            );
        }
        if let Some(m) = peak_messages(&value) {
            entry.insert("peak_messages".into(), serde_json::json!(m));
        }
        timings.push(serde_json::Value::Object(entry));
        results.insert(key, value);
    }

    if args.timing {
        println!("── Timing (wall-clock per phase) ──");
        for t in &timings {
            let phase = t
                .get("phase")
                .and_then(serde_json::Value::as_str)
                .unwrap_or("?");
            let wall = t
                .get("wall_s")
                .and_then(serde_json::Value::as_f64)
                .unwrap_or(0.0);
            match t.get("graphs_per_s").and_then(serde_json::Value::as_f64) {
                Some(gps) => println!("{phase:<18} {wall:>8.2}s  ({gps:.2} graphs/s)"),
                None => println!("{phase:<18} {wall:>8.2}s"),
            }
        }
        println!("{:<18} {:>8.2}s", "total", total_wall.as_secs_f64());
        // One top-level entry per scale, so full/small/xl/faults runs
        // coexist in the committed document.
        let entry = serde_json::json!({
            "seed": args.seed,
            "threads": args.threads,
            "total_wall_s": total_wall.as_secs_f64(),
            "phases": timings,
        });
        merge_bench_json(args.scale.name(), entry);
    }

    if let Some(path) = &args.json {
        let doc = serde_json::json!({
            "paper": "Zhu & Hu, Towards Efficient Load Balancing in Structured P2P Systems (IPDPS 2004)",
            "seed": args.seed,
            "scale": args.scale.name(),
            "results": serde_json::Value::Object(results),
        });
        std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize"))
            .expect("write json");
        println!("wrote {path}");
    }
    finish_trace(&args, &trace);
    finish_profile(&args, &trace);
}

fn fig4(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Figure 4: unit load per node before/after load balancing (Gaussian) ──"
    );
    let mut prepared = scenario(args, TopologyKind::None).prepare();
    let out = fig4_unit_load_traced(&mut prepared, trace);
    let before = Summary::of(&out.before);
    let after = Summary::of(&out.after);
    let heavy_before = out
        .report
        .before
        .get(&NodeClass::Heavy)
        .copied()
        .unwrap_or(0);
    let total = out.before.len();
    say!(
        o,
        "nodes: {total}   heavy before: {heavy_before} ({:.0}%)   heavy after: {}",
        100.0 * heavy_before as f64 / total as f64,
        out.report.heavy_after()
    );
    say!(
        o,
        "unit load before: mean {:10.1}  max {:10.1}  gini {:.3}",
        before.mean,
        before.max,
        gini(&out.before)
    );
    say!(
        o,
        "unit load after : mean {:10.1}  max {:10.1}  gini {:.3}",
        after.mean,
        after.max,
        gini(&out.after)
    );
    say!(
        o,
        "(paper: ~75% heavy before; all heavy become light after)\n"
    );
    let value = serde_json::json!({
        "nodes": total,
        "heavy_before": heavy_before,
        "heavy_after": out.report.heavy_after(),
        "gini_before": gini(&out.before),
        "gini_after": gini(&out.after),
        "unit_load_before": { "mean": before.mean, "max": before.max },
        "unit_load_after": { "mean": after.mean, "max": after.max },
    });
    (o, value)
}

fn fig56(args: &Args, pareto: bool, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    let (fig, label) = if pareto {
        (6, "Pareto")
    } else {
        (5, "Gaussian")
    };
    say!(
        o,
        "── Figure {fig}: load by capacity class before/after ({label}) ──"
    );
    let mut s = scenario(args, TopologyKind::None);
    if pareto {
        s.load = LoadModel::pareto(1_000_000.0);
    }
    let mut prepared = s.prepare();
    let out = fig56_class_loads_traced(&mut prepared, trace);
    say!(
        o,
        "{:>10} {:>6} {:>16} {:>16}",
        "capacity",
        "nodes",
        "mean load pre",
        "mean load post"
    );
    let mut classes = Vec::new();
    for (i, cap) in out.class_capacity.iter().enumerate() {
        let b = Summary::of(&out.before[i]);
        let a = Summary::of(&out.after[i]);
        say!(
            o,
            "{:>10} {:>6} {:>16.1} {:>16.1}",
            cap,
            b.count,
            b.mean,
            a.mean
        );
        classes.push(serde_json::json!({
            "capacity": cap, "nodes": b.count,
            "mean_load_before": b.mean, "mean_load_after": a.mean,
        }));
    }
    say!(
        o,
        "(paper: after balancing, load tracks the capacity skew)\n"
    );
    (
        o,
        serde_json::json!({ "workload": label, "classes": classes }),
    )
}

fn fig78(
    args: &Args,
    topology: TopologyKind,
    fig: u32,
    trace: &mut Trace,
) -> (String, serde_json::Value) {
    let mut o = String::new();
    let name = if fig == 7 { "ts5k-large" } else { "ts5k-small" };
    // The paper runs 10 independently generated graphs per topology and
    // pools them; do the same (in parallel) at full scale.
    let graphs = match args.scale {
        Scale::Full => 10,
        Scale::Small => 3,
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    say!(
        o,
        "── Figure {fig}: moved load vs transfer distance ({name}, {graphs} graphs) ──"
    );
    let base = scenario(args, topology);
    let out = fig78_replicated_traced(&base, graphs, args.threads, trace);
    say!(o, "proximity-aware   : {}", headline(&out.aware));
    say!(o, "proximity-ignorant: {}", headline(&out.ignorant));
    // Most runs fully balance; an occasional draw leaves a small residue of
    // heavy nodes the one-shot greedy pairing cannot place (their sheddable
    // virtual servers fit no remaining light node — the global slack at
    // ε = 0.05 is only 5%). Bound the residue instead of demanding zero.
    let residue = out.max_heavy_after as f64 / base.peers as f64;
    assert!(
        residue <= 0.02,
        "worst residual heavy fraction {residue:.4} exceeds 2%"
    );
    if out.max_heavy_after > 0 {
        say!(
            o,
            "  (worst run left {} of {} nodes heavy — {:.2}% residue)",
            out.max_heavy_after,
            base.peers,
            100.0 * residue
        );
    }
    say!(o, "\n  CDF of moved load (distance: aware | ignorant)");
    for d in [0u32, 1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50] {
        say!(
            o,
            "  <={d:>3} hops: {:6.1}% | {:6.1}%",
            (100.0 * out.aware.fraction_within(d)).max(0.0),
            (100.0 * out.ignorant.fraction_within(d)).max(0.0)
        );
    }
    let spread = |i: usize| {
        let vals: Vec<f64> = out
            .per_graph
            .iter()
            .map(|g| match i {
                0 => g.0,
                1 => g.1,
                _ => g.2,
            })
            .collect();
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(0.0f64, f64::max);
        (100.0 * lo, 100.0 * hi)
    };
    let (a2l, a2h) = spread(0);
    let (a10l, a10h) = spread(1);
    let (i10l, i10h) = spread(2);
    say!(o, "  per-graph spread: aware<=2 {a2l:.0}-{a2h:.0}%, aware<=10 {a10l:.0}-{a10h:.0}%, ignorant<=10 {i10l:.0}-{i10h:.0}%");
    if fig == 7 {
        say!(
            o,
            "(paper: aware ~67% within 2 hops, ~86% within 10; ignorant ~13% within 10)\n"
        );
    } else {
        say!(
            o,
            "(paper: aware still wins on ts5k-small, with a smaller margin)\n"
        );
    }
    let value = serde_json::json!({
        "topology": name,
        "graphs": graphs,
        "aware": { "cdf": out.aware.cdf(), "mean_distance": out.aware.mean_distance() },
        "ignorant": { "cdf": out.ignorant.cdf(), "mean_distance": out.ignorant.mean_distance() },
    });
    (o, value)
}

fn claim_rounds(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Claim (§5.2): LBI/VSA complete in O(log_K N) message rounds ──"
    );
    let sizes: Vec<usize> = match args.scale {
        Scale::Full => vec![256, 512, 1024, 2048, 4096],
        Scale::Small => vec![64, 128, 256, 512],
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    let rows = rounds_scaling_traced(&sizes, &[2, 8], args.seed, args.threads, trace);
    let json = serde_json::to_value(&rows).expect("serialize rows");
    say!(
        o,
        "{:>6} {:>8} {:>3} {:>10} {:>10} {:>10} {:>10}",
        "peers",
        "VSs",
        "K",
        "LBI rnds",
        "dissem",
        "VSA rnds",
        "log_K(M)"
    );
    for r in rows {
        say!(
            o,
            "{:>6} {:>8} {:>3} {:>10} {:>10} {:>10} {:>10.1}",
            r.peers,
            r.virtual_servers,
            r.k,
            r.lbi_rounds,
            r.dissemination_rounds,
            r.vsa_rounds,
            r.log_k_m
        );
    }
    say!(o);
    (o, json)
}

fn claim_repair(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Claim (§3.1.1): tree self-repairs in O(log_K N) rounds after crashes ──"
    );
    let peers = match args.scale {
        Scale::Full => 2048,
        Scale::Small => 256,
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    say!(
        o,
        "{:>6} {:>3} {:>8} {:>12} {:>12} {:>13}",
        "peers",
        "K",
        "crash %",
        "crash rnds",
        "regrow rnds",
        "height after"
    );
    // Each (K, crash fraction) cell reruns from the master seed —
    // independent, so the grid goes through the engine.
    let cells: Vec<(usize, f64)> = [2usize, 8]
        .iter()
        .flat_map(|&k| [0.1, 0.25, 0.5].iter().map(move |&f| (k, f)))
        .collect();
    let per_cell = proxbal_sim::parallel::map_items_traced(
        &cells,
        args.threads,
        trace,
        |_, &(k, frac), trace| {
            trace.relabel(&format!("k{k}_crash{frac}"));
            repair_after_crash_traced(peers, frac, k, args.seed, trace)
        },
    );
    let mut rows = Vec::new();
    for ((k, frac), row) in cells.iter().zip(per_cell) {
        say!(
            o,
            "{:>6} {:>3} {:>8.0} {:>12} {:>12} {:>13}",
            row.peers,
            k,
            frac * 100.0,
            row.crash_repair_rounds,
            row.join_repair_rounds,
            row.height_after
        );
        rows.push(serde_json::json!({
            "k": k, "crash_fraction": frac,
            "crash_repair_rounds": row.crash_repair_rounds,
            "join_repair_rounds": row.join_repair_rounds,
            "height_after": row.height_after,
        }));
    }
    say!(o);
    (o, serde_json::Value::Array(rows))
}

fn claim_baselines(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Baselines (§1.1): our scheme vs CFS-style shedding ──"
    );
    let mut s = scenario(args, TopologyKind::None);
    if args.scale == Scale::Full {
        s.peers = 1024; // CFS loop is O(rounds · peers); keep runtime sane
    }
    let prepared = s.prepare();
    let cmp = scheme_comparison(&prepared);
    trace.count("baseline_cfs_thrash_events", cmp.cfs_thrash_events as u64);
    trace.count("baseline_heavy_before", cmp.heavy_before as u64);
    trace.count("baseline_heavy_after", cmp.heavy_after as u64);
    say!(o, "unit-load gini before: {:.3}", cmp.gini_before);
    say!(
        o,
        "unit-load gini after (tree scheme): {:.3}",
        cmp.gini_tree
    );
    say!(
        o,
        "heavy nodes: {} -> {} (tree scheme)",
        cmp.heavy_before,
        cmp.heavy_after
    );
    say!(
        o,
        "CFS baseline: converged = {}, thrash events = {}",
        cmp.cfs_converged,
        cmp.cfs_thrash_events
    );
    say!(
        o,
        "(the paper criticizes CFS for exactly this load thrashing)\n"
    );
    let json = serde_json::to_value(&cmp).expect("serialize comparison");
    (o, json)
}

fn claim_ablations(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Ablations: design choices on ts5k-large (aware mode unless noted) ──"
    );
    let mut s = scenario(args, TopologyKind::Ts5kLarge);
    if args.scale == Scale::Full {
        s.peers = 2048; // 14 full-scale runs; keep runtime sane
    }
    let prepared = s.prepare();
    let rows = ablation_sweep_traced(&prepared, args.threads, trace);
    let json = serde_json::to_value(&rows).expect("serialize ablations");
    say!(
        o,
        "{:<40} {:>6} {:>12} {:>7} {:>7} {:>6}",
        "variant",
        "heavy",
        "moved load",
        "<=2",
        "<=10",
        "mean"
    );
    for r in rows {
        say!(
            o,
            "{:<40} {:>6} {:>12.3e} {:>6.1}% {:>6.1}% {:>6.2}",
            r.label,
            r.heavy_after,
            r.moved_load,
            100.0 * r.frac2,
            100.0 * r.frac10,
            r.mean_distance
        );
    }
    say!(o);
    (o, json)
}

fn claim_drift(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(o, "── Extension: periodic re-balancing under load drift ──");
    let peers = match args.scale {
        Scale::Full => 1024,
        Scale::Small => 256,
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    let mut s = scenario(args, TopologyKind::None);
    s.peers = peers;
    let mut prepared = s.prepare();
    let cfg = proxbal_sim::drift::DriftConfig {
        steps: 50,
        rebalance_every: 10,
        sigma: 0.1,
    };
    let balancer_cfg = proxbal_core::BalancerConfig {
        max_splits: 16,
        ..prepared.scenario.balancer
    };
    let mut rng = prepared.derived_rng(0xD21F7);
    let stats = proxbal_sim::drift::run_drift(
        &mut prepared.net,
        &mut prepared.loads,
        &cfg,
        balancer_cfg,
        None,
        &mut rng,
    );
    say!(
        o,
        "{} steps, rebalance every {}, sigma {}",
        cfg.steps,
        cfg.rebalance_every,
        cfg.sigma
    );
    let post: Vec<usize> = stats
        .timeline
        .iter()
        .filter(|s| s.moved > 0.0)
        .map(|s| s.heavy)
        .collect();
    say!(
        o,
        "heavy nodes right after each rebalance: {post:?} (peers: {peers})"
    );
    say!(
        o,
        "worst heavy count between rebalances: {}",
        stats.max_heavy()
    );
    say!(
        o,
        "total load moved across {} rebalances: {:.3e}",
        stats.rebalances,
        stats.total_moved
    );
    say!(o);
    trace.count("drift_rebalances", stats.rebalances as u64);
    trace.count_f64("drift_total_moved", stats.total_moved);
    trace.count("drift_max_heavy", stats.max_heavy() as u64);
    let value = serde_json::json!({
        "rebalances": stats.rebalances,
        "total_moved": stats.total_moved,
        "heavy_after_each_rebalance": post,
        "max_heavy": stats.max_heavy(),
    });
    (o, value)
}

fn claim_latency(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Timing: message-level wall-clock of the tree phases (ts5k-large) ──"
    );
    let sizes: Vec<usize> = match args.scale {
        Scale::Full => vec![1024, 4096],
        Scale::Small => vec![256],
        Scale::Xl | Scale::Xl2 => unreachable!("xl runs its own phase"),
    };
    let rows = proxbal_sim::experiments::protocol_latency_traced(
        &sizes,
        &[2, 8],
        &[0.0, 0.05],
        args.seed,
        args.threads,
        trace,
    );
    let json = serde_json::to_value(&rows).expect("serialize latency rows");
    say!(
        o,
        "{:>6} {:>3} {:>6} {:>12} {:>12} {:>10}",
        "peers",
        "K",
        "loss",
        "LBI time",
        "dissem time",
        "messages"
    );
    for r in rows {
        say!(
            o,
            "{:>6} {:>3} {:>6.2} {:>12} {:>12} {:>10}",
            r.peers,
            r.k,
            r.loss,
            r.aggregation,
            r.dissemination,
            r.messages
        );
    }
    say!(
        o,
        "(time in latency units: interdomain hop = 3, intradomain = 1)\n"
    );
    (o, json)
}

fn claim_overhead(args: &Args, trace: &mut Trace) -> (String, serde_json::Value) {
    let mut o = String::new();
    say!(
        o,
        "── Overhead: control messages and transfer bandwidth per phase ──"
    );
    let mut s = scenario(args, TopologyKind::Ts5kLarge);
    if args.scale == Scale::Full {
        s.peers = 2048;
    }
    let prepared = s.prepare();
    let underlay = prepared.underlay().unwrap();
    say!(
        o,
        "{:<12} {:>10} {:>10} {:>12} {:>10} {:>14}",
        "mode",
        "LBI msgs",
        "dissem",
        "record-hops",
        "notifies",
        "VST load·dist"
    );
    // The two modes start from identical clones of the prepared state with
    // their own derived RNGs — independent, so both go through the engine.
    let modes = [
        ("ignorant", proxbal_core::ProximityMode::Ignorant),
        (
            "aware",
            proxbal_core::ProximityMode::Aware(proxbal_core::ProximityParams::default()),
        ),
    ];
    let stats = proxbal_sim::parallel::map_items_traced(
        &modes,
        args.threads,
        trace,
        |_, &(name, mode), trace| {
            trace.relabel(name);
            let mut net = prepared.net.clone();
            let mut loads = prepared.loads.clone();
            let cfg = proxbal_core::BalancerConfig {
                mode,
                ..prepared.scenario.balancer
            };
            let mut rng = prepared.derived_rng(0x0F0F);
            let report = proxbal_core::LoadBalancer::new(cfg)
                .run_traced(&mut net, &mut loads, Some(underlay), &mut rng, trace)
                .expect("attached network");
            report.messages
        },
    );
    let mut rows = Vec::new();
    for ((name, _), m) in modes.iter().zip(stats) {
        say!(
            o,
            "{:<12} {:>10} {:>10} {:>12} {:>10} {:>14.3e}",
            name,
            m.lbi_messages,
            m.dissemination_messages,
            m.vsa_record_hops,
            m.vsa_notifications,
            m.vst_weighted_cost
        );
        rows.push(serde_json::json!({ "mode": name, "stats": m }));
    }
    say!(
        o,
        "(the aware mode's whole point: the VST column — bandwidth — collapses)\n"
    );
    (o, serde_json::Value::Array(rows))
}
