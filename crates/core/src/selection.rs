use proxbal_chord::VsId;

/// Chooses the subset of a heavy node's virtual servers to shed (§3.4):
/// minimize the total shed load `Σ L_{i,k}` subject to shedding at least
/// `excess` (so the node drops to its target). "This choice of virtual
/// servers on heavy nodes would minimize the total amount of load moved for
/// load balancing throughout the system."
///
/// This is a *minimum subset-sum ≥ threshold* problem. For realistic VS
/// counts (a node hosts `O(log N)` virtual servers) an exact branch-and-
/// bound over loads sorted descending is cheap; beyond
/// [`EXACT_LIMIT`] virtual servers a greedy that is within one virtual
/// server of optimal is used.
///
/// If even shedding everything cannot reach `excess`, all virtual servers
/// are returned (best effort).
pub fn choose_shed_set(vss: &[(VsId, f64)], excess: f64) -> Vec<VsId> {
    assert!(excess.is_finite());
    if excess <= 0.0 {
        return Vec::new();
    }
    let total: f64 = vss.iter().map(|&(_, l)| l).sum();
    if total < excess {
        return vss.iter().map(|&(v, _)| v).collect();
    }
    let mut sorted: Vec<(VsId, f64)> = vss.to_vec();
    sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
    if sorted.len() <= EXACT_LIMIT {
        exact(&sorted, excess)
    } else {
        greedy(&sorted, excess)
    }
}

/// Above this many virtual servers, fall back from exact search to greedy.
pub const EXACT_LIMIT: usize = 20;

/// Exact branch-and-bound: loads sorted descending, suffix sums for
/// pruning; explores "take / skip" per item, keeping the best feasible sum.
fn exact(sorted: &[(VsId, f64)], excess: f64) -> Vec<VsId> {
    let n = sorted.len();
    // suffix[i] = sum of loads from i to end.
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + sorted[i].1;
    }

    struct Search<'a> {
        sorted: &'a [(VsId, f64)],
        suffix: &'a [f64],
        excess: f64,
        best_sum: f64,
        best: Vec<bool>,
        current: Vec<bool>,
    }

    impl Search<'_> {
        fn run(&mut self, i: usize, sum: f64) {
            if sum >= self.excess {
                if sum < self.best_sum {
                    self.best_sum = sum;
                    self.best = self.current.clone();
                }
                return; // adding more only increases the sum
            }
            if i == self.sorted.len() {
                return;
            }
            // Prune: even taking everything left cannot reach the excess.
            if sum + self.suffix[i] < self.excess {
                return;
            }
            // Prune: the smallest feasible completion is already worse.
            if sum + self.sorted[i].1 >= self.best_sum {
                // Taking item i overshoots the best; skipping keeps sum the
                // same but later items are smaller — still explore skip.
                self.current[i] = false;
                self.run(i + 1, sum);
                return;
            }
            self.current[i] = true;
            self.run(i + 1, sum + self.sorted[i].1);
            self.current[i] = false;
            self.run(i + 1, sum);
        }
    }

    let mut search = Search {
        sorted,
        suffix: &suffix,
        excess,
        best_sum: f64::INFINITY,
        best: vec![false; n],
        current: vec![false; n],
    };
    search.run(0, 0.0);
    debug_assert!(search.best_sum.is_finite(), "total >= excess guaranteed");
    sorted
        .iter()
        .zip(&search.best)
        .filter(|&(_, &take)| take)
        .map(|(&(v, _), _)| v)
        .collect()
}

/// Greedy: walk loads descending, take an item only if still needed; the
/// final (smallest taken) item bounds the overshoot.
fn greedy(sorted: &[(VsId, f64)], excess: f64) -> Vec<VsId> {
    let mut out = Vec::new();
    let mut sum = 0.0;
    // First pass: take from the largest down while short of the excess.
    for &(v, l) in sorted {
        if sum >= excess {
            break;
        }
        out.push((v, l));
        sum += l;
    }
    // Second pass: drop items that became unnecessary (smallest first).
    let mut i = out.len();
    while i > 0 {
        i -= 1;
        if sum - out[i].1 >= excess {
            sum -= out[i].1;
            out.remove(i);
        }
    }
    out.into_iter().map(|(v, _)| v).collect()
}

/// Brute-force reference (exponential) used by tests.
#[cfg(test)]
pub fn brute_force_shed_set(vss: &[(VsId, f64)], excess: f64) -> f64 {
    let n = vss.len();
    assert!(n <= 20, "brute force limited to 20 items");
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        let sum: f64 = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| vss[i].1)
            .sum();
        if sum >= excess && sum < best {
            best = sum;
        }
    }
    best
}
