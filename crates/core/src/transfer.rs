use crate::error::Error;
use crate::lbi::LoadState;
use crate::pairing::{Assignment, RendezvousLists, ShedCandidate};
use proxbal_chord::{ChordNetwork, PeerId, PeerState, VsId};
use proxbal_topology::{DistanceOracle, LandmarkOracle};
use proxbal_trace::Trace;
use serde::{Deserialize, Serialize};

/// How VST accounts the physical distance of each transfer.
///
/// The exact scheme runs one bucket-queue Dijkstra per distinct endpoint —
/// the scale ceiling at millions of virtual servers. The hierarchical
/// scheme answers most pairs from landmark triangle-inequality bounds and
/// spends exact Dijkstra only where the bounds disagree *and* the source
/// covers enough uncertain pairs to be worth a full row (filter-then-
/// refine). Both are pure functions of their inputs, so either mode is
/// byte-identical at any thread count.
#[derive(Clone, Copy)]
pub enum TransferDistances<'a> {
    /// Every pair measured by exact Dijkstra rows (the default — existing
    /// outputs stay byte-identical).
    Exact(&'a DistanceOracle),
    /// Landmark bounds first, exact rows only for the
    /// highest-coverage uncertain sources.
    Approx {
        /// Exact oracle for the refinement rows.
        oracle: &'a DistanceOracle,
        /// Precomputed landmark vectors answering the filter stage.
        landmarks: &'a LandmarkOracle,
        /// How many distinct sources (on the cheaper endpoint side) get an
        /// exact Dijkstra row; the rest keep the landmark upper bound.
        refine_sources: usize,
    },
}

/// One executed virtual-server transfer (VST, §3.5).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// The assignment that was executed.
    pub assignment: Assignment,
    /// Physical distance between the shedding and receiving peers, in
    /// latency units (interdomain hop = 3, intradomain hop = 1). `None`
    /// when the run has no underlay topology.
    pub distance: Option<u32>,
}

/// Executes assignments against the network: each virtual server moves to
/// its assigned peer (a Chord *leave* + *join* at the same ring position),
/// its load riding along. Records the physical transfer distance when an
/// underlay oracle is available — the cost metric of Figures 7 and 8.
///
/// Assignments whose source peer no longer hosts the virtual server (e.g.
/// it crashed between VSA and VST) are skipped, mirroring the soft-state
/// tolerance of the protocol. Fails with
/// [`Error::UnattachedPeer`] when a distance is requested for a
/// peer that was never attached to the underlay.
pub fn execute_transfers(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
) -> Result<Vec<TransferRecord>, Error> {
    execute_transfers_threaded(net, loads, assignments, distances, auto_threads())
}

/// [`execute_transfers`] with an explicit worker-thread count for the
/// Dijkstra row batches of the distance memo. The memo is a pure function
/// of the assignment set and the oracles — its values (and therefore every
/// record) are identical at any `threads`; only the row-fill wall time
/// changes.
pub fn execute_transfers_threaded(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
    threads: usize,
) -> Result<Vec<TransferRecord>, Error> {
    // With an unbounded oracle cache, warm whole rows and query per
    // transfer. With a bounded cache, precompute every pair distance up
    // front in capacity-sized batches instead: peer attachments are
    // immutable, so the values are identical, and the per-transfer query
    // order (which interleaves both endpoints) can no longer thrash the
    // cache into recomputing rows. The approximate scheme always memoizes
    // up front (landmark filter, then exact refinement rows).
    let memo: Option<DistanceMemo> = match distances {
        Some(TransferDistances::Exact(o)) if o.capacity() > 0 => {
            Some(pair_distances_chunked(net, assignments, o, threads))
        }
        Some(TransferDistances::Exact(o)) => {
            precompute_endpoint_rows(net, assignments, o, threads);
            None
        }
        Some(TransferDistances::Approx {
            oracle,
            landmarks,
            refine_sources,
        }) => Some(pair_distances_approx(
            net,
            assignments,
            oracle,
            landmarks,
            refine_sources,
            threads,
        )),
        None => None,
    };
    let mut out = Vec::with_capacity(assignments.len());
    for &a in assignments {
        let vs = net.vs(a.vs);
        if !vs.alive || vs.host != a.from {
            continue; // stale assignment
        }
        if net.peer(a.to).state != proxbal_chord::PeerState::Alive {
            continue;
        }
        net.transfer_vs(a.vs, a.to);
        let distance = match distances {
            Some(d) => {
                let from = net.peer(a.from).underlay;
                let to = net.peer(a.to).underlay;
                if from == u32::MAX {
                    return Err(Error::UnattachedPeer(a.from));
                }
                if to == u32::MAX {
                    return Err(Error::UnattachedPeer(a.to));
                }
                let memoized = memo.as_ref().and_then(|m| m.get(&(from, to)).copied());
                Some(memoized.unwrap_or_else(|| match d {
                    TransferDistances::Exact(o) => o.distance(from, to),
                    TransferDistances::Approx { landmarks, .. } => landmarks.estimate(from, to),
                }))
            }
            None => None,
        };
        // Load rides with the virtual server; LoadState is keyed by VsId so
        // nothing to move — but assert the invariant in debug builds.
        debug_assert!((loads.vs_load(a.vs) - a.load).abs() < 1e-9 || a.load >= 0.0);
        out.push(TransferRecord {
            assignment: a,
            distance,
        });
    }
    Ok(out)
}

/// Like [`execute_transfers`], recording VST metrics into `trace`: the
/// `vst_load_per_hop` histogram (observation = physical distance, weight =
/// load moved at that distance), executed/skipped counters, and the moved
/// load and `Σ load·distance` cost as floating-point counters.
pub fn execute_transfers_traced(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
    trace: &mut Trace,
) -> Result<Vec<TransferRecord>, Error> {
    execute_transfers_traced_threaded(net, loads, assignments, distances, auto_threads(), trace)
}

/// [`execute_transfers_traced`] with an explicit worker-thread count (see
/// [`execute_transfers_threaded`]).
pub fn execute_transfers_traced_threaded(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
    threads: usize,
    trace: &mut Trace,
) -> Result<Vec<TransferRecord>, Error> {
    let out = execute_transfers_threaded(net, loads, assignments, distances, threads)?;
    if trace.is_enabled() {
        trace.count("vst_transfers", out.len() as u64);
        trace.count("vst_skipped", (assignments.len() - out.len()) as u64);
        trace.count_f64("vst_moved_load", total_moved_load(&out));
        trace.count_f64("vst_weighted_cost", weighted_cost(&out));
        for t in &out {
            if let Some(d) = t.distance {
                trace.record_weighted("vst_load_per_hop", u64::from(d), t.assignment.load);
            }
        }
    }
    Ok(out)
}

/// Accounting of a fault-tolerant VST round
/// ([`execute_transfers_with_requeue`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RequeueOutcome {
    /// Every transfer that executed (first pass plus re-pairings).
    pub transfers: Vec<TransferRecord>,
    /// Assignments whose receiving peer was dead at execution time and
    /// that were re-offered at the next-higher rendezvous.
    pub requeued: usize,
    /// Of the requeued, how many found a surviving light slot and moved.
    pub reassigned: usize,
    /// Of the requeued, how many found no room and stayed put (they will
    /// be picked up by the next balancing round).
    pub abandoned: usize,
}

/// Fault-tolerant variant of [`execute_transfers`]: an assignment whose
/// receiving peer died between VSA and VST is not silently skipped but
/// **requeued at the next-higher rendezvous** — its shed candidate is
/// re-inserted into `spare` (the surviving light slots that bubbled up to
/// the root during the sweep) and re-paired best-fit, exactly as the
/// rendezvous point itself would have done had the failure been known
/// (§3.4's graceful degradation). Deterministic: both lists are sorted and
/// the re-pairing is the same best-fit walk as the in-sweep pairing.
///
/// The default [`execute_transfers`] path is untouched — fault-free runs
/// stay byte-identical.
pub fn execute_transfers_with_requeue(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
    spare: &mut RendezvousLists,
    l_min: f64,
) -> Result<RequeueOutcome, Error> {
    execute_transfers_with_requeue_traced(
        net,
        loads,
        assignments,
        distances,
        spare,
        l_min,
        &mut Trace::disabled(),
    )
}

/// Like [`execute_transfers_with_requeue`], recording VST metrics (see
/// [`execute_transfers_traced`]) plus `requeue_requeued` /
/// `requeue_reassigned` / `requeue_abandoned` counters into `trace`.
pub fn execute_transfers_with_requeue_traced(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    assignments: &[Assignment],
    distances: Option<TransferDistances<'_>>,
    spare: &mut RendezvousLists,
    l_min: f64,
    trace: &mut Trace,
) -> Result<RequeueOutcome, Error> {
    let transfers = execute_transfers_traced(net, loads, assignments, distances, trace)?;
    // Assignments still valid on the shedding side whose receiver died.
    let mut requeued = 0usize;
    for a in assignments {
        let vs = net.vs(a.vs);
        if vs.alive && vs.host == a.from && net.peer(a.to).state != PeerState::Alive {
            spare.push_shed(ShedCandidate {
                load: a.load,
                vs: a.vs,
                from: a.from,
            });
            requeued += 1;
        }
    }
    let mut outcome = RequeueOutcome {
        transfers,
        requeued,
        reassigned: 0,
        abandoned: 0,
    };
    if requeued == 0 {
        return Ok(outcome);
    }
    let mut extra = Vec::new();
    spare.pair_into_traced(l_min, &mut extra, trace);
    // Dead light peers may linger in `spare` too; the executor's liveness
    // filter drops those pairings, leaving the candidate for next round.
    let executed = execute_transfers_traced(net, loads, &extra, distances, trace)?;
    outcome.reassigned = executed.len();
    outcome.abandoned = requeued - outcome.reassigned;
    outcome.transfers.extend(executed);
    trace.count("requeue_requeued", outcome.requeued as u64);
    trace.count("requeue_reassigned", outcome.reassigned as u64);
    trace.count("requeue_abandoned", outcome.abandoned as u64);
    Ok(outcome)
}

type DistanceMemo = std::collections::HashMap<(u32, u32), u32>;

/// Worker count used by the legacy (thread-agnostic) entry points: all
/// available cores, as before the explicit `threads` plumbing.
fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Collects the `(from, to)` attachment pairs of the assignments that look
/// executable right now (same filter [`execute_transfers`] applies).
fn endpoint_pairs(net: &ChordNetwork, assignments: &[Assignment]) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(assignments.len());
    for a in assignments {
        let vs = net.vs(a.vs);
        if !vs.alive || vs.host != a.from {
            continue;
        }
        if net.peer(a.to).state != proxbal_chord::PeerState::Alive {
            continue;
        }
        let from = net.peer(a.from).underlay;
        let to = net.peer(a.to).underlay;
        if from != u32::MAX && to != u32::MAX {
            pairs.push((from, to));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Computes every endpoint-pair distance through a **bounded** oracle cache
/// without thrashing it: distinct sources on the cheaper side are processed
/// in batches of at most half the cache capacity, each batch's rows filled
/// once (in parallel) and drained into a flat pair→distance memo before the
/// next batch may evict them.
fn pair_distances_chunked(
    net: &ChordNetwork,
    assignments: &[Assignment],
    oracle: &DistanceOracle,
    threads: usize,
) -> DistanceMemo {
    let pairs = endpoint_pairs(net, assignments);
    let mut froms: Vec<u32> = pairs.iter().map(|&(f, _)| f).collect();
    let mut tos: Vec<u32> = pairs.iter().map(|&(_, t)| t).collect();
    froms.sort_unstable();
    froms.dedup();
    tos.sort_unstable();
    tos.dedup();
    // One Dijkstra per distinct node on the smaller side covers every pair.
    let by_to = tos.len() <= froms.len();
    let mut by_src: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for &(f, t) in &pairs {
        let (src, other) = if by_to { (t, f) } else { (f, t) };
        by_src.entry(src).or_default().push(other);
    }
    let sources: Vec<u32> = by_src.keys().copied().collect();
    let batch = (oracle.capacity() / 2).max(1);
    let mut memo = DistanceMemo::with_capacity(pairs.len());
    for chunk in sources.chunks(batch) {
        oracle.precompute(chunk, threads);
        for &src in chunk {
            let row = oracle.row(src);
            for &other in &by_src[&src] {
                let (f, t) = if by_to { (other, src) } else { (src, other) };
                memo.insert((f, t), row.get(other as usize));
            }
        }
    }
    memo
}

/// Filter-then-refine pair distances for [`TransferDistances::Approx`].
///
/// **Filter**: every endpoint pair gets landmark triangle-inequality
/// bounds; pairs whose lower and upper bounds meet are exact for free.
/// **Refine**: the remaining uncertain pairs are grouped by their cheaper
/// endpoint side (fewer distinct sources), sources are ranked by how many
/// uncertain pairs a full row would settle (ties by ascending id), and only
/// the top `refine_sources` of them get exact Dijkstra rows — chunked
/// through the bounded cache like the exact path. Pairs left over keep the
/// landmark upper bound. Every step is a pure function of the assignment
/// set and the oracles, so the memo is identical at any thread count.
fn pair_distances_approx(
    net: &ChordNetwork,
    assignments: &[Assignment],
    oracle: &DistanceOracle,
    landmarks: &LandmarkOracle,
    refine_sources: usize,
    threads: usize,
) -> DistanceMemo {
    let pairs = endpoint_pairs(net, assignments);
    let mut memo = DistanceMemo::with_capacity(pairs.len());
    let mut uncertain: Vec<(u32, u32)> = Vec::new();
    for &(f, t) in &pairs {
        let (lo, hi) = landmarks.bounds(f, t);
        if lo == hi {
            memo.insert((f, t), hi);
        } else {
            uncertain.push((f, t));
        }
    }
    if !uncertain.is_empty() && refine_sources > 0 {
        let mut froms: Vec<u32> = uncertain.iter().map(|&(f, _)| f).collect();
        let mut tos: Vec<u32> = uncertain.iter().map(|&(_, t)| t).collect();
        froms.sort_unstable();
        froms.dedup();
        tos.sort_unstable();
        tos.dedup();
        let by_to = tos.len() <= froms.len();
        let mut by_src: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for &(f, t) in &uncertain {
            let (src, other) = if by_to { (t, f) } else { (f, t) };
            by_src.entry(src).or_default().push(other);
        }
        let mut ranked: Vec<(u32, usize)> = by_src.iter().map(|(&s, v)| (s, v.len())).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut chosen: Vec<u32> = ranked
            .iter()
            .take(refine_sources)
            .map(|&(s, _)| s)
            .collect();
        chosen.sort_unstable();
        let batch = match oracle.capacity() {
            0 => chosen.len().max(1),
            cap => (cap / 2).max(1),
        };
        for chunk in chosen.chunks(batch) {
            oracle.precompute(chunk, threads);
            for &src in chunk {
                let row = oracle.row(src);
                for &other in &by_src[&src] {
                    let (f, t) = if by_to { (other, src) } else { (src, other) };
                    memo.insert((f, t), row.get(other as usize));
                }
            }
        }
    }
    for (f, t) in uncertain {
        memo.entry((f, t))
            .or_insert_with(|| landmarks.bounds(f, t).1);
    }
    memo
}

/// Batch-fills oracle rows for the cheaper side of the transfer endpoints.
///
/// Every transfer needs `distance(from, to)`. The oracle answers a point
/// query from either endpoint's cached row (the graph is undirected), so
/// one Dijkstra per *distinct* attachment on the smaller side covers every
/// pair — typically the receiving light nodes, a ~3× smaller set than the
/// shedding heavy nodes.
fn precompute_endpoint_rows(
    net: &ChordNetwork,
    assignments: &[Assignment],
    oracle: &DistanceOracle,
    threads: usize,
) {
    let mut froms: Vec<u32> = Vec::with_capacity(assignments.len());
    let mut tos: Vec<u32> = Vec::with_capacity(assignments.len());
    for a in assignments {
        let vs = net.vs(a.vs);
        if !vs.alive || vs.host != a.from {
            continue;
        }
        if net.peer(a.to).state != proxbal_chord::PeerState::Alive {
            continue;
        }
        let from = net.peer(a.from).underlay;
        let to = net.peer(a.to).underlay;
        if from != u32::MAX && to != u32::MAX {
            froms.push(from);
            tos.push(to);
        }
    }
    froms.sort_unstable();
    froms.dedup();
    tos.sort_unstable();
    tos.dedup();
    let smaller = if tos.len() <= froms.len() {
        &tos
    } else {
        &froms
    };
    oracle.precompute(smaller, threads);
}

/// Total load moved across a set of transfers.
pub fn total_moved_load(transfers: &[TransferRecord]) -> f64 {
    transfers.iter().map(|t| t.assignment.load).sum()
}

/// Load-weighted transfer cost: `Σ load·distance` (only counting transfers
/// with a known distance).
pub fn weighted_cost(transfers: &[TransferRecord]) -> f64 {
    transfers
        .iter()
        .filter_map(|t| t.distance.map(|d| t.assignment.load * f64::from(d)))
        .sum()
}

/// Gracefully removes a peer from the overlay: each of its virtual servers
/// leaves the ring and the objects it held (modelled as its load) are
/// handed to the virtual server absorbing its region — a Chord *leave*
/// with data handover, in contrast to [`ChordNetwork::crash_peer`] where
/// the load vanishes with the node (no replication is modelled).
///
/// Returns the total load handed over.
pub fn graceful_leave(net: &mut ChordNetwork, loads: &mut LoadState, peer: PeerId) -> f64 {
    let vss: Vec<VsId> = net.vss_of(peer).to_vec();
    let mut handed = 0.0;
    // Drop one VS at a time so each region's absorber is the live owner at
    // that instant (matters when the peer owns adjacent regions).
    for v in vss {
        let load = loads.vs_load(v);
        let pos = net.vs(v).position;
        net.drop_vs(v);
        loads.set_vs_load(v, 0.0);
        if let Some(absorber) = net.ring().owner(pos) {
            loads.add_vs_load(absorber, load);
            handed += load;
        }
    }
    net.leave_peer(peer);
    handed
}

/// Settles the load books after a virtual server joins the ring: the new
/// virtual server's region was carved out of its successor's region, so
/// the successor's load (its objects) moves in proportion to the region
/// fraction taken. Returns the load moved to the new virtual server.
pub fn absorb_join(net: &ChordNetwork, loads: &mut LoadState, new_vs: VsId) -> f64 {
    let position = net.vs(new_vs).position;
    let Some((_, successor)) = net.ring().successor_after(position) else {
        return 0.0; // sole virtual server on the ring
    };
    if successor == new_vs {
        return 0.0;
    }
    let new_len = net.region_of(new_vs).len() as f64;
    let succ_len = net.region_of(successor).len() as f64;
    let succ_load = loads.vs_load(successor);
    let moved = succ_load * new_len / (new_len + succ_len);
    loads.set_vs_load(successor, succ_load - moved);
    loads.add_vs_load(new_vs, moved);
    moved
}
