//! Proximity-aware load balancing for structured P2P systems — the primary
//! contribution of Zhu & Hu (IPDPS 2004), built on the substrates in the
//! sibling crates (`proxbal-chord`, `proxbal-ktree`, `proxbal-hilbert`,
//! `proxbal-topology`, `proxbal-workload`).
//!
//! The scheme runs in four phases (§1.2):
//!
//! 1. **LBI aggregation** — per-node `<L_i, C_i, L_{i,min}>` triples flow up
//!    the K-nary tree to the root ([`Lbi`], [`KTree::aggregate`]).
//! 2. **Node classification** — the system `<L, C, L_min>` is disseminated
//!    and every node classifies itself heavy / light / neutral against its
//!    capacity-proportional target ([`ClassifyParams`], [`NodeClass`]).
//! 3. **Virtual server assignment (VSA)** — heavy nodes pick minimum-load
//!    shed sets ([`choose_shed_set`]); records meet at rendezvous points in
//!    a bottom-up sweep ([`RendezvousLists`], [`run_vsa`]). In
//!    proximity-aware mode records are published at each node's Hilbert
//!    number first ([`reports::proximity_inputs`]).
//! 4. **Virtual server transferring (VST)** — assignments execute as Chord
//!    leave+join moves, with physical transfer distances recorded
//!    ([`execute_transfers`]).
//!
//! [`LoadBalancer`] orchestrates all four phases; [`baselines`] implements
//! the comparators (CFS shedding, proximity-blind random matching).
//!
//! [`KTree::aggregate`]: proxbal_ktree::KTree::aggregate
//!
//! # Example
//!
//! ```
//! use proxbal_chord::ChordNetwork;
//! use proxbal_core::{BalancerConfig, LoadBalancer, LoadState};
//! use proxbal_workload::{CapacityProfile, LoadModel};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut net = ChordNetwork::new();
//! for _ in 0..64 {
//!     net.join_peer(5, &mut rng);
//! }
//! let mut loads = LoadState::generate(
//!     &net,
//!     &CapacityProfile::gnutella(),
//!     &LoadModel::gaussian(1e6, 1e4),
//!     &mut rng,
//! );
//! let balancer = LoadBalancer::new(BalancerConfig::default());
//! let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
//! assert!(report.heavy_after() <= report.before[&proxbal_core::NodeClass::Heavy]);
//! ```

mod balancer;
pub mod baselines;
mod classify;
mod error;
mod lbi;
mod pairing;
pub mod reports;
mod round;
mod selection;
mod split;
mod transfer;
mod vsa;

pub use balancer::{
    ApproxTransfer, BalanceReport, BalancerConfig, LoadBalancer, MessageStats, ProximityMode,
    Underlay,
};
pub use classify::{ClassifyParams, NodeClass};
pub use error::Error;
pub use lbi::{Lbi, LoadState};
pub use pairing::{Assignment, LightSlot, RendezvousLists, ShedCandidate};
pub use reports::{Classification, ProximityParams};
pub use round::{DirtySet, RoundCache, RoundWalls};
pub use selection::{choose_shed_set, EXACT_LIMIT};
pub use split::split_and_place;
pub use transfer::{
    absorb_join, execute_transfers, execute_transfers_threaded, execute_transfers_traced,
    execute_transfers_traced_threaded, execute_transfers_with_requeue,
    execute_transfers_with_requeue_traced, graceful_leave, total_moved_load, weighted_cost,
    RequeueOutcome, TransferDistances, TransferRecord,
};
pub use vsa::{run_vsa, run_vsa_traced, VsaOutcome, VsaParams};

#[cfg(test)]
mod tests;
