//! The unified error hierarchy of the balancing core.
//!
//! Every fallible protocol-level path — one-shot balancing runs, transfer
//! execution, and the continuous-operation engine built on top — reports
//! through [`Error`]. The variants cover conditions a caller can hit with a
//! half-configured network (in contrast to the programmer-error `assert!`s
//! on [`crate::BalancerConfig`] values), so they are recoverable by fixing
//! the setup rather than by catching a panic.

use proxbal_chord::PeerId;

/// Why a balancing operation could not proceed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A transfer endpoint has no underlay attachment, so its physical
    /// distance is undefined. Attach every peer
    /// (`ChordNetwork::attach`) before running with an oracle.
    UnattachedPeer(PeerId),
    /// The network has no alive peers, so there is nothing to aggregate:
    /// the system LBI `<L, C, L_min>` is undefined on an empty membership.
    EmptyNetwork,
    /// Proximity-aware balancing was requested without an underlay
    /// topology; landmark vectors cannot be measured.
    MissingUnderlay,
    /// A continuous-operation engine configuration is invalid (zero
    /// intervals, zero epochs, a non-positive emergency threshold, …).
    /// The message names the offending knob.
    InvalidEngineConfig(&'static str),
    /// A protocol simulation phase failed underneath a balancing run:
    /// `phase` names the stage (`"aggregation"`, `"dissemination"`, or
    /// `"loss-model"` for a misconfigured loss probability) and
    /// `reached`/`expected` carry its coverage when meaningful (both zero
    /// otherwise). Distinct from [`Error::EmptyNetwork`] — the membership
    /// was fine; the simulated protocol run underneath it was not.
    Protocol {
        /// Which protocol stage failed.
        phase: &'static str,
        /// Nodes the phase actually covered (0 when not a coverage error).
        reached: usize,
        /// Nodes the phase had to cover (0 when not a coverage error).
        expected: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnattachedPeer(p) => {
                write!(f, "peer {p:?} has no underlay attachment")
            }
            Error::EmptyNetwork => {
                write!(f, "no alive peers: the system LBI is undefined")
            }
            Error::MissingUnderlay => {
                write!(f, "proximity-aware balancing requires an underlay topology")
            }
            Error::InvalidEngineConfig(what) => {
                write!(f, "invalid engine configuration: {what}")
            }
            Error::Protocol {
                phase,
                reached,
                expected,
            } => {
                if *expected == 0 {
                    write!(f, "protocol {phase} failure")
                } else {
                    write!(
                        f,
                        "protocol {phase} fell short: covered {reached} of {expected} nodes"
                    )
                }
            }
        }
    }
}

impl std::error::Error for Error {}
