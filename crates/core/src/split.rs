//! Virtual-server splitting — the classic extension (from the Rao et al.
//! line of work the paper builds on) for shed candidates too loaded to fit
//! *any* light node: halve the virtual server and place the halves
//! separately. Off by default ([`crate::BalancerConfig::max_splits`] = 0)
//! to stay faithful to the paper; the ε = 0 ablation shows where it helps.

use crate::lbi::LoadState;
use crate::pairing::{Assignment, RendezvousLists, ShedCandidate};
use proxbal_chord::ChordNetwork;

/// Repeatedly pairs the leftover rendezvous lists, splitting the heaviest
/// unplaceable shed candidate in two (a [`ChordNetwork::split_vs`] at the
/// region midpoint, load divided proportionally to the sub-regions) until
/// everything is placed, no light capacity remains, or `max_splits` splits
/// have been spent. Returns the extra assignments produced.
pub fn split_and_place(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    unassigned: &mut RendezvousLists,
    l_min: f64,
    max_splits: usize,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    let mut splits = 0;
    let mut unsplittable: Vec<ShedCandidate> = Vec::new();

    loop {
        out.extend(unassigned.pair(l_min));
        if splits >= max_splits || unassigned.light().is_empty() {
            break;
        }
        // Heaviest remaining candidate (pair() left only misfits).
        let Some(&cand) = unassigned.shed().last() else {
            break;
        };
        // Can any slot even hold half of it? If not, splitting once more
        // cannot help this round either — but a deeper split might; only
        // bail when the largest slot couldn't hold a further-halved load
        // within the split budget. Simple conservative check: largest slot
        // must exceed load / 2^(remaining splits).
        let largest_slot = unassigned.light().last().map(|s| s.spare).unwrap_or(0.0);
        let remaining = (max_splits - splits) as i32;
        if largest_slot < cand.load / 2f64.powi(remaining.min(40)) {
            break;
        }

        // Pop it and split.
        let popped = pop_heaviest(unassigned);
        debug_assert_eq!(popped.vs, cand.vs);
        let region = net.region_of(cand.vs);
        if region.len() < 2 {
            unsplittable.push(cand);
            continue;
        }
        let new_vs = net.split_vs(cand.vs);
        splits += 1;
        let new_len = net.region_of(new_vs).len();
        let frac = new_len as f64 / region.len() as f64;
        let new_load = cand.load * frac;
        let rest_load = cand.load - new_load;
        loads.set_vs_load(new_vs, new_load);
        loads.set_vs_load(cand.vs, rest_load);
        unassigned.push_shed(ShedCandidate {
            load: new_load,
            vs: new_vs,
            from: cand.from,
        });
        unassigned.push_shed(ShedCandidate {
            load: rest_load,
            vs: cand.vs,
            from: cand.from,
        });
    }

    for cand in unsplittable {
        unassigned.push_shed(cand);
    }
    out
}

fn pop_heaviest(lists: &mut RendezvousLists) -> ShedCandidate {
    // RendezvousLists keeps shed sorted ascending; expose a pop via pair()
    // internals is not public, so rebuild: remove the last element.
    let cand = *lists.shed().last().expect("non-empty");
    lists.remove_shed(cand.vs);
    cand
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::LightSlot;
    use proxbal_chord::PeerId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_peer_net() -> (ChordNetwork, LoadState) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = ChordNetwork::new();
        net.join_peer(2, &mut rng);
        net.join_peer(2, &mut rng);
        let mut loads = LoadState::new();
        for (_, vs) in net.ring().iter() {
            loads.set_vs_load(vs, 10.0);
        }
        for p in net.alive_peers() {
            loads.set_capacity(p, 100.0);
        }
        (net, loads)
    }

    #[test]
    fn splits_oversized_candidate_into_placeable_halves() {
        let (mut net, mut loads) = two_peer_net();
        let heavy_vs = net.vss_of(PeerId(0))[0];
        loads.set_vs_load(heavy_vs, 100.0);

        let mut lists = RendezvousLists::new();
        lists.push_shed(ShedCandidate {
            load: 100.0,
            vs: heavy_vs,
            from: PeerId(0),
        });
        // Two slots of 60 each: the whole VS fits neither, halves fit both.
        lists.push_light(LightSlot {
            spare: 60.0,
            peer: PeerId(1),
        });
        lists.push_light(LightSlot {
            spare: 60.0,
            peer: PeerId(1),
        });

        let total_before: f64 = net.ring().iter().map(|(_, v)| loads.vs_load(v)).sum();
        let placed = split_and_place(&mut net, &mut loads, &mut lists, 1.0, 4);
        assert_eq!(placed.len(), 2, "both halves placed");
        assert!(lists.shed().is_empty());
        net.check_invariants().unwrap();
        let total_after: f64 = net.ring().iter().map(|(_, v)| loads.vs_load(v)).sum();
        assert!((total_before - total_after).abs() < 1e-9, "load conserved");
        // Loads of the halves are proportional to their sub-regions.
        let placed_load: f64 = placed.iter().map(|a| a.load).sum();
        assert!((placed_load - 100.0).abs() < 1e-9);
    }

    #[test]
    fn respects_split_budget() {
        let (mut net, mut loads) = two_peer_net();
        let heavy_vs = net.vss_of(PeerId(0))[0];
        loads.set_vs_load(heavy_vs, 100.0);
        let mut lists = RendezvousLists::new();
        lists.push_shed(ShedCandidate {
            load: 100.0,
            vs: heavy_vs,
            from: PeerId(0),
        });
        // Slot only fits a quarter: needs 2 splits, budget allows 0.
        lists.push_light(LightSlot {
            spare: 26.0,
            peer: PeerId(1),
        });
        let placed = split_and_place(&mut net, &mut loads, &mut lists, 1.0, 0);
        assert!(placed.is_empty());
        assert_eq!(lists.shed().len(), 1, "candidate untouched at budget 0");
    }

    #[test]
    fn gives_up_when_no_light_capacity() {
        let (mut net, mut loads) = two_peer_net();
        let heavy_vs = net.vss_of(PeerId(0))[0];
        loads.set_vs_load(heavy_vs, 100.0);
        let mut lists = RendezvousLists::new();
        lists.push_shed(ShedCandidate {
            load: 100.0,
            vs: heavy_vs,
            from: PeerId(0),
        });
        let before = net.alive_vs_count();
        let placed = split_and_place(&mut net, &mut loads, &mut lists, 1.0, 8);
        assert!(placed.is_empty());
        assert_eq!(net.alive_vs_count(), before, "no pointless splits");
    }
}
