//! Incremental balancing rounds for continuous operation.
//!
//! A one-shot [`LoadBalancer::run`] treats every peer as brand new: each
//! one draws a fresh reporting virtual server and pushes its LBI up the
//! tree. Under continuous operation (§3.2's *periodic* reporting) that is
//! wasteful — between rounds only a few peers change, and only *their*
//! reports travel. [`LoadBalancer::run_round`] captures this: a
//! [`RoundCache`] remembers each peer's report binding across rounds and a
//! [`DirtySet`] names the peers whose load, capacity, or membership
//! changed, so unchanged peers neither consume randomness nor generate
//! upward messages.
//!
//! The one-shot entry points delegate here with [`DirtySet::All`] and a
//! throwaway cache, so there is exactly one four-phase code path and the
//! legacy output is structurally byte-identical.

use crate::classify::{ClassifyParams, NodeClass};
use crate::error::Error;
use crate::lbi::LoadState;
use crate::reports::{
    ignorant_inputs, light_slots_with, proximity_inputs_with, shed_candidates_with, Classification,
};
use crate::transfer::execute_transfers_traced_threaded;
use crate::vsa::{run_vsa_traced, VsaParams};
use crate::{BalanceReport, LoadBalancer, MessageStats, ProximityMode, Underlay};
use proxbal_chord::{ChordNetwork, PeerId, VsId};
use proxbal_ktree::KTree;
use proxbal_trace::Trace;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

/// Wall-clock seconds of each intra-round phase, measured by
/// [`LoadBalancer::run_round_walls`]. Walls travel as an out-parameter —
/// never inside [`BalanceReport`] or the trace — because they are
/// inherently nondeterministic, while everything the round *returns* must
/// stay byte-identical at any thread count.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundWalls {
    /// Report rebinding + per-peer LBI generation (phase 1 up to the tree).
    pub lbi_wall_s: f64,
    /// The bottom-up tree aggregation of the LBIs.
    pub aggregate_wall_s: f64,
    /// Classification, shed/light extraction, VSA input publication and
    /// the rendezvous sweep (phases 2–3).
    pub vsa_wall_s: f64,
    /// Transfer execution including distance accounting (phase 4).
    pub transfer_wall_s: f64,
}

/// Fixed per-peer chunk size of the intra-round parallel sweeps. A chunk is
/// the unit a worker claims; results are drained in chunk order, so the
/// size must **never** depend on the thread count (that would change the
/// drain order and with it f64 associations).
const PEER_CHUNK: usize = 8192;

/// Which peers changed since the last balancing round.
#[derive(Clone, Debug)]
pub enum DirtySet {
    /// Every peer re-reports — a cold start, or a one-shot run.
    All,
    /// Only these peers changed; everyone else re-uses its cached report
    /// binding and sends nothing up the tree.
    Peers(BTreeSet<PeerId>),
}

impl DirtySet {
    /// Whether `p` must redraw its reporting virtual server this round.
    pub fn contains(&self, p: PeerId) -> bool {
        match self {
            DirtySet::All => true,
            DirtySet::Peers(set) => set.contains(&p),
        }
    }
}

/// Per-peer soft state the periodic reporting protocol keeps between
/// rounds: the virtual server each peer last reported through. A peer
/// keeps its binding until it goes dirty, its virtual server dies, or the
/// virtual server moves to another host.
#[derive(Clone, Debug, Default)]
pub struct RoundCache {
    reports: BTreeMap<PeerId, VsId>,
}

impl RoundCache {
    /// An empty cache (every peer reports fresh on the first round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of peers with a live report binding.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no peer has a report binding yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Drops a peer's binding (e.g. when it leaves the overlay).
    pub fn forget(&mut self, p: PeerId) {
        self.reports.remove(&p);
    }
}

impl LoadBalancer {
    /// One incremental balancing round over a long-lived tree: peers in
    /// `dirty` redraw their reporting virtual server and re-report, all
    /// others reuse the binding in `cache`. See [`LoadBalancer::run`] for
    /// the phase structure; `underlay` and `rng` behave identically.
    ///
    /// With [`DirtySet::All`] and a fresh cache this is exactly a one-shot
    /// run — the legacy entry points delegate here.
    #[allow(clippy::too_many_arguments)]
    pub fn run_round<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        cache: &mut RoundCache,
        dirty: &DirtySet,
        rng: &mut R,
    ) -> Result<BalanceReport, Error> {
        self.run_round_traced(
            net,
            loads,
            tree,
            underlay,
            cache,
            dirty,
            rng,
            &mut Trace::disabled(),
        )
    }

    /// Like [`LoadBalancer::run_round`], recording per-phase spans and
    /// counters into `trace`.
    ///
    /// The four phases are laid out sequentially on a virtual timeline whose
    /// unit is one message round: tree maintenance, then `phase/lbi`
    /// (duration = aggregation rounds), `phase/classify` (dissemination
    /// rounds), `phase/vsa` (sweep rounds) and `phase/vst` (the maximum
    /// physical transfer distance, since transfers run in parallel).
    /// `lbi_messages` counts only the tree edges the *re-reporting* peers'
    /// LBIs crossed — under a small dirty set most of the tree stays quiet,
    /// the paper's periodic-report economy.
    #[allow(clippy::too_many_arguments)]
    pub fn run_round_traced<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        cache: &mut RoundCache,
        dirty: &DirtySet,
        rng: &mut R,
        trace: &mut Trace,
    ) -> Result<BalanceReport, Error> {
        self.run_round_walls(
            net,
            loads,
            tree,
            underlay,
            cache,
            dirty,
            rng,
            trace,
            &mut RoundWalls::default(),
        )
    }

    /// Like [`LoadBalancer::run_round_traced`], additionally measuring the
    /// wall-clock seconds of each phase into `walls` (see [`RoundWalls`]).
    ///
    /// # Intra-round parallelism
    ///
    /// The per-peer sweeps (LBI generation, classification, shed/light
    /// extraction) and the tree aggregation run on
    /// [`LoadBalancer::threads`] workers. Determinism is preserved by a
    /// three-pass structure: a serial pass performs every RNG draw and
    /// cache mutation in original peer order; a parallel pass computes
    /// pure per-peer values over fixed-size chunks; a serial drain merges
    /// the chunk buffers in chunk order — reproducing the serial loop's
    /// exact iteration order, including every f64 association and map
    /// insertion sequence. Chunk sizes are compile-time constants, never
    /// derived from the thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_round_walls<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        cache: &mut RoundCache,
        dirty: &DirtySet,
        rng: &mut R,
        trace: &mut Trace,
        walls: &mut RoundWalls,
    ) -> Result<BalanceReport, Error> {
        let cfg = self.config();
        let threads = self.threads();
        assert_eq!(tree.k(), cfg.k, "tree degree must match the config");
        let mut clock = tree.maintain_until_stable_traced(net, 256, 0, trace) as u64;
        let params = ClassifyParams {
            epsilon: cfg.epsilon,
        };
        let tree = &*tree;

        // Phase 1: LBI aggregation. Each peer reports through the KT leaf of
        // one chosen virtual server (§3.2) — dirty peers choose at random,
        // clean peers keep their cached binding. A peer that currently
        // hosts no virtual servers (it shed everything in an earlier pass)
        // reports through the root directly — in a real deployment it would
        // retain an empty virtual-server registration; losing its capacity
        // from the aggregate would silently inflate every target.
        let alive = net.alive_peers();
        {
            let alive_set: BTreeSet<PeerId> = alive.iter().copied().collect();
            cache.reports.retain(|p, _| alive_set.contains(p));
        }
        // Pass A (serial): every RNG draw and cache mutation, in original
        // peer order — redraw decisions are exactly the serial loop's.
        let wall = Instant::now();
        let prof = proxbal_profile::phase("round/lbi");
        let mut decisions: Vec<(PeerId, Option<VsId>, bool)> = Vec::with_capacity(alive.len());
        for p in alive {
            use rand::seq::SliceRandom;
            let cached = cache.reports.get(&p).copied().filter(|&v| {
                let vs = net.vs(v);
                vs.alive && vs.host == p
            });
            let (vs, re_reported) = if dirty.contains(p) || cached.is_none() {
                (net.vss_of(p).choose(rng).copied(), true)
            } else {
                (cached, false)
            };
            match vs {
                Some(v) => {
                    cache.reports.insert(p, v);
                }
                None => {
                    cache.reports.remove(&p);
                }
            }
            decisions.push((p, vs, re_reported));
        }
        // Pass B (parallel): report target (a root descent) and LBI triple
        // per peer — pure reads over fixed-size chunks.
        let lbi_chunks =
            proxbal_parallel::map_chunked(decisions.len(), PEER_CHUNK, threads, |range| {
                range
                    .map(|i| {
                        let (p, vs, _) = decisions[i];
                        let target = match vs {
                            Some(v) => tree.report_target(net, v),
                            None => tree.root(),
                        };
                        (target, loads.node_lbi(net, p))
                    })
                    .collect::<Vec<_>>()
            });
        // Pass C (serial drain in chunk order): merges happen in original
        // peer order, so per-target f64 associations are byte-identical to
        // the serial loop.
        //
        // LBIs are boxed so the dense per-node map costs one pointer per
        // arena slot — at million-peer scale the tree has tens of millions
        // of slots and the unboxed map alone would dwarf the arena.
        let mut lbi_inputs: proxbal_ktree::KtNodeMap<Box<crate::Lbi>> =
            proxbal_ktree::KtNodeMap::with_slot_bound(tree.slot_bound());
        let mut report_seeds: Vec<proxbal_ktree::KtNodeId> = Vec::new();
        {
            use proxbal_ktree::Merge;
            let mut i = 0usize;
            for chunk in lbi_chunks {
                for (target, lbi) in chunk {
                    if decisions[i].2 {
                        report_seeds.push(target);
                    }
                    i += 1;
                    match lbi_inputs.get_mut(target) {
                        Some(acc) => Merge::merge(&mut **acc, lbi),
                        None => {
                            lbi_inputs.insert(target, Box::new(lbi));
                        }
                    }
                }
            }
        }
        let peers = decisions.len();
        drop(decisions);
        // Count inter-peer tree edges on the re-reporting paths (each edge
        // carries exactly one aggregated LBI message; quiet peers' cached
        // contributions cost nothing).
        let lbi_messages = count_active_edges(net, tree, report_seeds.iter().copied());
        walls.lbi_wall_s = wall.elapsed().as_secs_f64();
        drop(prof);
        let lbi_input_count = lbi_inputs.len();
        let wall = Instant::now();
        let prof = proxbal_profile::phase("round/aggregate");
        let proxbal_ktree::AggregateOutcome {
            root_value,
            rounds: lbi_rounds,
            merges: lbi_merges,
            per_node,
        } = tree.aggregate_with(lbi_inputs, threads);
        drop(per_node); // free the per-node LBI views before phase 2 allocates
        walls.aggregate_wall_s = wall.elapsed().as_secs_f64();
        drop(prof);
        let system = *root_value.ok_or(Error::EmptyNetwork)?;
        trace.span_args(
            "phase/lbi",
            clock,
            u64::from(lbi_rounds),
            &[
                ("messages", lbi_messages.into()),
                ("merges", lbi_merges.into()),
            ],
        );
        // Parallel-section spans: args are pure functions of the workload
        // (peer count, fixed chunking, merge count) — never of the thread
        // count or wall time — so traces stay byte-identical at any
        // `--threads`.
        trace.span_args(
            "round/lbi",
            clock,
            u64::from(lbi_rounds),
            &[
                ("peers", peers.into()),
                (
                    "chunks",
                    proxbal_parallel::chunk_ranges(peers, PEER_CHUNK)
                        .len()
                        .into(),
                ),
            ],
        );
        trace.span_args(
            "round/aggregate",
            clock,
            u64::from(lbi_rounds),
            &[
                ("inputs", lbi_input_count.into()),
                ("merges", lbi_merges.into()),
            ],
        );
        trace.count("lbi_messages", lbi_messages as u64);
        trace.count("kt_aggregate_merges", lbi_merges as u64);
        clock += u64::from(lbi_rounds);

        // Phase 2: dissemination + classification (§3.3). Disseminating the
        // system LBI reaches every node in `max_message_depth` downward
        // rounds; materializing the per-node copies (what
        // `KTree::disseminate` returns) would be pure waste here, so only
        // the round count is computed.
        let wall = Instant::now();
        let prof = proxbal_profile::phase("round/vsa");
        let dissemination_rounds = tree.max_message_depth();
        let dissemination_messages = count_active_edges(net, tree, tree.iter_ids());
        let classification = Classification::compute_with(net, loads, &params, system, threads);
        let before = class_counts(&classification);
        let heavy_before = before.get(&NodeClass::Heavy).copied().unwrap_or(0);
        trace.span_args(
            "phase/classify",
            clock,
            u64::from(dissemination_rounds),
            &[
                ("messages", dissemination_messages.into()),
                ("heavy", heavy_before.into()),
            ],
        );
        trace.count("dissemination_messages", dissemination_messages as u64);
        trace.count("heavy_before", heavy_before as u64);
        clock += u64::from(dissemination_rounds);

        // Phase 3: VSA (§3.4 / §4.3).
        let shed = shed_candidates_with(net, loads, &params, &classification, threads);
        let light = light_slots_with(net, loads, &params, &classification, threads);
        let inputs = match cfg.mode {
            ProximityMode::Ignorant => ignorant_inputs(net, tree, &shed, &light, rng),
            ProximityMode::Aware(ref prox) => {
                let u = underlay.ok_or(Error::MissingUnderlay)?;
                proximity_inputs_with(
                    net,
                    tree,
                    &shed,
                    &light,
                    prox,
                    u.latency(),
                    u.landmarks,
                    threads,
                )
            }
        };
        let vsa_params = VsaParams {
            rendezvous_threshold: cfg.rendezvous_threshold,
            l_min: system.min_vs_load,
        };
        let mut vsa = run_vsa_traced(tree, inputs, &vsa_params, trace);

        // Optional extension: split unplaceable virtual servers and place
        // the halves (off unless `max_splits > 0`).
        if cfg.max_splits > 0 && !vsa.unassigned.shed().is_empty() {
            let extra = crate::split_and_place(
                net,
                loads,
                &mut vsa.unassigned,
                system.min_vs_load,
                cfg.max_splits,
            );
            trace.count("vsa_split_placed", extra.len() as u64);
            vsa.assignments.extend(extra);
        }
        trace.span_args(
            "phase/vsa",
            clock,
            u64::from(vsa.rounds),
            &[
                ("pairings", vsa.assignments.len().into()),
                ("record_hops", vsa.record_hops.into()),
                ("rendezvous_points", vsa.rendezvous_points.into()),
            ],
        );
        trace.span_args(
            "round/vsa",
            clock,
            u64::from(vsa.rounds),
            &[
                ("shed_peers", shed.len().into()),
                ("light_peers", light.len().into()),
                ("pairings", vsa.assignments.len().into()),
            ],
        );
        trace.count("vsa_record_hops", vsa.record_hops as u64);
        trace.count("vsa_notifications", 2 * vsa.assignments.len() as u64);
        clock += u64::from(vsa.rounds);
        walls.vsa_wall_s = wall.elapsed().as_secs_f64();
        drop(prof);

        // Phase 4: VST (§3.5).
        let wall = Instant::now();
        let prof = proxbal_profile::phase("round/transfer");
        let transfers = execute_transfers_traced_threaded(
            net,
            loads,
            &vsa.assignments,
            underlay.map(|u| u.transfer_distances()),
            threads,
            trace,
        )?;
        let vst_dur = transfers
            .iter()
            .filter_map(|t| t.distance)
            .max()
            .map_or(0, u64::from);
        trace.span_args(
            "phase/vst",
            clock,
            vst_dur,
            &[
                ("transfers", transfers.len().into()),
                ("moved_load", crate::total_moved_load(&transfers).into()),
            ],
        );
        trace.span_args(
            "round/transfer",
            clock,
            vst_dur,
            &[
                ("assignments", vsa.assignments.len().into()),
                ("transfers", transfers.len().into()),
            ],
        );

        // Re-classify against the same system LBI for the after picture.
        let after_cls = Classification::compute_with(net, loads, &params, system, threads);
        let after = class_counts(&after_cls);
        walls.transfer_wall_s = wall.elapsed().as_secs_f64();
        drop(prof);
        trace.count(
            "heavy_after",
            after.get(&NodeClass::Heavy).copied().unwrap_or(0) as u64,
        );

        let messages = MessageStats {
            lbi_messages,
            dissemination_messages,
            vsa_record_hops: vsa.record_hops,
            vsa_notifications: 2 * vsa.assignments.len(),
            vst_weighted_cost: crate::weighted_cost(&transfers),
        };

        Ok(BalanceReport {
            system,
            lbi_rounds,
            dissemination_rounds,
            before,
            vsa,
            transfers,
            after,
            messages,
        })
    }
}

/// Counts tree edges between KT nodes planted on *different peers* along
/// the root paths of `seeds` (each edge counted once).
pub(crate) fn count_active_edges(
    net: &ChordNetwork,
    tree: &KTree,
    seeds: impl Iterator<Item = proxbal_ktree::KtNodeId>,
) -> usize {
    let mut visited = vec![false; tree.slot_bound()];
    let mut edges = 0;
    for seed in seeds {
        let mut cur = seed;
        while let Some(parent) = tree.node(cur).parent {
            let slot = cur.0 as usize;
            if std::mem::replace(&mut visited[slot], true) {
                break; // shared suffix already counted
            }
            let a = net.vs(tree.node(cur).host).host;
            let b = net.vs(tree.node(parent).host).host;
            if a != b {
                edges += 1;
            }
            cur = parent;
        }
    }
    edges
}

pub(crate) fn class_counts(c: &Classification) -> HashMap<NodeClass, usize> {
    let mut out = HashMap::new();
    for class in c.classes.values() {
        *out.entry(*class).or_insert(0) += 1;
    }
    out
}
