use proxbal_chord::{PeerId, VsId};
use proxbal_ktree::Merge;
use proxbal_trace::Trace;
use serde::{Deserialize, Serialize};

/// A virtual server a heavy node wants to shed:
/// `<L_{i,k}, v_{i,k}, ip_addr(i)>` of §3.4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShedCandidate {
    /// The virtual server's load `L_{i,k}`.
    pub load: f64,
    /// The virtual server `v_{i,k}`.
    pub vs: VsId,
    /// The heavy node shedding it (`ip_addr(i)` in the paper).
    pub from: PeerId,
}

/// A light node's spare room: `<ΔL_j = T_j − L_j, ip_addr(j)>` of §3.4.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LightSlot {
    /// Remaining room `ΔL_j`.
    pub spare: f64,
    /// The light node (`ip_addr(j)`).
    pub peer: PeerId,
}

/// One virtual-server assignment produced by a rendezvous point: transfer
/// `vs` (with load `load`) from `from` to `to`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The assigned virtual server.
    pub vs: VsId,
    /// Its load.
    pub load: f64,
    /// Shedding (heavy) node.
    pub from: PeerId,
    /// Receiving (light) node.
    pub to: PeerId,
}

/// The two sorted lists a KT node maintains during the VSA sweep (§3.4):
/// light-node slots sorted by spare room, and shed candidates sorted by
/// load.
///
/// ```
/// use proxbal_chord::{PeerId, VsId};
/// use proxbal_core::{LightSlot, RendezvousLists, ShedCandidate};
///
/// let mut lists = RendezvousLists::new();
/// lists.push_shed(ShedCandidate { load: 8.0, vs: VsId(0), from: PeerId(0) });
/// lists.push_light(LightSlot { spare: 10.0, peer: PeerId(1) });
/// let assignments = lists.pair(1.0);
/// assert_eq!(assignments.len(), 1);
/// assert_eq!(assignments[0].to, PeerId(1));
/// // The 2.0 residual (≥ L_min = 1.0) is re-offered as a light slot.
/// assert_eq!(lists.light().len(), 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RendezvousLists {
    /// `<ΔL_j, addr(j)>`, kept sorted ascending by `spare`.
    light: Vec<LightSlot>,
    /// `<L_{i,k}, v_{i,k}, addr(i)>`, kept sorted ascending by `load`
    /// (the pairing pops the heaviest from the back).
    shed: Vec<ShedCandidate>,
}

impl RendezvousLists {
    /// Empty lists.
    pub fn new() -> Self {
        RendezvousLists::default()
    }

    /// Number of entries across both lists (compared against the rendezvous
    /// threshold, "e.g., 30").
    pub fn len(&self) -> usize {
        self.light.len() + self.shed.len()
    }

    /// True iff both lists are empty.
    pub fn is_empty(&self) -> bool {
        self.light.is_empty() && self.shed.is_empty()
    }

    /// The light slots, ascending by spare room.
    pub fn light(&self) -> &[LightSlot] {
        &self.light
    }

    /// The shed candidates, ascending by load.
    pub fn shed(&self) -> &[ShedCandidate] {
        &self.shed
    }

    /// Inserts a light slot, keeping order.
    pub fn push_light(&mut self, slot: LightSlot) {
        debug_assert!(slot.spare.is_finite() && slot.spare > 0.0);
        let idx = self
            .light
            .partition_point(|s| s.spare.total_cmp(&slot.spare).is_lt());
        self.light.insert(idx, slot);
    }

    /// Inserts a shed candidate, keeping order.
    pub fn push_shed(&mut self, cand: ShedCandidate) {
        debug_assert!(cand.load.is_finite() && cand.load >= 0.0);
        let idx = self
            .shed
            .partition_point(|s| s.load.total_cmp(&cand.load).is_lt());
        self.shed.insert(idx, cand);
    }

    /// The VSA pairing loop of §3.4, run at a rendezvous point:
    ///
    /// 1. Take the heaviest shed candidate `v_{i,k}`.
    /// 2. Pick the light node `j` minimizing `ΔL_j` subject to
    ///    `ΔL_j ≥ L_{i,k}` (best fit — wastes the least room).
    /// 3. Emit the assignment; if the residual `ΔL_j − L_{i,k} ≥ l_min`,
    ///    re-insert node `j` with the residual.
    /// 4. Repeat until no candidate fits any light node.
    ///
    /// Unpaired entries stay in the lists (they propagate to the parent KT
    /// node).
    pub fn pair(&mut self, l_min: f64) -> Vec<Assignment> {
        let mut out = Vec::new();
        self.pair_into(l_min, &mut out);
        out
    }

    /// [`RendezvousLists::pair`] writing into a caller-provided buffer
    /// (appended, not cleared) — the VSA sweep reuses one buffer across
    /// every rendezvous point instead of allocating per node.
    pub fn pair_into(&mut self, l_min: f64, out: &mut Vec<Assignment>) {
        self.pair_into_traced(l_min, out, &mut Trace::disabled());
    }

    /// [`RendezvousLists::pair_into`] recording pairing-churn counters into
    /// `trace`: `vsa_pair_misfits` (candidates that fit no light slot here
    /// and propagate to the parent rendezvous) and `vsa_residual_reinserts`
    /// (light slots re-offered with their residual room).
    pub fn pair_into_traced(&mut self, l_min: f64, out: &mut Vec<Assignment>, trace: &mut Trace) {
        // Heaviest-first over shed candidates. A candidate that fits nowhere
        // stays in place; lighter candidates may still fit. Walking an index
        // down from the top of the sorted list visits candidates heaviest
        // first while leaving misfits where they already are — the list
        // stays sorted throughout, no set-aside buffer needed.
        let mut misfits = 0u64;
        let mut reinserts = 0u64;
        let mut i = self.shed.len();
        while i > 0 {
            i -= 1;
            let cand = self.shed[i];
            // Best fit: first light slot with spare >= load.
            let idx = self
                .light
                .partition_point(|s| s.spare.total_cmp(&cand.load).is_lt());
            if idx == self.light.len() {
                misfits += 1;
                continue; // fits nowhere; stays in the list
            }
            self.shed.remove(i);
            let slot = self.light.remove(idx);
            out.push(Assignment {
                vs: cand.vs,
                load: cand.load,
                from: cand.from,
                to: slot.peer,
            });
            let residual = slot.spare - cand.load;
            if residual >= l_min && residual > 0.0 {
                reinserts += 1;
                let at = self
                    .light
                    .partition_point(|s| s.spare.total_cmp(&residual).is_lt());
                self.light.insert(
                    at,
                    LightSlot {
                        spare: residual,
                        peer: slot.peer,
                    },
                );
            }
        }
        trace.count("vsa_pair_misfits", misfits);
        trace.count("vsa_residual_reinserts", reinserts);
    }

    /// Removes the shed candidate for `vs`, if present. Returns whether a
    /// candidate was removed.
    pub fn remove_shed(&mut self, vs: VsId) -> bool {
        if let Some(idx) = self.shed.iter().position(|c| c.vs == vs) {
            self.shed.remove(idx);
            true
        } else {
            false
        }
    }

    /// Checks the sortedness invariants (used by tests).
    pub fn check_sorted(&self) -> bool {
        self.light.windows(2).all(|w| w[0].spare <= w[1].spare)
            && self.shed.windows(2).all(|w| w[0].load <= w[1].load)
    }
}

impl Merge for RendezvousLists {
    fn merge(&mut self, other: Self) {
        // Merge the sorted runs in place: each list grows within its own
        // buffer instead of being rebuilt into a fresh allocation on every
        // KT-node absorb.
        merge_sorted_into(&mut self.light, &other.light, |a, b| {
            a.spare.total_cmp(&b.spare).is_le()
        });
        merge_sorted_into(&mut self.shed, &other.shed, |a, b| {
            a.load.total_cmp(&b.load).is_le()
        });
    }
}

/// Merges sorted `src` into sorted `dst`, keeping `dst` sorted and stable
/// (`dst` elements win ties). Runs backward over `dst`'s own buffer — one
/// `resize` for capacity, then each element is written exactly once; no
/// scratch allocation.
fn merge_sorted_into<T: Copy>(dst: &mut Vec<T>, src: &[T], le: impl Fn(&T, &T) -> bool) {
    if src.is_empty() {
        return;
    }
    let a = dst.len();
    let b = src.len();
    // Grow to final size; the filler value is overwritten below.
    dst.resize(a + b, src[0]);
    let (mut i, mut j, mut w) = (a, b, a + b);
    // Take the larger tail element first. Writes trail reads (`w > i`
    // whenever `j > 0`), so no unread `dst` element is clobbered.
    while j > 0 {
        if i > 0 && !le(&dst[i - 1], &src[j - 1]) {
            dst[w - 1] = dst[i - 1];
            i -= 1;
        } else {
            dst[w - 1] = src[j - 1];
            j -= 1;
        }
        w -= 1;
    }
}
