use crate::classify::NodeClass;
use crate::lbi::{Lbi, LoadState};
use crate::reports::ProximityParams;
use crate::round::{DirtySet, RoundCache};
use crate::transfer::{TransferDistances, TransferRecord};
use crate::vsa::VsaOutcome;
use proxbal_chord::ChordNetwork;
use proxbal_ktree::KTree;
use proxbal_topology::{DistanceOracle, LandmarkOracle, NodeId};
use proxbal_trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whether virtual-server assignment uses proximity information (§4) or the
/// plain identifier-space sweep (§3.4).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum ProximityMode {
    /// Records enter the tree at the reporting node's own (random) virtual
    /// server — the paper's baseline.
    Ignorant,
    /// Records are published at the node's Hilbert number so physically
    /// close heavy/light nodes meet at deep rendezvous points.
    Aware(ProximityParams),
}

/// Full configuration for one balancing run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BalancerConfig {
    /// Degree `K` of the aggregation tree (paper: 2 and 8).
    pub k: usize,
    /// Balance-quality knob `ε` (see [`ClassifyParams`]).
    pub epsilon: f64,
    /// Rendezvous threshold (paper: 30).
    pub rendezvous_threshold: usize,
    /// Proximity mode.
    pub mode: ProximityMode,
    /// Maximum virtual-server splits for shed candidates that fit no light
    /// node (0 = off, the paper-faithful behaviour). See
    /// [`crate::split_and_place`].
    pub max_splits: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            k: 2,
            epsilon: 0.05,
            rendezvous_threshold: 30,
            mode: ProximityMode::Ignorant,
            max_splits: 0,
        }
    }
}

impl BalancerConfig {
    /// The paper's proximity-aware configuration.
    pub fn proximity_aware() -> Self {
        BalancerConfig {
            mode: ProximityMode::Aware(ProximityParams::default()),
            ..Self::default()
        }
    }
}

/// The physical-network context needed for proximity-aware balancing and
/// for transfer-cost accounting.
#[derive(Clone, Copy)]
pub struct Underlay<'a> {
    /// Shortest-path oracle in the paper's **hop-cost** metric (interdomain
    /// hop = 3, intradomain hop = 1) — used for transfer-cost accounting.
    pub oracle: &'a DistanceOracle,
    /// Oracle in the **latency** metric (Euclidean edge lengths) — what RTT
    /// probes to landmarks actually measure. Falls back to `oracle` when
    /// absent.
    pub latency_oracle: Option<&'a DistanceOracle>,
    /// The landmark nodes (paper: 15 of them).
    pub landmarks: &'a [NodeId],
    /// When set, VST distance accounting runs the hierarchical landmark
    /// scheme instead of exact per-pair Dijkstra (see
    /// [`TransferDistances::Approx`]). `None` — the default everywhere the
    /// builder's exact mode is in effect — keeps every existing output
    /// byte-identical.
    pub approx: Option<ApproxTransfer<'a>>,
}

/// Configuration of the hierarchical (landmark filter-then-refine) VST
/// distance scheme, carried by [`Underlay::approx`].
#[derive(Clone, Copy)]
pub struct ApproxTransfer<'a> {
    /// Precomputed landmark vectors in the hop-cost metric.
    pub landmarks: &'a LandmarkOracle,
    /// Exact Dijkstra row budget for refining uncertain pairs.
    pub refine_sources: usize,
}

impl<'a> Underlay<'a> {
    /// The oracle landmark vectors are measured with.
    pub fn latency(&self) -> &'a DistanceOracle {
        self.latency_oracle.unwrap_or(self.oracle)
    }

    /// The VST distance scheme this underlay implies.
    pub fn transfer_distances(&self) -> TransferDistances<'a> {
        match self.approx {
            None => TransferDistances::Exact(self.oracle),
            Some(a) => TransferDistances::Approx {
                oracle: self.oracle,
                landmarks: a.landmarks,
                refine_sources: a.refine_sources,
            },
        }
    }
}

/// Communication overhead of one balancing run — the "load balancing
/// cost" the paper sets out to minimize, broken down by phase.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MessageStats {
    /// Upward tree messages carrying LBI (inter-peer edges on contributing
    /// paths, each crossed once).
    pub lbi_messages: usize,
    /// Downward tree messages disseminating `<L, C, L_min>` (every
    /// inter-peer tree edge once).
    pub dissemination_messages: usize,
    /// Record·hop units of the VSA sweep (see
    /// [`crate::VsaOutcome::record_hops`]).
    pub vsa_record_hops: usize,
    /// Direct notifications from rendezvous points to the paired heavy and
    /// light nodes (two per assignment, §3.4).
    pub vsa_notifications: usize,
    /// Load-weighted transfer cost `Σ load·distance` of the VST phase —
    /// the bandwidth consumption Figures 7/8 are about (0 without an
    /// underlay).
    pub vst_weighted_cost: f64,
}

/// Everything a balancing run produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BalanceReport {
    /// System LBI aggregated at the root, `<L, C, L_min>`.
    pub system: Lbi,
    /// Message rounds of the LBI aggregation (`O(log_K N)`).
    pub lbi_rounds: u32,
    /// Message rounds of the top-down dissemination.
    pub dissemination_rounds: u32,
    /// Per-class node counts before balancing.
    pub before: HashMap<NodeClass, usize>,
    /// The VSA sweep outcome (assignments, rounds, leftovers).
    pub vsa: VsaOutcome,
    /// Executed transfers with physical distances.
    pub transfers: Vec<TransferRecord>,
    /// Per-class node counts after balancing (re-classified against the
    /// same system LBI).
    pub after: HashMap<NodeClass, usize>,
    /// Communication overhead by phase.
    pub messages: MessageStats,
}

impl BalanceReport {
    /// Number of heavy nodes remaining after the run.
    pub fn heavy_after(&self) -> usize {
        self.after.get(&NodeClass::Heavy).copied().unwrap_or(0)
    }

    /// Fraction of nodes that were heavy before the run.
    pub fn heavy_before_fraction(&self) -> f64 {
        let total: usize = self.before.values().sum();
        let heavy = self.before.get(&NodeClass::Heavy).copied().unwrap_or(0);
        heavy as f64 / total.max(1) as f64
    }
}

/// The four-phase load balancer of the paper: LBI aggregation → node
/// classification → virtual server assignment → virtual server transferring.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    cfg: BalancerConfig,
    threads: usize,
}

impl LoadBalancer {
    /// Creates a balancer with the given configuration (single-threaded
    /// rounds; see [`LoadBalancer::with_threads`]).
    pub fn new(cfg: BalancerConfig) -> Self {
        assert!(cfg.k >= 2, "tree degree must be >= 2");
        assert!(cfg.epsilon >= 0.0, "epsilon must be non-negative");
        LoadBalancer { cfg, threads: 1 }
    }

    /// Sets the worker-thread count for the parallel sections *inside* a
    /// balancing round (LBI generation, aggregation, classification, shed
    /// extraction, transfer-distance refinement). Purely a performance
    /// knob: every output is byte-identical at any thread count — parallel
    /// work is chunked deterministically and merged in index order, and
    /// all randomness is drawn on the caller's thread.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The intra-round worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configuration.
    pub fn config(&self) -> &BalancerConfig {
        &self.cfg
    }

    /// Runs one complete balancing pass over the network.
    ///
    /// `underlay` supplies the physical topology; it is required for
    /// [`ProximityMode::Aware`] and, when present, transfer distances are
    /// recorded for the cost analysis of Figures 7 and 8.
    pub fn run<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
    ) -> Result<BalanceReport, crate::Error> {
        self.run_traced(net, loads, underlay, rng, &mut Trace::disabled())
    }

    /// Like [`LoadBalancer::run`], recording per-phase spans and counters
    /// into `trace`. Tracing never perturbs the run: a disabled collector
    /// takes the identical code path and the report is byte-for-byte the
    /// same either way.
    pub fn run_traced<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
        trace: &mut Trace,
    ) -> Result<BalanceReport, crate::Error> {
        let mut tree = KTree::build(net, self.cfg.k);
        self.run_with_tree_traced(net, loads, &mut tree, underlay, rng, trace)
    }

    /// Like [`LoadBalancer::run`], but over a long-lived tree: the tree is
    /// brought up to date with ordinary soft-state maintenance rounds and
    /// then reused.
    ///
    /// Virtual-server *transfers* never change ring positions, so a
    /// balancing pass leaves the tree structurally intact — the paper's
    /// lazy-migration point (§3.5: "in order to keep the K-nary tree
    /// relatively stable, we could adopt a lazy migration protocol")
    /// falls out of the identifier-space construction. Only churn (and VS
    /// splits) require maintenance.
    pub fn run_with_tree<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
    ) -> Result<BalanceReport, crate::Error> {
        self.run_with_tree_traced(net, loads, tree, underlay, rng, &mut Trace::disabled())
    }

    /// Like [`LoadBalancer::run_with_tree`], recording per-phase spans and
    /// counters into `trace`.
    ///
    /// Delegates to [`LoadBalancer::run_round_traced`] with
    /// [`DirtySet::All`] and a throwaway [`RoundCache`]: a one-shot run is
    /// exactly one incremental round in which every peer is dirty, so both
    /// entry points share a single four-phase code path (and the same
    /// randomness consumption order).
    pub fn run_with_tree_traced<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
        trace: &mut Trace,
    ) -> Result<BalanceReport, crate::Error> {
        self.run_with_tree_walls(
            net,
            loads,
            tree,
            underlay,
            rng,
            trace,
            &mut crate::RoundWalls::default(),
        )
    }

    /// Like [`LoadBalancer::run_with_tree_traced`], additionally measuring
    /// the wall-clock seconds each intra-round phase took into `walls`.
    /// The walls are an out-parameter (not part of [`BalanceReport`])
    /// because they are inherently nondeterministic — everything inside
    /// the report stays byte-identical at any thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_tree_walls<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
        trace: &mut Trace,
        walls: &mut crate::RoundWalls,
    ) -> Result<BalanceReport, crate::Error> {
        self.run_round_walls(
            net,
            loads,
            tree,
            underlay,
            &mut RoundCache::new(),
            &DirtySet::All,
            rng,
            trace,
            walls,
        )
    }
}
