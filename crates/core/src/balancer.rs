use crate::classify::{ClassifyParams, NodeClass};
use crate::lbi::{Lbi, LoadState};
use crate::reports::{
    ignorant_inputs, light_slots, proximity_inputs, shed_candidates, Classification,
    ProximityParams,
};
use crate::transfer::{execute_transfers_traced, TransferRecord};
use crate::vsa::{run_vsa_traced, VsaOutcome, VsaParams};
use proxbal_chord::{ChordNetwork, PeerId};
use proxbal_ktree::KTree;
use proxbal_topology::{DistanceOracle, NodeId};
use proxbal_trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Whether virtual-server assignment uses proximity information (§4) or the
/// plain identifier-space sweep (§3.4).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum ProximityMode {
    /// Records enter the tree at the reporting node's own (random) virtual
    /// server — the paper's baseline.
    Ignorant,
    /// Records are published at the node's Hilbert number so physically
    /// close heavy/light nodes meet at deep rendezvous points.
    Aware(ProximityParams),
}

/// Full configuration for one balancing run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BalancerConfig {
    /// Degree `K` of the aggregation tree (paper: 2 and 8).
    pub k: usize,
    /// Balance-quality knob `ε` (see [`ClassifyParams`]).
    pub epsilon: f64,
    /// Rendezvous threshold (paper: 30).
    pub rendezvous_threshold: usize,
    /// Proximity mode.
    pub mode: ProximityMode,
    /// Maximum virtual-server splits for shed candidates that fit no light
    /// node (0 = off, the paper-faithful behaviour). See
    /// [`crate::split_and_place`].
    pub max_splits: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            k: 2,
            epsilon: 0.05,
            rendezvous_threshold: 30,
            mode: ProximityMode::Ignorant,
            max_splits: 0,
        }
    }
}

impl BalancerConfig {
    /// The paper's proximity-aware configuration.
    pub fn proximity_aware() -> Self {
        BalancerConfig {
            mode: ProximityMode::Aware(ProximityParams::default()),
            ..Self::default()
        }
    }
}

/// The physical-network context needed for proximity-aware balancing and
/// for transfer-cost accounting.
#[derive(Clone, Copy)]
pub struct Underlay<'a> {
    /// Shortest-path oracle in the paper's **hop-cost** metric (interdomain
    /// hop = 3, intradomain hop = 1) — used for transfer-cost accounting.
    pub oracle: &'a DistanceOracle,
    /// Oracle in the **latency** metric (Euclidean edge lengths) — what RTT
    /// probes to landmarks actually measure. Falls back to `oracle` when
    /// absent.
    pub latency_oracle: Option<&'a DistanceOracle>,
    /// The landmark nodes (paper: 15 of them).
    pub landmarks: &'a [NodeId],
}

impl<'a> Underlay<'a> {
    /// The oracle landmark vectors are measured with.
    pub fn latency(&self) -> &'a DistanceOracle {
        self.latency_oracle.unwrap_or(self.oracle)
    }
}

/// Communication overhead of one balancing run — the "load balancing
/// cost" the paper sets out to minimize, broken down by phase.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MessageStats {
    /// Upward tree messages carrying LBI (inter-peer edges on contributing
    /// paths, each crossed once).
    pub lbi_messages: usize,
    /// Downward tree messages disseminating `<L, C, L_min>` (every
    /// inter-peer tree edge once).
    pub dissemination_messages: usize,
    /// Record·hop units of the VSA sweep (see
    /// [`crate::VsaOutcome::record_hops`]).
    pub vsa_record_hops: usize,
    /// Direct notifications from rendezvous points to the paired heavy and
    /// light nodes (two per assignment, §3.4).
    pub vsa_notifications: usize,
    /// Load-weighted transfer cost `Σ load·distance` of the VST phase —
    /// the bandwidth consumption Figures 7/8 are about (0 without an
    /// underlay).
    pub vst_weighted_cost: f64,
}

/// Everything a balancing run produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BalanceReport {
    /// System LBI aggregated at the root, `<L, C, L_min>`.
    pub system: Lbi,
    /// Message rounds of the LBI aggregation (`O(log_K N)`).
    pub lbi_rounds: u32,
    /// Message rounds of the top-down dissemination.
    pub dissemination_rounds: u32,
    /// Per-class node counts before balancing.
    pub before: HashMap<NodeClass, usize>,
    /// The VSA sweep outcome (assignments, rounds, leftovers).
    pub vsa: VsaOutcome,
    /// Executed transfers with physical distances.
    pub transfers: Vec<TransferRecord>,
    /// Per-class node counts after balancing (re-classified against the
    /// same system LBI).
    pub after: HashMap<NodeClass, usize>,
    /// Communication overhead by phase.
    pub messages: MessageStats,
}

impl BalanceReport {
    /// Number of heavy nodes remaining after the run.
    pub fn heavy_after(&self) -> usize {
        self.after.get(&NodeClass::Heavy).copied().unwrap_or(0)
    }

    /// Fraction of nodes that were heavy before the run.
    pub fn heavy_before_fraction(&self) -> f64 {
        let total: usize = self.before.values().sum();
        let heavy = self.before.get(&NodeClass::Heavy).copied().unwrap_or(0);
        heavy as f64 / total.max(1) as f64
    }
}

/// The four-phase load balancer of the paper: LBI aggregation → node
/// classification → virtual server assignment → virtual server transferring.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    cfg: BalancerConfig,
}

impl LoadBalancer {
    /// Creates a balancer with the given configuration.
    pub fn new(cfg: BalancerConfig) -> Self {
        assert!(cfg.k >= 2, "tree degree must be >= 2");
        assert!(cfg.epsilon >= 0.0, "epsilon must be non-negative");
        LoadBalancer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &BalancerConfig {
        &self.cfg
    }

    /// Runs one complete balancing pass over the network.
    ///
    /// `underlay` supplies the physical topology; it is required for
    /// [`ProximityMode::Aware`] and, when present, transfer distances are
    /// recorded for the cost analysis of Figures 7 and 8.
    pub fn run<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
    ) -> Result<BalanceReport, crate::BalanceError> {
        self.run_traced(net, loads, underlay, rng, &mut Trace::disabled())
    }

    /// Like [`LoadBalancer::run`], recording per-phase spans and counters
    /// into `trace`. Tracing never perturbs the run: a disabled collector
    /// takes the identical code path and the report is byte-for-byte the
    /// same either way.
    pub fn run_traced<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
        trace: &mut Trace,
    ) -> Result<BalanceReport, crate::BalanceError> {
        let mut tree = KTree::build(net, self.cfg.k);
        self.run_with_tree_traced(net, loads, &mut tree, underlay, rng, trace)
    }

    /// Like [`LoadBalancer::run`], but over a long-lived tree: the tree is
    /// brought up to date with ordinary soft-state maintenance rounds and
    /// then reused.
    ///
    /// Virtual-server *transfers* never change ring positions, so a
    /// balancing pass leaves the tree structurally intact — the paper's
    /// lazy-migration point (§3.5: "in order to keep the K-nary tree
    /// relatively stable, we could adopt a lazy migration protocol")
    /// falls out of the identifier-space construction. Only churn (and VS
    /// splits) require maintenance.
    pub fn run_with_tree<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
    ) -> Result<BalanceReport, crate::BalanceError> {
        self.run_with_tree_traced(net, loads, tree, underlay, rng, &mut Trace::disabled())
    }

    /// Like [`LoadBalancer::run_with_tree`], recording per-phase spans and
    /// counters into `trace`.
    ///
    /// The four phases are laid out sequentially on a virtual timeline whose
    /// unit is one message round: tree maintenance, then `phase/lbi`
    /// (duration = aggregation rounds), `phase/classify` (dissemination
    /// rounds), `phase/vsa` (sweep rounds) and `phase/vst` (the maximum
    /// physical transfer distance, since transfers run in parallel).
    pub fn run_with_tree_traced<R: Rng>(
        &self,
        net: &mut ChordNetwork,
        loads: &mut LoadState,
        tree: &mut KTree,
        underlay: Option<Underlay<'_>>,
        rng: &mut R,
        trace: &mut Trace,
    ) -> Result<BalanceReport, crate::BalanceError> {
        assert_eq!(tree.k(), self.cfg.k, "tree degree must match the config");
        let mut clock = tree.maintain_until_stable_traced(net, 256, 0, trace) as u64;
        let params = ClassifyParams {
            epsilon: self.cfg.epsilon,
        };
        let tree = &*tree;

        // Phase 1: LBI aggregation. Each peer reports through the KT leaf of
        // one randomly chosen virtual server (§3.2). A peer that currently
        // hosts no virtual servers (it shed everything in an earlier pass)
        // reports through the root directly — in a real deployment it would
        // retain an empty virtual-server registration; losing its capacity
        // from the aggregate would silently inflate every target.
        let mut lbi_inputs = proxbal_ktree::KtNodeMap::with_slot_bound(tree.slot_bound());
        for p in net.alive_peers() {
            use proxbal_ktree::Merge;
            let target = random_report_target(net, tree, p, rng).unwrap_or_else(|| tree.root());
            let lbi = loads.node_lbi(net, p);
            match lbi_inputs.get_mut(target) {
                Some(acc) => Merge::merge(acc, lbi),
                None => {
                    lbi_inputs.insert(target, lbi);
                }
            }
        }
        // Count inter-peer tree edges on the contributing paths (each edge
        // carries exactly one aggregated LBI message).
        let lbi_messages = count_active_edges(net, tree, lbi_inputs.keys());
        let agg = tree.aggregate(lbi_inputs);
        let system = agg.root_value.expect("at least one peer reported");
        let lbi_rounds = agg.rounds;
        trace.span_args(
            "phase/lbi",
            clock,
            u64::from(lbi_rounds),
            &[
                ("messages", lbi_messages.into()),
                ("merges", agg.merges.into()),
            ],
        );
        trace.count("lbi_messages", lbi_messages as u64);
        trace.count("kt_aggregate_merges", agg.merges as u64);
        clock += u64::from(lbi_rounds);

        // Phase 2: dissemination + classification (§3.3).
        let (_, dissemination_rounds) = tree.disseminate(system);
        let dissemination_messages = count_active_edges(net, tree, tree.iter_ids());
        let classification = Classification::compute(net, loads, &params, system);
        let before = class_counts(&classification);
        let heavy_before = before.get(&NodeClass::Heavy).copied().unwrap_or(0);
        trace.span_args(
            "phase/classify",
            clock,
            u64::from(dissemination_rounds),
            &[
                ("messages", dissemination_messages.into()),
                ("heavy", heavy_before.into()),
            ],
        );
        trace.count("dissemination_messages", dissemination_messages as u64);
        trace.count("heavy_before", heavy_before as u64);
        clock += u64::from(dissemination_rounds);

        // Phase 3: VSA (§3.4 / §4.3).
        let shed = shed_candidates(net, loads, &params, &classification);
        let light = light_slots(net, loads, &params, &classification);
        let inputs = match self.cfg.mode {
            ProximityMode::Ignorant => ignorant_inputs(net, tree, &shed, &light, rng),
            ProximityMode::Aware(ref prox) => {
                let u = underlay.expect("proximity-aware balancing requires an underlay topology");
                proximity_inputs(net, tree, &shed, &light, prox, u.latency(), u.landmarks)
            }
        };
        let vsa_params = VsaParams {
            rendezvous_threshold: self.cfg.rendezvous_threshold,
            l_min: system.min_vs_load,
        };
        let mut vsa = run_vsa_traced(tree, inputs, &vsa_params, trace);

        // Optional extension: split unplaceable virtual servers and place
        // the halves (off unless `max_splits > 0`).
        if self.cfg.max_splits > 0 && !vsa.unassigned.shed().is_empty() {
            let extra = crate::split_and_place(
                net,
                loads,
                &mut vsa.unassigned,
                system.min_vs_load,
                self.cfg.max_splits,
            );
            trace.count("vsa_split_placed", extra.len() as u64);
            vsa.assignments.extend(extra);
        }
        trace.span_args(
            "phase/vsa",
            clock,
            u64::from(vsa.rounds),
            &[
                ("pairings", vsa.assignments.len().into()),
                ("record_hops", vsa.record_hops.into()),
                ("rendezvous_points", vsa.rendezvous_points.into()),
            ],
        );
        trace.count("vsa_record_hops", vsa.record_hops as u64);
        trace.count("vsa_notifications", 2 * vsa.assignments.len() as u64);
        clock += u64::from(vsa.rounds);

        // Phase 4: VST (§3.5).
        let transfers = execute_transfers_traced(
            net,
            loads,
            &vsa.assignments,
            underlay.map(|u| u.oracle),
            trace,
        )?;
        let vst_dur = transfers
            .iter()
            .filter_map(|t| t.distance)
            .max()
            .map_or(0, u64::from);
        trace.span_args(
            "phase/vst",
            clock,
            vst_dur,
            &[
                ("transfers", transfers.len().into()),
                ("moved_load", crate::total_moved_load(&transfers).into()),
            ],
        );

        // Re-classify against the same system LBI for the after picture.
        let after_cls = Classification::compute(net, loads, &params, system);
        let after = class_counts(&after_cls);
        trace.count(
            "heavy_after",
            after.get(&NodeClass::Heavy).copied().unwrap_or(0) as u64,
        );

        let messages = MessageStats {
            lbi_messages,
            dissemination_messages,
            vsa_record_hops: vsa.record_hops,
            vsa_notifications: 2 * vsa.assignments.len(),
            vst_weighted_cost: crate::weighted_cost(&transfers),
        };

        Ok(BalanceReport {
            system,
            lbi_rounds,
            dissemination_rounds,
            before,
            vsa,
            transfers,
            after,
            messages,
        })
    }
}

/// Counts tree edges between KT nodes planted on *different peers* along
/// the root paths of `seeds` (each edge counted once).
fn count_active_edges(
    net: &ChordNetwork,
    tree: &KTree,
    seeds: impl Iterator<Item = proxbal_ktree::KtNodeId>,
) -> usize {
    let mut visited = vec![false; tree.slot_bound()];
    let mut edges = 0;
    for seed in seeds {
        let mut cur = seed;
        while let Some(parent) = tree.node(cur).parent {
            let slot = cur.0 as usize;
            if std::mem::replace(&mut visited[slot], true) {
                break; // shared suffix already counted
            }
            let a = net.vs(tree.node(cur).host).host;
            let b = net.vs(tree.node(parent).host).host;
            if a != b {
                edges += 1;
            }
            cur = parent;
        }
    }
    edges
}

fn random_report_target<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    p: PeerId,
    rng: &mut R,
) -> Option<proxbal_ktree::KtNodeId> {
    use rand::seq::SliceRandom;
    let vs = net.vss_of(p).choose(rng)?;
    Some(tree.report_target(net, *vs))
}

fn class_counts(c: &Classification) -> HashMap<NodeClass, usize> {
    let mut out = HashMap::new();
    for class in c.classes.values() {
        *out.entry(*class).or_insert(0) += 1;
    }
    out
}
