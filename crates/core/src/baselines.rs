//! Comparator schemes from the related-work discussion (§1.1, §6).

use crate::classify::{ClassifyParams, NodeClass};
use crate::lbi::LoadState;
use crate::pairing::Assignment;
use crate::reports::Classification;
use crate::selection::choose_shed_set;
use proxbal_chord::{ChordNetwork, VsId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of the CFS-style shedding baseline.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CfsOutcome {
    /// Virtual servers removed from the ring, per round.
    pub dropped_per_round: Vec<usize>,
    /// Peers that became heavy *because* they absorbed dropped regions —
    /// the "load thrashing" CFS suffers from ("removing some virtual
    /// servers from an overloaded node could make another node become
    /// overloaded", §1.1).
    pub thrash_events: usize,
    /// True iff the system converged to no heavy nodes within the round
    /// budget.
    pub converged: bool,
}

/// CFS-style load shedding (§1.1): an overloaded node simply *removes* some
/// of its virtual servers; the dropped regions (and their loads) are
/// absorbed by the ring successors, which may in turn overload — the
/// thrashing this paper criticizes. Runs up to `max_rounds` rounds of
/// simultaneous shedding.
pub fn cfs_shed(
    net: &mut ChordNetwork,
    loads: &mut LoadState,
    params: &ClassifyParams,
    max_rounds: usize,
) -> CfsOutcome {
    let mut outcome = CfsOutcome::default();
    for _ in 0..max_rounds {
        let system = loads.totals(net);
        let classification = Classification::compute(net, loads, params, system);
        let heavy = classification.peers_of(NodeClass::Heavy);
        if heavy.is_empty() {
            outcome.converged = true;
            return outcome;
        }
        // Record who was heavy before this round (to detect fresh overloads).
        let was_heavy: std::collections::HashSet<_> = heavy.iter().copied().collect();

        let mut dropped = 0usize;
        for p in heavy {
            let node = loads.node_lbi(net, p);
            let excess = params.excess(&node, &system);
            let vss: Vec<(VsId, f64)> = net
                .vss_of(p)
                .iter()
                .map(|&v| (v, loads.vs_load(v)))
                .collect();
            // Never drop the last virtual server (the node would leave the
            // overlay entirely).
            if vss.len() <= 1 {
                continue;
            }
            let mut to_drop = choose_shed_set(&vss, excess);
            if to_drop.len() >= vss.len() {
                to_drop.truncate(vss.len() - 1);
            }
            for v in to_drop {
                let load = loads.vs_load(v);
                let pos = net.vs(v).position;
                net.drop_vs(v);
                loads.set_vs_load(v, 0.0);
                // The region is absorbed by the new owner of the position.
                if let Some(absorber) = net.ring().owner(pos) {
                    loads.add_vs_load(absorber, load);
                }
                dropped += 1;
            }
        }
        outcome.dropped_per_round.push(dropped);

        // Thrash: nodes heavy now that were not heavy before the round.
        let system2 = loads.totals(net);
        let after = Classification::compute(net, loads, params, system2);
        outcome.thrash_events += after
            .peers_of(NodeClass::Heavy)
            .iter()
            .filter(|p| !was_heavy.contains(p))
            .count();
        if dropped == 0 {
            break; // nothing sheddable left
        }
    }
    let system = loads.totals(net);
    let final_cls = Classification::compute(net, loads, params, system);
    outcome.converged = final_cls.count_of(NodeClass::Heavy) == 0;
    outcome
}

/// Random matching in the style of Rao et al.'s directory-based schemes
/// *without* any proximity information: heavy nodes compute their shed sets
/// exactly as our scheme does, then each candidate is assigned to a
/// uniformly random light node with enough spare room. Used as the
/// transfer-cost comparator: it matches our scheme's balance quality but
/// pays wide-area transfer distances.
pub fn random_matching<R: Rng>(
    net: &ChordNetwork,
    loads: &LoadState,
    params: &ClassifyParams,
    rng: &mut R,
) -> Vec<Assignment> {
    let system = loads.totals(net);
    let classification = Classification::compute(net, loads, params, system);
    let shed = crate::reports::shed_candidates(net, loads, params, &classification);
    let light = crate::reports::light_slots(net, loads, params, &classification);

    let mut spare: Vec<(proxbal_chord::PeerId, f64)> =
        light.values().map(|s| (s.peer, s.spare)).collect();
    spare.shuffle(rng);

    let mut candidates: Vec<_> = shed.values().flatten().copied().collect();
    candidates.shuffle(rng);
    // Heaviest first maximizes placement success, like the tree scheme.
    candidates.sort_by(|a, b| b.load.total_cmp(&a.load));

    let mut out = Vec::new();
    for cand in candidates {
        // Random fitting slot.
        let fits: Vec<usize> = spare
            .iter()
            .enumerate()
            .filter(|(_, &(_, room))| room >= cand.load)
            .map(|(i, _)| i)
            .collect();
        let Some(&slot_idx) = fits.as_slice().choose(rng) else {
            continue;
        };
        let (peer, room) = spare[slot_idx];
        out.push(Assignment {
            vs: cand.vs,
            load: cand.load,
            from: cand.from,
            to: peer,
        });
        let residual = room - cand.load;
        if residual >= system.min_vs_load {
            spare[slot_idx].1 = residual;
        } else {
            spare.swap_remove(slot_idx);
        }
    }
    out
}
