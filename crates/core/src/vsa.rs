use crate::pairing::{Assignment, RendezvousLists};
use proxbal_ktree::{KTree, KtNodeMap};
use proxbal_trace::Trace;
use serde::{Deserialize, Serialize};

/// Parameters of the VSA sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VsaParams {
    /// A KT node becomes a rendezvous point once the total length of its
    /// two lists reaches this threshold (the paper suggests 30). The root
    /// always pairs, threshold or not.
    pub rendezvous_threshold: usize,
    /// The system-wide minimum virtual-server load `L_min`, used for the
    /// residual re-insertion rule.
    pub l_min: f64,
}

impl VsaParams {
    /// The paper's configuration (threshold 30).
    pub fn paper(l_min: f64) -> Self {
        VsaParams {
            rendezvous_threshold: 30,
            l_min,
        }
    }
}

/// Result of a bottom-up VSA sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VsaOutcome {
    /// All assignments, in the order rendezvous points produced them
    /// (deepest first — these pair physically/logically closest nodes).
    pub assignments: Vec<Assignment>,
    /// Entries left unpaired at the root (excess that could not be placed).
    pub unassigned: RendezvousLists,
    /// Upward message rounds of the sweep (`O(log_K N)`).
    pub rounds: u32,
    /// Number of KT nodes that acted as rendezvous points.
    pub rendezvous_points: usize,
    /// Assignments produced per tree depth (index = depth of the rendezvous
    /// node). Proximity-aware runs should see most assignments at deep
    /// (close-in-identifier-space ⇒ close-physically) levels.
    pub assignments_per_depth: Vec<usize>,
    /// Record·hop units: how many VSA records crossed an inter-peer tree
    /// edge while climbing toward rendezvous points — the communication
    /// overhead of the sweep (edges between KT nodes planted on the same
    /// virtual server are free).
    pub record_hops: usize,
}

/// Runs the bottom-up VSA sweep of §3.4 over the tree.
///
/// `inputs` maps KT nodes (report targets) to the VSA records entering the
/// sweep there (boxed, so the dense per-slot map stays one pointer wide at
/// million-node tree scale). Each KT node merges what its children pushed up with its
/// local input; once its combined lists reach the rendezvous threshold it
/// pairs greedily and forwards only the leftovers; the root pairs
/// unconditionally.
pub fn run_vsa(
    tree: &KTree,
    inputs: impl Into<KtNodeMap<Box<RendezvousLists>>>,
    params: &VsaParams,
) -> VsaOutcome {
    run_vsa_traced(tree, inputs, params, &mut Trace::disabled())
}

/// Like [`run_vsa`], recording per-rendezvous metrics into `trace`: the
/// `vsa_rendezvous_list_depth` histogram (combined list length at the moment
/// a node pairs), the depth-weighted `vsa_assignment_depth` histogram, and
/// `vsa_pairings` / `vsa_unassigned` counters. Tracing reads state only —
/// the sweep itself is bit-identical with tracing on or off.
pub fn run_vsa_traced(
    tree: &KTree,
    inputs: impl Into<KtNodeMap<Box<RendezvousLists>>>,
    params: &VsaParams,
    trace: &mut Trace,
) -> VsaOutcome {
    let mut inputs: KtNodeMap<Box<RendezvousLists>> = inputs.into();
    let mut outcome = VsaOutcome::default();
    let depths = tree.message_depths();
    outcome.rounds = inputs
        .iter()
        .filter(|(_, lists)| !lists.is_empty())
        .map(|(id, _)| depths.get(id).copied().unwrap_or(0))
        .max()
        .unwrap_or(0);

    let levels = tree.levels();
    for level in levels.iter().rev() {
        for &id in level {
            let Some(mut lists) = inputs.remove(id) else {
                continue;
            };
            if lists.is_empty() {
                continue;
            }
            let is_root = id == tree.root();
            if is_root || lists.len() >= params.rendezvous_threshold {
                trace.record("vsa_rendezvous_list_depth", lists.len() as u64);
                // Pair straight into the outcome's assignment buffer — one
                // growing Vec for the whole sweep, no per-node allocation.
                let before = outcome.assignments.len();
                lists.pair_into_traced(params.l_min, &mut outcome.assignments, trace);
                let produced = outcome.assignments.len() - before;
                if produced > 0 {
                    outcome.rendezvous_points += 1;
                    let d = tree.node(id).depth as usize;
                    if outcome.assignments_per_depth.len() <= d {
                        outcome.assignments_per_depth.resize(d + 1, 0);
                    }
                    outcome.assignments_per_depth[d] += produced;
                    trace.record_weighted("vsa_assignment_depth", d as u64, produced as f64);
                }
            }
            if lists.is_empty() {
                continue;
            }
            match tree.node(id).parent {
                Some(parent) => {
                    use proxbal_ktree::Merge;
                    if tree.node(id).host != tree.node(parent).host {
                        outcome.record_hops += lists.len();
                    }
                    match inputs.get_mut(parent) {
                        Some(acc) => acc.merge(lists),
                        None => {
                            inputs.insert(parent, lists);
                        }
                    }
                }
                None => outcome.unassigned = *lists, // root leftovers
            }
        }
    }
    trace.count("vsa_pairings", outcome.assignments.len() as u64);
    trace.count("vsa_unassigned", outcome.unassigned.len() as u64);
    outcome
}
