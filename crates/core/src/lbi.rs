use proxbal_chord::{ChordNetwork, PeerId, VsId};
use proxbal_ktree::Merge;
use proxbal_workload::{CapacityClass, CapacityProfile, LoadModel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Load-balancing information, the `<L, C, L_min>` triple of §3.2.
///
/// A single node reports `<L_i, C_i, L_{i,min}>` (its total virtual-server
/// load, its capacity and the minimum load among its virtual servers);
/// interior KT nodes [`Merge`] triples by summing loads and capacities and
/// taking the minimum of the minima, so the root ends up with the
/// system-wide `<L, C, L_min>`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Lbi {
    /// Total load (`L_i`, aggregating to `L`).
    pub load: f64,
    /// Total capacity (`C_i`, aggregating to `C`).
    pub capacity: f64,
    /// Minimum virtual-server load seen (`L_{i,min}`, aggregating to
    /// `L_min`).
    pub min_vs_load: f64,
}

impl Merge for Lbi {
    fn merge(&mut self, other: Self) {
        self.load += other.load;
        self.capacity += other.capacity;
        self.min_vs_load = self.min_vs_load.min(other.min_vs_load);
    }
}

/// Mutable load/capacity bookkeeping for the whole system: the per-VS loads
/// and per-peer capacities the balancer reads and the transfers update.
///
/// Loads ride with virtual servers: transferring a VS moves its load to the
/// receiving peer (the defining property of virtual-server-based balancing).
///
/// [`VsId`] and [`PeerId`] are dense indices, so the state is three flat
/// vectors rather than hash maps — at million-peer scale the map overhead
/// (control bytes, load-factor headroom, rehash transients) dominates the
/// payload, while a `Vec<f64>` is exactly 8 bytes per virtual server.
/// Absent entries are encoded in-band: loads default to `0.0`, capacities
/// to `NaN` ("never assigned", [`Self::capacity`] panics on it).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LoadState {
    vs_load: Vec<f64>,
    capacity: Vec<f64>,
    class: Vec<Option<CapacityClass>>,
}

/// Grows `v` with `fill` so that `idx` is addressable, then returns the slot.
fn slot<T: Copy>(v: &mut Vec<T>, idx: usize, fill: T) -> &mut T {
    if idx >= v.len() {
        v.resize(idx + 1, fill);
    }
    &mut v[idx]
}

impl LoadState {
    /// Empty state.
    pub fn new() -> Self {
        LoadState::default()
    }

    /// Samples capacities for every alive peer from `profile` and loads for
    /// every alive virtual server from `model` (load scales with the
    /// fraction of the identifier space the VS owns, per §5.1).
    pub fn generate<R: Rng>(
        net: &ChordNetwork,
        profile: &CapacityProfile,
        model: &LoadModel,
        rng: &mut R,
    ) -> Self {
        let mut state = LoadState::new();
        state.vs_load.reserve(net.ring().len());
        for p in net.alive_peers() {
            let class = profile.sample_class(rng);
            state.set_class(p, class);
            state.set_capacity(p, profile.capacity_of(class));
        }
        for (pos, vs) in net.ring().iter() {
            let f = net.ring().region(pos).fraction();
            state.set_vs_load(vs, model.sample_vs_load(f, rng));
        }
        state
    }

    /// Sets a virtual server's load explicitly.
    pub fn set_vs_load(&mut self, vs: VsId, load: f64) {
        assert!(load >= 0.0 && load.is_finite());
        *slot(&mut self.vs_load, vs.0 as usize, 0.0) = load;
    }

    /// Sets a peer's capacity explicitly.
    pub fn set_capacity(&mut self, p: PeerId, capacity: f64) {
        assert!(capacity > 0.0 && capacity.is_finite());
        *slot(&mut self.capacity, p.0 as usize, f64::NAN) = capacity;
    }

    /// Sets a peer's capacity class label (for per-class reporting).
    pub fn set_class(&mut self, p: PeerId, class: CapacityClass) {
        *slot(&mut self.class, p.0 as usize, None) = Some(class);
    }

    /// A virtual server's load (0 if never assigned).
    pub fn vs_load(&self, vs: VsId) -> f64 {
        self.vs_load.get(vs.0 as usize).copied().unwrap_or(0.0)
    }

    /// Adds `delta` to a virtual server's load (used when a dropped VS's
    /// region is absorbed by its successor in the CFS baseline).
    pub fn add_vs_load(&mut self, vs: VsId, delta: f64) {
        let slot = slot(&mut self.vs_load, vs.0 as usize, 0.0);
        *slot = (*slot + delta).max(0.0);
    }

    /// A peer's capacity (panics if the peer has no capacity assigned).
    pub fn capacity(&self, p: PeerId) -> f64 {
        match self.capacity.get(p.0 as usize) {
            Some(&c) if !c.is_nan() => c,
            _ => panic!("peer {p:?} has no capacity"),
        }
    }

    /// A peer's capacity class, if recorded.
    pub fn class(&self, p: PeerId) -> Option<CapacityClass> {
        self.class.get(p.0 as usize).copied().flatten()
    }

    /// Total load currently hosted by a peer.
    pub fn node_load(&self, net: &ChordNetwork, p: PeerId) -> f64 {
        net.vss_of(p).iter().map(|&v| self.vs_load(v)).sum()
    }

    /// The minimum virtual-server load on a peer (`L_{i,min}`);
    /// `f64::INFINITY` for a peer hosting nothing.
    pub fn min_vs_load(&self, net: &ChordNetwork, p: PeerId) -> f64 {
        net.vss_of(p)
            .iter()
            .map(|&v| self.vs_load(v))
            .fold(f64::INFINITY, f64::min)
    }

    /// The node-level LBI triple `<L_i, C_i, L_{i,min}>` of §3.2.
    pub fn node_lbi(&self, net: &ChordNetwork, p: PeerId) -> Lbi {
        Lbi {
            load: self.node_load(net, p),
            capacity: self.capacity(p),
            min_vs_load: self.min_vs_load(net, p),
        }
    }

    /// System totals computed centrally (tests compare the tree-aggregated
    /// LBI against this ground truth).
    pub fn totals(&self, net: &ChordNetwork) -> Lbi {
        let mut acc = Lbi {
            load: 0.0,
            capacity: 0.0,
            min_vs_load: f64::INFINITY,
        };
        for p in net.alive_peers() {
            acc.merge(self.node_lbi(net, p));
        }
        acc
    }

    /// Load per unit capacity of a peer — the paper's "unit load"
    /// (Figure 4's y-axis).
    pub fn unit_load(&self, net: &ChordNetwork, p: PeerId) -> f64 {
        self.node_load(net, p) / self.capacity(p)
    }
}

impl LoadState {
    /// Builds loads from an explicit object population: each object's load
    /// is charged to the virtual server owning its key — the paper's
    /// microfoundation for the Gaussian model ("a large number of small
    /// objects"). Capacities come from `profile` as in
    /// [`LoadState::generate`].
    pub fn from_objects<R: Rng>(
        net: &ChordNetwork,
        profile: &CapacityProfile,
        objects: &[proxbal_workload::StoredObject],
        rng: &mut R,
    ) -> Self {
        let mut state = LoadState::new();
        for p in net.alive_peers() {
            let class = profile.sample_class(rng);
            state.set_class(p, class);
            state.set_capacity(p, profile.capacity_of(class));
        }
        // Every alive VS starts at zero so min_vs_load is well defined.
        for (_, vs) in net.ring().iter() {
            state.set_vs_load(vs, 0.0);
        }
        for obj in objects {
            let owner = net
                .ring()
                .owner(proxbal_id::Id::new(obj.key))
                .expect("non-empty ring");
            *slot(&mut state.vs_load, owner.0 as usize, 0.0) += obj.load;
        }
        state
    }
}
