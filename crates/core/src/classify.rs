use crate::lbi::Lbi;
use serde::{Deserialize, Serialize};

/// Node classification of §3.3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeClass {
    /// `L_i > T_i` — must shed load.
    Heavy,
    /// `T_i − L_i ≥ L_min` — has room for at least the lightest virtual
    /// server in the system.
    Light,
    /// `0 ≤ T_i − L_i < L_min` — neither sheds nor usefully receives.
    Neutral,
}

/// Classification parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClassifyParams {
    /// Balance-quality knob `ε ≥ 0`: the target load is
    /// `T_i = (L/C)·C_i·(1+ε)`. "ε is a parameter for a trade-off between
    /// the amount of load moved and the quality of balance achieved.
    /// Ideally, ε is 0." (§3.3; formula reconstructed — see DESIGN.md.)
    pub epsilon: f64,
}

impl Default for ClassifyParams {
    fn default() -> Self {
        ClassifyParams { epsilon: 0.05 }
    }
}

impl ClassifyParams {
    /// Strict fairness (`ε = 0`).
    pub fn strict() -> Self {
        ClassifyParams { epsilon: 0.0 }
    }

    /// The target load `T_i` of a node with capacity `capacity`, given the
    /// system totals: the fair share proportional to capacity, relaxed by
    /// `(1+ε)`.
    pub fn target(&self, capacity: f64, system: &Lbi) -> f64 {
        assert!(system.capacity > 0.0, "system has no capacity");
        (system.load / system.capacity) * capacity * (1.0 + self.epsilon)
    }

    /// Classifies a node from its LBI and the disseminated system LBI.
    pub fn classify(&self, node: &Lbi, system: &Lbi) -> NodeClass {
        let target = self.target(node.capacity, system);
        if node.load > target {
            NodeClass::Heavy
        } else if target - node.load >= system.min_vs_load {
            NodeClass::Light
        } else {
            NodeClass::Neutral
        }
    }

    /// The excess load a heavy node must shed to reach its target
    /// (0 for non-heavy nodes).
    pub fn excess(&self, node: &Lbi, system: &Lbi) -> f64 {
        (node.load - self.target(node.capacity, system)).max(0.0)
    }

    /// The spare room `ΔL_j = T_j − L_j` of a light node
    /// (0 for non-light nodes).
    pub fn spare(&self, node: &Lbi, system: &Lbi) -> f64 {
        let spare = self.target(node.capacity, system) - node.load;
        if spare >= system.min_vs_load {
            spare
        } else {
            0.0
        }
    }
}
