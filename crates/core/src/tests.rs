use crate::baselines::{cfs_shed, random_matching};
use crate::reports::{light_slots, shed_candidates, Classification};
use crate::selection::brute_force_shed_set;
use crate::*;
use proptest::prelude::*;
use proxbal_chord::{ChordNetwork, PeerId, VsId};
use proxbal_ktree::KTree;
use proxbal_workload::{CapacityProfile, LoadModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn setup(peers: usize, vs: usize, seed: u64) -> (ChordNetwork, LoadState, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = ChordNetwork::new();
    for _ in 0..peers {
        net.join_peer(vs, &mut rng);
    }
    let loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1_000_000.0, 10_000.0),
        &mut rng,
    );
    (net, loads, rng)
}

// ---------------------------------------------------------------- LBI

#[test]
fn lbi_merge_sums_and_mins() {
    let mut a = Lbi {
        load: 10.0,
        capacity: 5.0,
        min_vs_load: 3.0,
    };
    let b = Lbi {
        load: 7.0,
        capacity: 2.0,
        min_vs_load: 1.5,
    };
    proxbal_ktree::Merge::merge(&mut a, b);
    assert_eq!(a.load, 17.0);
    assert_eq!(a.capacity, 7.0);
    assert_eq!(a.min_vs_load, 1.5);
}

#[test]
fn tree_aggregated_lbi_matches_ground_truth() {
    let (net, loads, mut rng) = setup(48, 5, 1);
    let tree = KTree::build(&net, 2);
    let mut inputs: HashMap<_, Lbi> = HashMap::new();
    for p in net.alive_peers() {
        use rand::seq::SliceRandom;
        let vs = *net.vss_of(p).choose(&mut rng).unwrap();
        let target = tree.report_target(&net, vs);
        let lbi = loads.node_lbi(&net, p);
        use proxbal_ktree::Merge;
        match inputs.get_mut(&target) {
            Some(acc) => acc.merge(lbi),
            None => {
                inputs.insert(target, lbi);
            }
        }
    }
    let out = tree.aggregate(inputs);
    let got = out.root_value.unwrap();
    let want = loads.totals(&net);
    assert!((got.load - want.load).abs() < 1e-6 * want.load.max(1.0));
    assert!((got.capacity - want.capacity).abs() < 1e-9);
    assert_eq!(got.min_vs_load, want.min_vs_load);
}

#[test]
fn generate_scales_load_with_region_fraction() {
    // Statistically, VS load should correlate with owned fraction: compare
    // the average load of the largest-decile regions vs the smallest-decile.
    let (net, loads, _) = setup(128, 4, 2);
    let mut by_frac: Vec<(f64, f64)> = net
        .ring()
        .iter()
        .map(|(pos, vs)| (net.ring().region(pos).fraction(), loads.vs_load(vs)))
        .collect();
    by_frac.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n = by_frac.len();
    let small: f64 = by_frac[..n / 10].iter().map(|x| x.1).sum::<f64>() / (n / 10) as f64;
    let large: f64 = by_frac[n - n / 10..].iter().map(|x| x.1).sum::<f64>() / (n / 10) as f64;
    assert!(
        large > 3.0 * small,
        "large-region loads {large} should dwarf small-region loads {small}"
    );
}

// ---------------------------------------------------------------- classification

fn lbi(load: f64, capacity: f64, min: f64) -> Lbi {
    Lbi {
        load,
        capacity,
        min_vs_load: min,
    }
}

#[test]
fn classify_boundaries() {
    let params = ClassifyParams::strict();
    // System: L = 100, C = 100 → T_i = C_i; L_min = 5.
    let system = lbi(100.0, 100.0, 5.0);
    // Heavy: load above target.
    assert_eq!(
        params.classify(&lbi(11.0, 10.0, 1.0), &system),
        NodeClass::Heavy
    );
    // Light: room >= L_min.
    assert_eq!(
        params.classify(&lbi(5.0, 10.0, 1.0), &system),
        NodeClass::Light
    );
    // Neutral: 0 <= room < L_min.
    assert_eq!(
        params.classify(&lbi(6.0, 10.0, 1.0), &system),
        NodeClass::Neutral
    );
    // Exactly at target: not heavy → neutral (room 0 < L_min).
    assert_eq!(
        params.classify(&lbi(10.0, 10.0, 1.0), &system),
        NodeClass::Neutral
    );
    // Exactly L_min room: light (>= is inclusive).
    assert_eq!(
        params.classify(&lbi(5.0, 10.0, 5.0), &lbi(100.0, 100.0, 5.0)),
        NodeClass::Light
    );
}

#[test]
fn epsilon_raises_targets() {
    let strict = ClassifyParams::strict();
    let relaxed = ClassifyParams { epsilon: 0.2 };
    let system = lbi(100.0, 100.0, 5.0);
    assert_eq!(strict.target(10.0, &system), 10.0);
    assert!((relaxed.target(10.0, &system) - 12.0).abs() < 1e-12);
    // A node heavy under strict can be neutral under relaxed
    // (room 1 < L_min 5, so not light either).
    let node = lbi(11.0, 10.0, 1.0);
    assert_eq!(strict.classify(&node, &system), NodeClass::Heavy);
    assert_eq!(relaxed.classify(&node, &system), NodeClass::Neutral);
}

#[test]
fn excess_and_spare_are_complementary() {
    let params = ClassifyParams::strict();
    let system = lbi(100.0, 100.0, 2.0);
    let heavy = lbi(15.0, 10.0, 1.0);
    assert!((params.excess(&heavy, &system) - 5.0).abs() < 1e-12);
    assert_eq!(params.spare(&heavy, &system), 0.0);
    let light = lbi(4.0, 10.0, 1.0);
    assert_eq!(params.excess(&light, &system), 0.0);
    assert!((params.spare(&light, &system) - 6.0).abs() < 1e-12);
}

// ---------------------------------------------------------------- shed selection

fn vs(i: u32) -> VsId {
    VsId(i)
}

#[test]
fn shed_set_empty_when_no_excess() {
    assert!(choose_shed_set(&[(vs(0), 5.0)], 0.0).is_empty());
    assert!(choose_shed_set(&[(vs(0), 5.0)], -1.0).is_empty());
}

#[test]
fn shed_set_single_exact() {
    let vss = [(vs(0), 5.0), (vs(1), 3.0), (vs(2), 8.0)];
    // Need >= 3: the single 3.0 VS is optimal.
    let got = choose_shed_set(&vss, 3.0);
    assert_eq!(got, vec![vs(1)]);
}

#[test]
fn shed_set_prefers_combination_over_overshoot() {
    let vss = [(vs(0), 10.0), (vs(1), 4.0), (vs(2), 3.0)];
    // Need >= 6: {4, 3} = 7 beats {10}.
    let mut got = choose_shed_set(&vss, 6.0);
    got.sort();
    assert_eq!(got, vec![vs(1), vs(2)]);
}

#[test]
fn shed_set_all_when_insufficient() {
    let vss = [(vs(0), 1.0), (vs(1), 2.0)];
    let mut got = choose_shed_set(&vss, 10.0);
    got.sort();
    assert_eq!(got, vec![vs(0), vs(1)]);
}

#[test]
fn shed_set_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let n = rng.gen_range(1..12);
        let vss: Vec<(VsId, f64)> = (0..n)
            .map(|i| (vs(i), rng.gen_range(0.1..100.0f64)))
            .collect();
        let total: f64 = vss.iter().map(|x| x.1).sum();
        let excess = rng.gen_range(0.0..total * 1.1);
        let chosen = choose_shed_set(&vss, excess);
        let sum: f64 = chosen
            .iter()
            .map(|v| vss.iter().find(|x| x.0 == *v).unwrap().1)
            .sum();
        if total >= excess && excess > 0.0 {
            let best = brute_force_shed_set(&vss, excess);
            assert!(sum >= excess - 1e-9, "must shed at least the excess");
            assert!(
                (sum - best).abs() < 1e-6,
                "exact solver suboptimal: {sum} vs {best}"
            );
        }
    }
}

#[test]
fn shed_set_greedy_near_optimal_for_many_vss() {
    let mut rng = StdRng::seed_from_u64(4);
    let vss: Vec<(VsId, f64)> = (0..50)
        .map(|i| (vs(i), rng.gen_range(1.0..10.0f64)))
        .collect();
    let excess = 80.0;
    let chosen = choose_shed_set(&vss, excess);
    let sum: f64 = chosen
        .iter()
        .map(|v| vss.iter().find(|x| x.0 == *v).unwrap().1)
        .sum();
    assert!(sum >= excess);
    // Greedy overshoot is bounded by the largest item.
    assert!(sum < excess + 10.0);
}

// ---------------------------------------------------------------- pairing

fn cand(load: f64, v: u32, p: u32) -> ShedCandidate {
    ShedCandidate {
        load,
        vs: vs(v),
        from: PeerId(p),
    }
}

fn slot(spare: f64, p: u32) -> LightSlot {
    LightSlot {
        spare,
        peer: PeerId(p),
    }
}

#[test]
fn pairing_best_fit_heaviest_first() {
    let mut lists = RendezvousLists::new();
    lists.push_shed(cand(5.0, 0, 100));
    lists.push_shed(cand(9.0, 1, 101));
    lists.push_light(slot(6.0, 200));
    lists.push_light(slot(10.0, 201));
    let a = lists.pair(1.0);
    assert_eq!(a.len(), 2);
    // Heaviest (9.0) paired first with the tightest fit (10.0).
    assert_eq!(a[0].vs, vs(1));
    assert_eq!(a[0].to, PeerId(201));
    assert_eq!(a[1].vs, vs(0));
    assert_eq!(a[1].to, PeerId(200));
    // Residuals (1.0 each, == L_min) are re-inserted as light slots.
    assert!(lists.shed().is_empty());
    assert_eq!(lists.light().len(), 2);
    assert!(lists.light().iter().all(|s| (s.spare - 1.0).abs() < 1e-12));
}

#[test]
fn pairing_residual_reinserted_when_above_lmin() {
    let mut lists = RendezvousLists::new();
    lists.push_shed(cand(4.0, 0, 100));
    lists.push_shed(cand(3.0, 1, 100));
    lists.push_light(slot(10.0, 200));
    let a = lists.pair(2.0);
    // 4.0 → slot (residual 6 ≥ 2, reinserted); 3.0 → residual slot (3 ≥ 2).
    assert_eq!(a.len(), 2);
    assert!(a.iter().all(|x| x.to == PeerId(200)));
    // Final residual 3.0 stays as an unpaired light slot.
    assert_eq!(lists.light().len(), 1);
    assert!((lists.light()[0].spare - 3.0).abs() < 1e-12);
}

#[test]
fn pairing_residual_dropped_below_lmin() {
    let mut lists = RendezvousLists::new();
    lists.push_shed(cand(4.0, 0, 100));
    lists.push_light(slot(5.0, 200));
    let a = lists.pair(2.0);
    assert_eq!(a.len(), 1);
    assert!(lists.light().is_empty(), "residual 1.0 < L_min dropped");
}

#[test]
fn pairing_never_overfills() {
    let mut lists = RendezvousLists::new();
    lists.push_shed(cand(7.0, 0, 100));
    lists.push_light(slot(5.0, 200));
    let a = lists.pair(1.0);
    assert!(
        a.is_empty(),
        "candidate larger than any slot stays unpaired"
    );
    assert_eq!(lists.shed().len(), 1);
    assert_eq!(lists.light().len(), 1);
}

#[test]
fn pairing_merge_keeps_sorted() {
    let mut a = RendezvousLists::new();
    a.push_shed(cand(5.0, 0, 1));
    a.push_light(slot(2.0, 2));
    let mut b = RendezvousLists::new();
    b.push_shed(cand(1.0, 3, 4));
    b.push_shed(cand(9.0, 5, 6));
    b.push_light(slot(7.0, 7));
    proxbal_ktree::Merge::merge(&mut a, b);
    assert!(a.check_sorted());
    assert_eq!(a.len(), 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_pairing_invariants(seed: u64, n_shed in 0usize..20, n_light in 0usize..20, l_min in 0.1f64..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lists = RendezvousLists::new();
        let mut spare_by_peer: HashMap<PeerId, f64> = HashMap::new();
        for i in 0..n_shed {
            lists.push_shed(cand(rng.gen_range(0.1..50.0), i as u32, 1000 + i as u32));
        }
        for j in 0..n_light {
            let s = rng.gen_range(l_min..60.0);
            spare_by_peer.insert(PeerId(j as u32), s);
            lists.push_light(slot(s, j as u32));
        }
        let assignments = lists.pair(l_min);
        prop_assert!(lists.check_sorted());
        // No light node receives more than its spare room in total.
        let mut received: HashMap<PeerId, f64> = HashMap::new();
        for a in &assignments {
            *received.entry(a.to).or_insert(0.0) += a.load;
        }
        for (p, got) in received {
            prop_assert!(got <= spare_by_peer[&p] + 1e-9, "{p:?} overfilled");
        }
        // Every assigned VS appears exactly once.
        let mut seen = std::collections::HashSet::new();
        for a in &assignments {
            prop_assert!(seen.insert(a.vs));
        }
        // Unpaired candidates genuinely fit no remaining slot.
        for c in lists.shed() {
            for s in lists.light() {
                prop_assert!(s.spare < c.load);
            }
        }
    }
}

// ---------------------------------------------------------------- full runs

#[test]
fn balancer_eliminates_heavy_nodes_gaussian() {
    let (mut net, mut loads, mut rng) = setup(128, 5, 10);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let heavy_before = report.before[&NodeClass::Heavy];
    assert!(heavy_before > 0, "workload should create heavy nodes");
    // The paper: "all heavy nodes become light by transferring excess loads"
    // — allow a tiny residue for unplaceable leftovers.
    assert!(
        report.heavy_after() * 20 <= heavy_before,
        "heavy {} -> {}",
        heavy_before,
        report.heavy_after()
    );
    net.check_invariants().unwrap();
}

#[test]
fn balancer_eliminates_heavy_nodes_pareto() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut net = ChordNetwork::new();
    for _ in 0..128 {
        net.join_peer(5, &mut rng);
    }
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::pareto(1_000_000.0),
        &mut rng,
    );
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let heavy_before = report.before[&NodeClass::Heavy];
    assert!(heavy_before > 0);
    assert!(report.heavy_after() * 10 <= heavy_before);
}

#[test]
fn balancer_conserves_total_load() {
    let (mut net, mut loads, mut rng) = setup(64, 5, 12);
    let before = loads.totals(&net).load;
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let _ = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let after = loads.totals(&net).load;
    assert!(
        (before - after).abs() < 1e-6 * before,
        "load must be conserved: {before} -> {after}"
    );
}

#[test]
fn balancer_no_node_exceeds_target_after_run() {
    let (mut net, mut loads, mut rng) = setup(96, 5, 13);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let params = ClassifyParams {
        epsilon: balancer.config().epsilon,
    };
    // Receiving nodes must never be pushed above their targets.
    for t in &report.transfers {
        let p = t.assignment.to;
        let load = loads.node_load(&net, p);
        let target = params.target(loads.capacity(p), &report.system);
        assert!(
            load <= target + 1e-6 * target.max(1.0),
            "receiver {p:?} overfilled: {load} > {target}"
        );
    }
}

#[test]
fn balancer_rounds_are_logarithmic() {
    for k in [2usize, 8] {
        let (mut net, mut loads, mut rng) = setup(256, 5, 14);
        let balancer = LoadBalancer::new(BalancerConfig {
            k,
            ..BalancerConfig::default()
        });
        let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
        let m = net.alive_vs_count() as f64;
        let bound = (2.0 * m.log(k as f64)).ceil() as u32 + 6;
        assert!(
            report.lbi_rounds <= bound,
            "k={k} lbi {}",
            report.lbi_rounds
        );
        assert!(
            report.vsa.rounds <= bound,
            "k={k} vsa {}",
            report.vsa.rounds
        );
    }
}

#[test]
fn balancer_aligns_load_with_capacity() {
    let (mut net, mut loads, mut rng) = setup(256, 5, 15);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let _ = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    // Average load per capacity class must increase with capacity (Figures
    // 5/6: higher-capacity nodes carry more load).
    let mut per_class: HashMap<usize, (f64, usize)> = HashMap::new();
    for p in net.alive_peers() {
        let class = loads.class(p).unwrap().0;
        let e = per_class.entry(class).or_insert((0.0, 0));
        e.0 += loads.node_load(&net, p);
        e.1 += 1;
    }
    let mut avgs: Vec<(usize, f64)> = per_class
        .into_iter()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(c, (sum, n))| (c, sum / n as f64))
        .collect();
    avgs.sort_by_key(|&(c, _)| c);
    for w in avgs.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "class {} avg {} should exceed class {} avg {}",
            w[1].0,
            w[1].1,
            w[0].0,
            w[0].1
        );
    }
}

#[test]
fn shed_candidates_only_from_heavy_nodes() {
    let (net, loads, _) = setup(64, 5, 16);
    let params = ClassifyParams::default();
    let system = loads.totals(&net);
    let classification = Classification::compute(&net, &loads, &params, system);
    let shed = shed_candidates(&net, &loads, &params, &classification);
    for p in shed.keys() {
        assert_eq!(classification.classes[p], NodeClass::Heavy);
    }
    let light = light_slots(&net, &loads, &params, &classification);
    for p in light.keys() {
        assert_eq!(classification.classes[p], NodeClass::Light);
    }
}

#[test]
fn shed_candidates_reduce_node_to_target() {
    let (net, loads, _) = setup(64, 5, 17);
    let params = ClassifyParams::default();
    let system = loads.totals(&net);
    let classification = Classification::compute(&net, &loads, &params, system);
    let shed = shed_candidates(&net, &loads, &params, &classification);
    for (&p, cands) in &shed {
        let node = loads.node_lbi(&net, p);
        let shed_total: f64 = cands.iter().map(|c| c.load).sum();
        let target = params.target(node.capacity, &system);
        let total_vs: f64 = net.vss_of(p).iter().map(|&v| loads.vs_load(v)).sum();
        // Either the node reaches target, or it sheds everything it has.
        assert!(
            node.load - shed_total <= target + 1e-9 || shed_total >= total_vs - 1e-9,
            "{p:?} sheds too little"
        );
    }
}

// ---------------------------------------------------------------- baselines

#[test]
fn cfs_baseline_thrashes_or_converges() {
    let (mut net, mut loads, _) = setup(96, 5, 18);
    let params = ClassifyParams::default();
    let outcome = cfs_shed(&mut net, &mut loads, &params, 20);
    net.check_invariants().unwrap();
    // The run must have done *something*.
    let total_dropped: usize = outcome.dropped_per_round.iter().sum();
    assert!(total_dropped > 0);
    // Either it converged, or thrashing was observed (usually both effects
    // appear; this documents the failure mode the paper criticizes).
    assert!(outcome.converged || outcome.thrash_events > 0);
}

#[test]
fn cfs_never_strands_a_peer_without_vss() {
    let (mut net, mut loads, _) = setup(48, 2, 19);
    let params = ClassifyParams::strict();
    let _ = cfs_shed(&mut net, &mut loads, &params, 30);
    for p in net.alive_peers() {
        assert!(
            !net.vss_of(p).is_empty(),
            "{p:?} lost all its virtual servers"
        );
    }
}

#[test]
fn random_matching_produces_valid_assignments() {
    let (net, loads, mut rng) = setup(96, 5, 20);
    let params = ClassifyParams::default();
    let assignments = random_matching(&net, &loads, &params, &mut rng);
    assert!(!assignments.is_empty());
    let system = loads.totals(&net);
    // Receivers not overfilled.
    let mut received: HashMap<PeerId, f64> = HashMap::new();
    for a in &assignments {
        *received.entry(a.to).or_insert(0.0) += a.load;
    }
    for (p, got) in received {
        let node = loads.node_lbi(&net, p);
        let spare = params.spare(&node, &system);
        assert!(got <= spare + 1e-9, "{p:?} overfilled");
    }
    // Each VS assigned at most once.
    let mut seen = std::collections::HashSet::new();
    for a in &assignments {
        assert!(seen.insert(a.vs));
    }
}

#[test]
fn execute_transfers_skips_stale_assignments() {
    let (mut net, mut loads, mut rng) = setup(16, 3, 21);
    let params = ClassifyParams::default();
    let assignments = random_matching(&net, &loads, &params, &mut rng);
    assert!(!assignments.is_empty());
    // Crash the source of the first assignment: it must be skipped.
    let victim = assignments[0].from;
    net.crash_peer(victim);
    let before = net.alive_vs_count();
    let records = execute_transfers(&mut net, &mut loads, &assignments, None).unwrap();
    assert!(records.iter().all(|r| r.assignment.from != victim));
    assert_eq!(net.alive_vs_count(), before);
    net.check_invariants().unwrap();
}

#[test]
fn execute_transfers_unattached_peer_is_typed_error() {
    use proxbal_topology::{DistanceOracle, TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;
    let (mut net, mut loads, mut rng) = setup(16, 3, 23);
    let params = ClassifyParams::default();
    let assignments = random_matching(&net, &loads, &params, &mut rng);
    assert!(!assignments.is_empty());
    // An oracle is supplied but no peer was ever attached to the underlay:
    // the distance is undefined, and the run must say so instead of
    // asserting.
    let topo = TransitStubTopology::generate(TransitStubConfig::tiny(), &mut rng);
    let oracle = DistanceOracle::new(Arc::new(topo.graph));
    let err = execute_transfers(
        &mut net,
        &mut loads,
        &assignments,
        Some(crate::transfer::TransferDistances::Exact(&oracle)),
    )
    .unwrap_err();
    assert!(matches!(err, Error::UnattachedPeer(_)));
}

#[test]
fn requeue_reassigns_transfers_whose_receiver_died() {
    let (mut net, mut loads, mut rng) = setup(32, 3, 22);
    let params = ClassifyParams::default();
    let assignments = random_matching(&net, &loads, &params, &mut rng);
    assert!(!assignments.is_empty());
    // The receiver of the first assignment dies between VSA and VST.
    let dead = assignments[0].to;
    net.crash_peer(dead);
    let lost = assignments.iter().filter(|a| a.to == dead).count();
    // A surviving non-heavy peer left room at the root rendezvous.
    let alt = net
        .alive_peers()
        .into_iter()
        .find(|&p| p != dead && assignments.iter().all(|a| a.from != p && a.to != p))
        .or_else(|| {
            net.alive_peers()
                .into_iter()
                .find(|&p| p != dead && assignments.iter().all(|a| a.from != p))
        })
        .expect("a surviving non-shedding peer");
    let mut spare = RendezvousLists::new();
    spare.push_light(LightSlot {
        spare: 1e18,
        peer: alt,
    });
    let outcome =
        execute_transfers_with_requeue(&mut net, &mut loads, &assignments, None, &mut spare, 0.0)
            .unwrap();
    assert_eq!(outcome.requeued, lost);
    assert_eq!(outcome.reassigned, lost, "roomy slot takes every orphan");
    assert_eq!(outcome.abandoned, 0);
    // The re-paired transfers landed on the substitute, none on the corpse.
    let onto_alt = outcome
        .transfers
        .iter()
        .filter(|r| r.assignment.to == alt)
        .count();
    assert!(onto_alt >= lost, "orphans re-paired onto the substitute");
    assert!(outcome.transfers.iter().all(|r| r.assignment.to != dead));
    net.check_invariants().unwrap();
}

#[test]
fn requeue_without_room_abandons_for_next_round() {
    let (mut net, mut loads, mut rng) = setup(32, 3, 24);
    let params = ClassifyParams::default();
    let assignments = random_matching(&net, &loads, &params, &mut rng);
    assert!(!assignments.is_empty());
    let dead = assignments[0].to;
    net.crash_peer(dead);
    let lost = assignments.iter().filter(|a| a.to == dead).count();
    let mut spare = RendezvousLists::new(); // no surviving light slots
    let outcome =
        execute_transfers_with_requeue(&mut net, &mut loads, &assignments, None, &mut spare, 0.0)
            .unwrap();
    assert_eq!(outcome.requeued, lost);
    assert_eq!(outcome.reassigned, 0);
    assert_eq!(outcome.abandoned, lost);
    // The stranded virtual servers stayed with their shedding hosts.
    for a in assignments.iter().filter(|a| a.to == dead) {
        assert_eq!(net.vs(a.vs).host, a.from);
    }
    net.check_invariants().unwrap();
}

// ---------------------------------------------------------------- splitting & params

#[test]
fn splitting_reduces_epsilon_zero_stragglers() {
    let run = |max_splits: usize| -> usize {
        let (mut net, mut loads, mut rng) = setup(192, 5, 40);
        let balancer = LoadBalancer::new(BalancerConfig {
            epsilon: 0.0,
            max_splits,
            ..BalancerConfig::default()
        });
        let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
        net.check_invariants().unwrap();
        report.heavy_after()
    };
    let without = run(0);
    let with = run(64);
    assert!(
        with <= without,
        "splitting should not increase stragglers: {without} -> {with}"
    );
}

#[test]
fn splitting_conserves_load_end_to_end() {
    let (mut net, mut loads, mut rng) = setup(96, 5, 41);
    let before = loads.totals(&net).load;
    let balancer = LoadBalancer::new(BalancerConfig {
        epsilon: 0.0,
        max_splits: 32,
        ..BalancerConfig::default()
    });
    let _ = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let after = loads.totals(&net).load;
    assert!((before - after).abs() < 1e-6 * before);
    net.check_invariants().unwrap();
}

#[test]
fn empty_peers_keep_reporting_capacity() {
    // A peer that shed all its virtual servers must still contribute its
    // capacity to the aggregate (via the root) — otherwise later targets
    // inflate and receivers overfill (see DESIGN.md).
    let mut rng = StdRng::seed_from_u64(42);
    let mut net = ChordNetwork::new();
    for _ in 0..32 {
        net.join_peer(3, &mut rng);
    }
    let mut loads = LoadState::generate(
        &net,
        &CapacityProfile::gnutella(),
        &LoadModel::gaussian(1e6, 1e4),
        &mut rng,
    );
    // Empty one peer by hand.
    let victim = net.alive_peers()[0];
    let vss: Vec<VsId> = net.vss_of(victim).to_vec();
    let target_peer = net.alive_peers()[1];
    for v in vss {
        net.transfer_vs(v, target_peer);
    }
    assert!(net.vss_of(victim).is_empty());

    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    // Aggregated capacity equals ground truth (the empty peer included).
    let want = loads.totals(&net);
    assert!(
        (report.system.capacity - want.capacity).abs() < 1e-9,
        "aggregated C {} != true C {}",
        report.system.capacity,
        want.capacity
    );
}

#[test]
fn remove_shed_by_vs_id() {
    let mut lists = RendezvousLists::new();
    lists.push_shed(cand(5.0, 1, 10));
    lists.push_shed(cand(3.0, 2, 11));
    assert!(lists.remove_shed(vs(1)));
    assert!(!lists.remove_shed(vs(1)));
    assert_eq!(lists.shed().len(), 1);
    assert_eq!(lists.shed()[0].vs, vs(2));
    assert!(lists.check_sorted());
}

// ---------------------------------------------------------------- objects

#[test]
fn object_loads_charge_owner_vss() {
    use proxbal_workload::StoredObject;
    let mut rng = StdRng::seed_from_u64(50);
    let mut net = ChordNetwork::new();
    for _ in 0..16 {
        net.join_peer(3, &mut rng);
    }
    let objects = vec![
        StoredObject {
            key: 0x1000_0000,
            load: 5.0,
        },
        StoredObject {
            key: 0x9000_0000,
            load: 7.0,
        },
        StoredObject {
            key: 0x9000_0001,
            load: 2.0,
        },
    ];
    let loads = LoadState::from_objects(&net, &CapacityProfile::uniform(10.0), &objects, &mut rng);
    // Total conserved.
    let total: f64 = net.ring().iter().map(|(_, v)| loads.vs_load(v)).sum();
    assert!((total - 14.0).abs() < 1e-12);
    // Each object sits on the owner of its key.
    for obj in &objects {
        let owner = net.ring().owner(proxbal_id::Id::new(obj.key)).unwrap();
        assert!(loads.vs_load(owner) >= obj.load - 1e-12);
    }
}

#[test]
fn object_microfoundation_yields_balanceable_system() {
    // End-to-end: many small uniform objects → Gaussian-like per-VS loads →
    // the balancer behaves exactly as with the closed-form model.
    use proxbal_workload::ObjectWorkload;
    let mut rng = StdRng::seed_from_u64(51);
    let mut net = ChordNetwork::new();
    for _ in 0..128 {
        net.join_peer(5, &mut rng);
    }
    let objects = ObjectWorkload::uniform(200_000, 1e6).generate(&mut rng);
    let mut loads = LoadState::from_objects(&net, &CapacityProfile::gnutella(), &objects, &mut rng);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    assert!(report.before[&NodeClass::Heavy] > 0);
    assert_eq!(report.heavy_after(), 0);
}

#[test]
fn zipf_objects_create_hotspot_vss() {
    use proxbal_workload::ObjectWorkload;
    let mut rng = StdRng::seed_from_u64(52);
    let mut net = ChordNetwork::new();
    for _ in 0..64 {
        net.join_peer(5, &mut rng);
    }
    let objects = ObjectWorkload::zipf(50_000, 1e6, 1.2).generate(&mut rng);
    let loads = LoadState::from_objects(&net, &CapacityProfile::gnutella(), &objects, &mut rng);
    let mut vs_loads: Vec<f64> = net.ring().iter().map(|(_, v)| loads.vs_load(v)).collect();
    vs_loads.sort_by(f64::total_cmp);
    let max = *vs_loads.last().unwrap();
    let median = vs_loads[vs_loads.len() / 2];
    assert!(
        max > 20.0 * median.max(1.0),
        "hot VS should dominate: max {max:.0} vs median {median:.0}"
    );
}

#[test]
fn weighted_cost_sums_load_times_distance() {
    let records = vec![
        TransferRecord {
            assignment: Assignment {
                vs: vs(0),
                load: 10.0,
                from: PeerId(0),
                to: PeerId(1),
            },
            distance: Some(3),
        },
        TransferRecord {
            assignment: Assignment {
                vs: vs(1),
                load: 2.0,
                from: PeerId(0),
                to: PeerId(1),
            },
            distance: None, // unknown distances don't contribute
        },
    ];
    assert!((weighted_cost(&records) - 30.0).abs() < 1e-12);
    assert!((total_moved_load(&records) - 12.0).abs() < 1e-12);
}

#[test]
fn message_stats_are_consistent() {
    let (mut net, mut loads, mut rng) = setup(128, 5, 60);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer.run(&mut net, &mut loads, None, &mut rng).unwrap();
    let m = &report.messages;
    // Every peer reports once; messages are aggregated along shared paths,
    // so LBI messages are at most (peers − 1) edges and at least the tree's
    // message depth.
    assert!(m.lbi_messages > 0);
    assert!(m.lbi_messages < net.alive_vs_count() * 2);
    // Dissemination touches at least as many inter-peer edges as the LBI
    // paths (it covers the whole tree).
    assert!(m.dissemination_messages >= m.lbi_messages);
    // Two notifications per assignment.
    assert_eq!(m.vsa_notifications, 2 * report.vsa.assignments.len());
    // Records climbed at least one inter-peer edge overall.
    assert!(m.vsa_record_hops > 0);
    // No underlay ⇒ no weighted transfer cost recorded.
    assert_eq!(m.vst_weighted_cost, 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_vsa_sweep_invariants(seed in 0u64..2000) {
        // Whole-sweep invariants over random networks and loads: no VS
        // assigned twice, no receiver overfilled beyond its published
        // spare, unassigned candidates genuinely fit nothing.
        let (net, loads, mut rng) = setup(48, 4, seed);
        let params = ClassifyParams::default();
        let system = loads.totals(&net);
        let classification = Classification::compute(&net, &loads, &params, system);
        let shed = shed_candidates(&net, &loads, &params, &classification);
        let light = light_slots(&net, &loads, &params, &classification);
        let spare_by_peer: HashMap<PeerId, f64> =
            light.iter().map(|(&p, s)| (p, s.spare)).collect();
        let tree = KTree::build(&net, 2);
        let inputs = reports::ignorant_inputs(&net, &tree, &shed, &light, &mut rng);
        let vsa = run_vsa(&tree, inputs, &VsaParams::paper(system.min_vs_load));

        let mut seen = std::collections::HashSet::new();
        let mut received: HashMap<PeerId, f64> = HashMap::new();
        for a in &vsa.assignments {
            prop_assert!(seen.insert(a.vs), "vs assigned twice");
            *received.entry(a.to).or_insert(0.0) += a.load;
        }
        for (p, got) in received {
            prop_assert!(
                got <= spare_by_peer[&p] + 1e-9,
                "receiver {p:?} overfilled: {got} > {}",
                spare_by_peer[&p]
            );
        }
        // Root leftovers fit no remaining light slot.
        for c in vsa.unassigned.shed() {
            for s in vsa.unassigned.light() {
                prop_assert!(s.spare < c.load);
            }
        }
    }
}

#[test]
fn graceful_leave_hands_load_to_absorbers() {
    let (mut net, mut loads, _) = setup(24, 3, 70);
    let total_before = loads.totals(&net).load;
    let victim = net.alive_peers()[0];
    let victim_load = loads.node_load(&net, victim);
    assert!(victim_load > 0.0);

    let handed = graceful_leave(&mut net, &mut loads, victim);
    assert!((handed - victim_load).abs() < 1e-9 * victim_load.max(1.0));
    net.check_invariants().unwrap();
    // Total load conserved across the leave (unlike a crash).
    let total_after = loads.totals(&net).load;
    assert!(
        (total_before - total_after).abs() < 1e-6 * total_before,
        "{total_before} -> {total_after}"
    );
}

#[test]
fn crash_loses_load_but_leave_does_not() {
    let (net0, loads0, _) = setup(24, 3, 71);
    let victim = net0.alive_peers()[0];

    let mut net_crash = net0.clone();
    let loads_crash = loads0.clone();
    net_crash.crash_peer(victim);
    let after_crash = loads_crash.totals(&net_crash).load;

    let mut net_leave = net0.clone();
    let mut loads_leave = loads0.clone();
    graceful_leave(&mut net_leave, &mut loads_leave, victim);
    let after_leave = loads_leave.totals(&net_leave).load;

    let before = loads0.totals(&net0).load;
    assert!(after_crash < before, "crash loses the victim's load");
    assert!((after_leave - before).abs() < 1e-6 * before);
    // The unused variable warnings guard.
    let _ = (loads_crash, net_leave);
}

#[test]
fn run_with_tree_reuses_and_tree_survives_transfers() {
    let (mut net, mut loads, mut rng) = setup(96, 5, 80);
    let mut tree = KTree::build(&net, 2);
    let balancer = LoadBalancer::new(BalancerConfig::default());
    let report = balancer
        .run_with_tree(&mut net, &mut loads, &mut tree, None, &mut rng)
        .unwrap();
    assert!(!report.transfers.is_empty());
    // Transfers keep ring positions, so the tree needs no maintenance.
    assert_eq!(
        tree.maintain_round(&net),
        0,
        "a balancing pass must leave the tree structurally intact"
    );
    // Churn, then a second pass over the same (now maintained) tree.
    net.crash_peer(report.transfers[0].assignment.to);
    for _ in 0..4 {
        net.join_peer(5, &mut rng);
    }
    for p in net.alive_peers() {
        if loads.class(p).is_none() {
            loads.set_capacity(p, 10.0);
            loads.set_class(p, proxbal_workload::CapacityClass(1));
        }
    }
    let report2 = balancer
        .run_with_tree(&mut net, &mut loads, &mut tree, None, &mut rng)
        .unwrap();
    tree.check_invariants(&net).unwrap();
    net.check_invariants().unwrap();
    assert!(report2.heavy_after() <= report2.before[&NodeClass::Heavy]);
}

#[test]
#[should_panic(expected = "tree degree must match")]
fn run_with_tree_rejects_mismatched_degree() {
    let (mut net, mut loads, mut rng) = setup(8, 2, 81);
    let mut tree = KTree::build(&net, 8);
    let balancer = LoadBalancer::new(BalancerConfig::default()); // k = 2
    let _ = balancer
        .run_with_tree(&mut net, &mut loads, &mut tree, None, &mut rng)
        .unwrap();
}

#[test]
fn absorb_join_moves_proportional_load() {
    let mut rng = StdRng::seed_from_u64(90);
    let mut net = ChordNetwork::new();
    let p0 = net.join_peer(1, &mut rng);
    let v0 = net.vss_of(p0)[0];
    let mut loads = LoadState::new();
    loads.set_capacity(p0, 10.0);
    loads.set_vs_load(v0, 100.0);

    // A new VS exactly halfway around the ring from v0 takes half the load.
    let p1 = net.join_peer(0, &mut rng);
    loads.set_capacity(p1, 10.0);
    let pos0 = net.vs(v0).position;
    let v1 = net.spawn_vs_at(p1, pos0.wrapping_add(1 << 31)).unwrap();
    let moved = absorb_join(&net, &mut loads, v1);
    assert!((moved - 50.0).abs() < 1e-6, "moved {moved}");
    assert!((loads.vs_load(v0) - 50.0).abs() < 1e-6);
    assert!((loads.vs_load(v1) - 50.0).abs() < 1e-6);
    // Total conserved.
    assert!((loads.totals(&net).load - 100.0).abs() < 1e-9);
}

#[test]
fn absorb_join_sole_vs_is_noop() {
    let mut rng = StdRng::seed_from_u64(91);
    let mut net = ChordNetwork::new();
    let p = net.join_peer(1, &mut rng);
    let v = net.vss_of(p)[0];
    let mut loads = LoadState::new();
    loads.set_capacity(p, 1.0);
    loads.set_vs_load(v, 5.0);
    assert_eq!(absorb_join(&net, &mut loads, v), 0.0);
    assert_eq!(loads.vs_load(v), 5.0);
}
