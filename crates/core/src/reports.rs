use crate::classify::{ClassifyParams, NodeClass};
use crate::lbi::{Lbi, LoadState};
use crate::pairing::{LightSlot, RendezvousLists, ShedCandidate};
use crate::selection::choose_shed_set;
use proxbal_chord::{ChordNetwork, PeerId, VsId};
use proxbal_hilbert::{CurveKind, LandmarkMapper};
use proxbal_ktree::{KTree, KtNodeId, KtNodeMap};
use proxbal_topology::{DistanceOracle, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Fixed chunk size of the parallel per-peer sweeps in this module. A
/// compile-time constant — never derived from the thread count — so chunk
/// boundaries, and with them every drain order, are thread-invariant.
const CLASSIFY_CHUNK: usize = 8192;

/// The per-node classification computed after LBI dissemination.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Classification {
    /// The disseminated system LBI `<L, C, L_min>`.
    pub system: Lbi,
    /// Class of every alive peer.
    pub classes: HashMap<PeerId, NodeClass>,
}

impl Classification {
    /// Classifies every alive peer against the (already aggregated) system
    /// LBI.
    pub fn compute(
        net: &ChordNetwork,
        loads: &LoadState,
        params: &ClassifyParams,
        system: Lbi,
    ) -> Self {
        Self::compute_with(net, loads, params, system, 1)
    }

    /// [`Classification::compute`] on `threads` workers: per-peer classes
    /// are computed over fixed-size chunks in parallel and inserted into
    /// the map serially in original peer order — identical at any thread
    /// count.
    pub fn compute_with(
        net: &ChordNetwork,
        loads: &LoadState,
        params: &ClassifyParams,
        system: Lbi,
        threads: usize,
    ) -> Self {
        let alive = net.alive_peers();
        let chunks = proxbal_parallel::map_chunked(alive.len(), CLASSIFY_CHUNK, threads, |range| {
            range
                .map(|i| {
                    let p = alive[i];
                    (p, params.classify(&loads.node_lbi(net, p), &system))
                })
                .collect::<Vec<_>>()
        });
        let mut classes = HashMap::with_capacity(alive.len());
        for chunk in chunks {
            for (p, class) in chunk {
                classes.insert(p, class);
            }
        }
        Classification { system, classes }
    }

    /// Peers of a given class.
    pub fn peers_of(&self, class: NodeClass) -> Vec<PeerId> {
        let mut v: Vec<PeerId> = self
            .classes
            .iter()
            .filter(|&(_, &c)| c == class)
            .map(|(&p, _)| p)
            .collect();
        v.sort();
        v
    }

    /// Count of peers of a given class.
    pub fn count_of(&self, class: NodeClass) -> usize {
        self.classes.values().filter(|&&c| c == class).count()
    }
}

/// The shed set of every heavy node: the minimum-total-load subset of its
/// virtual servers whose removal takes it to (or below) its target (§3.4).
pub fn shed_candidates(
    net: &ChordNetwork,
    loads: &LoadState,
    params: &ClassifyParams,
    classification: &Classification,
) -> BTreeMap<PeerId, Vec<ShedCandidate>> {
    shed_candidates_with(net, loads, params, classification, 1)
}

/// [`shed_candidates`] on `threads` workers: the minimum-load shed subset
/// of each heavy peer is an independent knapsack-style selection, computed
/// in parallel and drained into the sorted map in original (ascending
/// peer) order — identical at any thread count.
pub fn shed_candidates_with(
    net: &ChordNetwork,
    loads: &LoadState,
    params: &ClassifyParams,
    classification: &Classification,
    threads: usize,
) -> BTreeMap<PeerId, Vec<ShedCandidate>> {
    let heavy = classification.peers_of(NodeClass::Heavy);
    let per_peer = proxbal_parallel::map_items(&heavy, threads, |_, &p| {
        let node = loads.node_lbi(net, p);
        let excess = params.excess(&node, &classification.system);
        let vss: Vec<(VsId, f64)> = net
            .vss_of(p)
            .iter()
            .map(|&v| (v, loads.vs_load(v)))
            .collect();
        let chosen = choose_shed_set(&vss, excess);
        chosen
            .into_iter()
            .map(|v| ShedCandidate {
                load: loads.vs_load(v),
                vs: v,
                from: p,
            })
            .collect::<Vec<ShedCandidate>>()
    });
    let mut out = BTreeMap::new();
    for (&p, cands) in heavy.iter().zip(per_peer) {
        if !cands.is_empty() {
            out.insert(p, cands);
        }
    }
    out
}

/// The spare-room slot of every light node.
pub fn light_slots(
    net: &ChordNetwork,
    loads: &LoadState,
    params: &ClassifyParams,
    classification: &Classification,
) -> BTreeMap<PeerId, LightSlot> {
    light_slots_with(net, loads, params, classification, 1)
}

/// [`light_slots`] on `threads` workers (same structure as
/// [`shed_candidates_with`]).
pub fn light_slots_with(
    net: &ChordNetwork,
    loads: &LoadState,
    params: &ClassifyParams,
    classification: &Classification,
    threads: usize,
) -> BTreeMap<PeerId, LightSlot> {
    let light = classification.peers_of(NodeClass::Light);
    let spares = proxbal_parallel::map_items(&light, threads, |_, &p| {
        let node = loads.node_lbi(net, p);
        params.spare(&node, &classification.system)
    });
    let mut out = BTreeMap::new();
    for (&p, spare) in light.iter().zip(spares) {
        if spare > 0.0 {
            out.insert(p, LightSlot { spare, peer: p });
        }
    }
    out
}

/// Builds the VSA sweep inputs the **proximity-ignorant** way (§3.4): every
/// heavy/light node reports its records through the KT leaf of one of its
/// own randomly chosen virtual servers, so records enter the tree wherever
/// the node happens to sit on the ring.
pub fn ignorant_inputs<R: Rng>(
    net: &ChordNetwork,
    tree: &KTree,
    shed: &BTreeMap<PeerId, Vec<ShedCandidate>>,
    light: &BTreeMap<PeerId, LightSlot>,
    rng: &mut R,
) -> KtNodeMap<Box<RendezvousLists>> {
    let mut inputs: KtNodeMap<Box<RendezvousLists>> = KtNodeMap::with_slot_bound(tree.slot_bound());
    // A peer with no virtual servers (possible for light peers that shed
    // everything in an earlier pass) enters at the root.
    let entry_for = |p: PeerId, rng: &mut R| -> KtNodeId {
        match net.vss_of(p).choose(rng) {
            Some(vs) => tree.report_target(net, *vs),
            None => tree.root(),
        }
    };
    for (&p, cands) in shed {
        let target = entry_for(p, rng);
        let lists = inputs.or_default(target);
        for c in cands {
            lists.push_shed(*c);
        }
    }
    for (&p, slot) in light {
        let target = entry_for(p, rng);
        inputs.or_default(target).push_light(*slot);
    }
    inputs
}

/// Proximity publication configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProximityParams {
    /// Hilbert grid bits per landmark dimension (`n = m·bits` grids total).
    /// The paper's default landmark space is 15-dimensional; 2 bits per
    /// dimension gives 2³⁰ grids.
    pub bits_per_dim: u32,
    /// Center landmark vectors (subtract the minimum coordinate) before
    /// quantization, removing the common-mode gateway offset that integer
    /// hop counts introduce — see [`LandmarkMapper::centered`].
    pub center_vectors: bool,
    /// Min–max scale each dimension to its observed range across the
    /// participating nodes before quantization, so the grid uses its full
    /// resolution — see [`LandmarkMapper::with_ranges`].
    pub per_dim_scaling: bool,
    /// Number of landmark dimensions used for the **Hilbert key** (`None` =
    /// all). A 32-bit ring key keeps only the top ~2 bit-planes of an
    /// m-dimensional Hilbert index, and rendezvous granularity (one virtual
    /// server's arc, ~2¹⁸ ids at paper scale) cuts that to barely one
    /// plane — so with all 15 dimensions the key cannot resolve anything
    /// finer than "which quadrant of the landmark space". Using the first
    /// few landmarks (they are spread across transit domains) keeps 4–7
    /// usable bit-planes and restores stub-level rendezvous. See DESIGN.md.
    pub key_dims: Option<usize>,
    /// Space-filling curve ordering the grid cells (Hilbert in the paper;
    /// Morton available as an ablation baseline).
    pub curve: CurveKind,
}

impl Default for ProximityParams {
    fn default() -> Self {
        ProximityParams {
            bits_per_dim: 16,
            center_vectors: false,
            per_dim_scaling: true,
            key_dims: Some(2),
            curve: CurveKind::Hilbert,
        }
    }
}

/// Builds the VSA sweep inputs the **proximity-aware** way (§4.3): every
/// heavy/light node measures its landmark vector, maps it to a Hilbert
/// number used as a DHT key, and publishes its records *at that key* — so
/// records of physically close nodes land close together on the ring and
/// meet at deep rendezvous points. Each record is routed to the owner
/// virtual server of the key, which reports it through its own KT leaf.
#[allow(clippy::too_many_arguments)]
pub fn proximity_inputs(
    net: &ChordNetwork,
    tree: &KTree,
    shed: &BTreeMap<PeerId, Vec<ShedCandidate>>,
    light: &BTreeMap<PeerId, LightSlot>,
    params: &ProximityParams,
    oracle: &DistanceOracle,
    landmarks: &[NodeId],
) -> KtNodeMap<Box<RendezvousLists>> {
    proximity_inputs_with(net, tree, shed, light, params, oracle, landmarks, 1)
}

/// [`proximity_inputs`] on `threads` workers: landmark vectors and
/// per-participant DHT targets (key mapping, ring ownership, root descent)
/// are pure functions of immutable state, computed in parallel; the
/// rendezvous lists are then filled serially in original (sorted-map)
/// order, so record order inside every list is identical at any thread
/// count.
#[allow(clippy::too_many_arguments)]
pub fn proximity_inputs_with(
    net: &ChordNetwork,
    tree: &KTree,
    shed: &BTreeMap<PeerId, Vec<ShedCandidate>>,
    light: &BTreeMap<PeerId, LightSlot>,
    params: &ProximityParams,
    oracle: &DistanceOracle,
    landmarks: &[NodeId],
    threads: usize,
) -> KtNodeMap<Box<RendezvousLists>> {
    assert!(!landmarks.is_empty(), "need at least one landmark");
    // Landmark vectors of every participating node, projected onto the
    // key dimensions.
    let dims = params
        .key_dims
        .map(|k| k.clamp(1, landmarks.len()))
        .unwrap_or(landmarks.len());
    let landmarks = &landmarks[..dims];
    // The Hilbert index is carried as u128: clamp bits so dims·bits ≤ 128.
    let bits = params.bits_per_dim.clamp(1, (128 / dims as u32).min(32));
    let participants: Vec<PeerId> = shed.keys().chain(light.keys()).copied().collect();
    let measured = proxbal_parallel::map_items(&participants, threads, |_, &p| {
        let attach = net.peer(p).underlay;
        assert!(
            attach != u32::MAX,
            "peer {p:?} has no underlay attachment; proximity-aware mode \
             requires ChordNetwork::attach"
        );
        oracle.landmark_vector(attach, landmarks)
    });
    let mut vectors: HashMap<PeerId, Vec<u32>> = HashMap::with_capacity(participants.len());
    let mut scale_max = 1u32;
    for (&p, v) in participants.iter().zip(measured) {
        scale_max = scale_max.max(v.iter().copied().max().unwrap_or(0));
        vectors.insert(p, v);
    }
    let mapper = if params.per_dim_scaling {
        let mut ranges = vec![(u32::MAX, 0u32); dims];
        for v in vectors.values() {
            let v: Vec<u32> = if params.center_vectors {
                let min = v.iter().copied().min().unwrap_or(0);
                v.iter().map(|&d| d - min).collect()
            } else {
                v.clone()
            };
            for (r, &d) in ranges.iter_mut().zip(&v) {
                r.0 = r.0.min(d);
                r.1 = r.1.max(d);
            }
        }
        for r in ranges.iter_mut() {
            if r.0 > r.1 {
                *r = (0, 1);
            }
        }
        LandmarkMapper::with_ranges(dims as u32, bits, ranges)
    } else if params.center_vectors {
        LandmarkMapper::centered(dims as u32, bits, scale_max)
    } else {
        LandmarkMapper::new(dims as u32, bits, scale_max)
    }
    .with_curve(params.curve);

    let mut inputs: KtNodeMap<Box<RendezvousLists>> = KtNodeMap::with_slot_bound(tree.slot_bound());
    let target_for = |p: PeerId| -> KtNodeId {
        let v = &vectors[&p];
        let v: Vec<u32> = if params.center_vectors {
            let min = v.iter().copied().min().unwrap_or(0);
            v.iter().map(|&d| d - min).collect()
        } else {
            v.clone()
        };
        let key = mapper.dht_key(&v);
        let owner = net.ring().owner(key).expect("non-empty ring");
        tree.report_target(net, owner)
    };
    // `participants` lists shed keys then light keys, each ascending — the
    // same order the two fill loops below walk, so zipping targets back is
    // positional.
    let targets = proxbal_parallel::map_items(&participants, threads, |_, &p| target_for(p));
    let mut targets = targets.into_iter();
    for cands in shed.values() {
        let target = targets.next().expect("one target per shed peer");
        let lists = inputs.or_default(target);
        for c in cands {
            lists.push_shed(*c);
        }
    }
    for slot in light.values() {
        let target = targets.next().expect("one target per light peer");
        inputs.or_default(target).push_light(*slot);
    }
    inputs
}
