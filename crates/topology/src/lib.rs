//! Synthetic Internet topologies and distance oracles.
//!
//! The paper evaluates on two GT-ITM transit-stub topologies of ~5,000 nodes
//! ("ts5k-large" and "ts5k-small") where **interdomain hops cost 3 latency
//! units and intradomain hops cost 1**. GT-ITM itself is not available
//! offline, so this crate implements a from-scratch transit-stub generator
//! with the same shape parameters (see `DESIGN.md` §2) — the paper's results
//! depend only on the transit-stub *structure* and the 3:1 cost ratio.
//!
//! * [`Graph`] — undirected weighted graph in adjacency-list form with
//!   Dijkstra shortest paths.
//! * [`TransitStubConfig`] / [`TransitStubTopology`] — the generator. The two
//!   paper presets are [`TransitStubConfig::ts5k_large`] and
//!   [`TransitStubConfig::ts5k_small`].
//! * [`select_landmarks`] — spread landmark nodes across transit domains
//!   (the paper uses 15 landmarks).
//! * [`DistanceOracle`] — caching multi-source shortest-path oracle used to
//!   derive landmark vectors and per-transfer hop costs. Rows are stored
//!   block-compressed ([`CompactRow`]) so bounded caches hold several times
//!   more rows per byte.
//! * [`LandmarkOracle`] — the hierarchical approximate tier: O(m) triangle-
//!   inequality distance bounds from precomputed landmark vectors, behind
//!   the same [`DistanceQuery`] trait as the exact oracle.

mod graph;
mod landmark_oracle;
mod landmarks;
mod oracle;
mod transit_stub;

pub use graph::{DijkstraScratch, Graph, NodeId, INFINITE_DISTANCE};
pub use landmark_oracle::LandmarkOracle;
pub use landmarks::select_landmarks;
pub use oracle::{CacheStats, CompactRow, DistanceOracle, DistanceQuery};
pub use transit_stub::{DomainKind, TransitStubConfig, TransitStubTopology};

#[cfg(test)]
mod tests;
