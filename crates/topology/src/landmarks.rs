use crate::transit_stub::TransitStubTopology;
use crate::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `count` landmark nodes spread across transit domains.
///
/// The paper uses 15 landmark nodes for landmark clustering (§4.1) and notes
/// that "a sufficient number of landmark nodes need to be used to reduce the
/// probability of false clustering". Spreading landmarks over distinct
/// transit domains maximizes the information in each landmark-vector
/// coordinate: two nodes in the same stub domain then agree on *every*
/// coordinate, while nodes in different regions disagree on most.
///
/// Landmarks are drawn round-robin over transit domains (one random transit
/// node per domain per round) until `count` are chosen; if the topology has
/// fewer transit nodes than `count`, stub nodes are drawn to fill up.
pub fn select_landmarks<R: Rng>(
    topo: &TransitStubTopology,
    count: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut chosen = Vec::with_capacity(count);
    let mut pools: Vec<Vec<NodeId>> = topo
        .transit_by_domain
        .iter()
        .map(|d| {
            let mut v = d.clone();
            v.shuffle(rng);
            v
        })
        .collect();

    'outer: loop {
        let mut progressed = false;
        for pool in pools.iter_mut() {
            if let Some(n) = pool.pop() {
                chosen.push(n);
                progressed = true;
                if chosen.len() == count {
                    break 'outer;
                }
            }
        }
        if !progressed {
            break;
        }
    }

    if chosen.len() < count {
        let mut stubs = topo.stub_nodes();
        stubs.shuffle(rng);
        for n in stubs {
            if chosen.len() == count {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
    }

    chosen
}
