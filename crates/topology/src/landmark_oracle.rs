//! Hierarchical (landmark-approximate) distance oracle.
//!
//! The exact [`DistanceOracle`](crate::DistanceOracle) answers point
//! queries from full Dijkstra rows — exact, but one row per distinct
//! source is the scale ceiling at millions of virtual servers. The
//! [`LandmarkOracle`] trades exactness for O(m) queries over *m*
//! precomputed landmark vectors: by the triangle inequality, for any
//! landmark ℓ,
//!
//! ```text
//!   |d(a, ℓ) − d(b, ℓ)|  ≤  d(a, b)  ≤  d(a, ℓ) + d(ℓ, b)
//! ```
//!
//! so the maximum of the left-hand sides over all landmarks is a lower
//! bound and the minimum of the right-hand sides an upper bound. When the
//! two meet the distance is known exactly without any per-pair Dijkstra;
//! when they don't, the caller decides whether the gap matters (the
//! transfer path refines the highest-traffic sources exactly and keeps the
//! upper bound for the tail — see `proxbal_core`'s filter-then-refine).

use crate::graph::{NodeId, INFINITE_DISTANCE};
use crate::oracle::{DistanceOracle, DistanceQuery};

/// Precomputed landmark vectors for every node of a graph, answering
/// approximate distance queries in O(landmarks) time and `4·m` bytes per
/// node of storage.
///
/// Built once per scenario from `m` exact Dijkstra rows (one per
/// landmark); queries never touch the graph again. The oracle is a pure
/// function of `(graph, landmarks)`, so results are bit-identical at any
/// thread count.
#[derive(Clone, Debug)]
pub struct LandmarkOracle {
    landmarks: Vec<NodeId>,
    /// Node-major distance matrix: `vectors[node · m + j] = d(node, landmarks[j])`.
    vectors: Vec<u32>,
    nodes: usize,
}

impl LandmarkOracle {
    /// Builds the oracle by filling (or reusing) the exact oracle's rows
    /// for `landmarks` — `threads` workers — and transposing them into
    /// node-major vectors.
    pub fn build(oracle: &DistanceOracle, landmarks: &[NodeId], threads: usize) -> Self {
        assert!(!landmarks.is_empty(), "need at least one landmark");
        oracle.precompute(landmarks, threads);
        let nodes = oracle.graph().node_count();
        let m = landmarks.len();
        let mut vectors = vec![0u32; nodes * m];
        for (j, &l) in landmarks.iter().enumerate() {
            let row = oracle.row(l);
            for node in 0..nodes {
                vectors[node * m + j] = row.get(node);
            }
        }
        LandmarkOracle {
            landmarks: landmarks.to_vec(),
            vectors,
            nodes,
        }
    }

    /// Assembles an oracle from externally computed node-major vectors
    /// (the sharded preparation path builds per-shard slices in parallel
    /// and concatenates them in shard order).
    pub fn from_parts(landmarks: Vec<NodeId>, nodes: usize, vectors: Vec<u32>) -> Self {
        assert!(!landmarks.is_empty(), "need at least one landmark");
        assert_eq!(vectors.len(), nodes * landmarks.len());
        LandmarkOracle {
            landmarks,
            vectors,
            nodes,
        }
    }

    /// The landmark nodes, in vector order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The landmark vector of `node`.
    #[inline]
    pub fn vector(&self, node: NodeId) -> &[u32] {
        let m = self.landmarks.len();
        let at = node as usize * m;
        &self.vectors[at..at + m]
    }

    /// Triangle-inequality `(lower, upper)` bounds on `d(a, b)`.
    ///
    /// Landmarks that cannot reach one of the endpoints contribute no
    /// upper bound; if no landmark reaches both, the upper bound is
    /// [`INFINITE_DISTANCE`] (and so is the lower if either endpoint is
    /// globally unreachable — matching what exact Dijkstra reports).
    pub fn bounds(&self, a: NodeId, b: NodeId) -> (u32, u32) {
        if a == b {
            return (0, 0);
        }
        let va = self.vector(a);
        let vb = self.vector(b);
        let mut lower = 0u32;
        let mut upper = INFINITE_DISTANCE;
        for (&da, &db) in va.iter().zip(vb) {
            match (da == INFINITE_DISTANCE, db == INFINITE_DISTANCE) {
                (false, false) => {
                    lower = lower.max(da.abs_diff(db));
                    upper = upper.min(da + db);
                }
                // One endpoint reachable from ℓ, the other not: they lie
                // in different components, so the true distance is ∞.
                (false, true) | (true, false) => return (INFINITE_DISTANCE, INFINITE_DISTANCE),
                (true, true) => {}
            }
        }
        (lower, upper)
    }

    /// The upper-bound estimate `min_ℓ d(a, ℓ) + d(ℓ, b)` — the value the
    /// approximate oracle reports where no exact refinement happened.
    #[inline]
    pub fn estimate(&self, a: NodeId, b: NodeId) -> u32 {
        self.bounds(a, b).1
    }

    /// Bytes of vector storage (the whole oracle is resident by design).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.vectors.capacity() * 4 + self.landmarks.capacity() * 4
    }
}

impl DistanceQuery for LandmarkOracle {
    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        self.estimate(u, v)
    }
}
