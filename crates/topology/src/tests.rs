use crate::transit_stub::{INTER_DOMAIN_WEIGHT, INTRA_DOMAIN_WEIGHT};
use crate::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc as StdArc;

fn small_topo(seed: u64) -> TransitStubTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    TransitStubTopology::generate(TransitStubConfig::tiny(), &mut rng)
}

#[test]
fn graph_basic_ops() {
    let mut g = Graph::new(4);
    assert!(g.add_edge(0, 1, 1));
    assert!(g.add_edge(1, 2, 2));
    assert!(!g.add_edge(0, 1, 5)); // duplicate ignored
    assert!(!g.add_edge(2, 2, 1)); // self loop rejected
    assert_eq!(g.edge_count(), 2);
    assert!(g.has_edge(1, 0));
    assert_eq!(g.degree(1), 2);
    assert!(!g.is_connected()); // node 3 isolated
}

#[test]
fn dijkstra_matches_hand_computed() {
    // 0 -1- 1 -1- 2
    //  \----5----/
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(0, 2, 5);
    let d = g.dijkstra(0);
    assert_eq!(d, vec![0, 1, 2]);
}

#[test]
fn dijkstra_unreachable_is_infinite() {
    let g = Graph::new(2);
    let d = g.dijkstra(0);
    assert_eq!(d[1], INFINITE_DISTANCE);
}

/// Brute-force Bellman-Ford style relaxation as an independent check.
fn bellman_ford(g: &Graph, src: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut dist = vec![u64::from(INFINITE_DISTANCE); n];
    dist[src as usize] = 0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n as NodeId {
            if dist[u as usize] == u64::from(INFINITE_DISTANCE) {
                continue;
            }
            for &(v, w) in g.neighbors(u) {
                let nd = dist[u as usize] + u64::from(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist.into_iter()
        .map(|d| d.min(u64::from(INFINITE_DISTANCE)) as u32)
        .collect()
}

#[test]
fn dijkstra_agrees_with_bellman_ford_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..20 {
        let n = 30;
        let mut g = Graph::new(n);
        for _ in 0..60 {
            let u = rand::Rng::gen_range(&mut rng, 0..n as NodeId);
            let v = rand::Rng::gen_range(&mut rng, 0..n as NodeId);
            if u != v {
                g.add_edge(u, v, rand::Rng::gen_range(&mut rng, 1..5));
            }
        }
        for src in [0, 7, 29] {
            assert_eq!(g.dijkstra(src), bellman_ford(&g, src));
        }
    }
}

#[test]
fn tiny_topology_is_connected_and_shaped() {
    let topo = small_topo(1);
    assert!(topo.graph.is_connected());
    let cfg = topo.config;
    assert_eq!(topo.transit_by_domain.len(), cfg.transit_domains);
    assert_eq!(
        topo.stub_by_domain.len(),
        cfg.transit_domains * cfg.transit_nodes_per_domain * cfg.stub_domains_per_transit_node
    );
    // Every node is classified, and classification matches group membership.
    for (d, ids) in topo.transit_by_domain.iter().enumerate() {
        for &n in ids {
            assert_eq!(topo.kind(n), DomainKind::Transit { domain: d as u32 });
        }
    }
    for (d, ids) in topo.stub_by_domain.iter().enumerate() {
        for &n in ids {
            assert_eq!(topo.kind(n), DomainKind::Stub { domain: d as u32 });
        }
    }
}

#[test]
fn ts5k_presets_have_paper_scale() {
    // Around 5,000 nodes each (paper: "approximately 5,000 nodes each").
    let large = TransitStubConfig::ts5k_large().expected_nodes();
    let small = TransitStubConfig::ts5k_small().expected_nodes();
    assert!((4000..7000).contains(&large), "ts5k-large expected {large}");
    assert!((4000..7000).contains(&small), "ts5k-small expected {small}");
}

#[test]
fn ts5k_large_generates_connected() {
    let mut rng = StdRng::seed_from_u64(7);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    assert!(topo.graph.is_connected());
    let n = topo.node_count();
    assert!((4000..7000).contains(&n), "actual node count {n}");
}

#[test]
fn interdomain_edges_cost_three() {
    let topo = small_topo(3);
    // Every edge between nodes of different domains must have weight 3,
    // intradomain edges weight 1.
    for u in 0..topo.node_count() as NodeId {
        for &(v, w) in topo.graph.neighbors(u) {
            let same_domain = topo.kind(u) == topo.kind(v);
            if same_domain {
                assert_eq!(w, INTRA_DOMAIN_WEIGHT, "intra edge {u}-{v}");
            } else {
                assert_eq!(w, INTER_DOMAIN_WEIGHT, "inter edge {u}-{v}");
            }
        }
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    let a = small_topo(99);
    let b = small_topo(99);
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    for u in 0..a.node_count() as NodeId {
        assert_eq!(a.graph.neighbors(u), b.graph.neighbors(u));
    }
}

#[test]
fn landmarks_spread_over_transit_domains() {
    let mut rng = StdRng::seed_from_u64(5);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let lms = select_landmarks(&topo, 15, &mut rng);
    assert_eq!(lms.len(), 15);
    // No duplicates.
    let mut sorted = lms.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 15);
    // ts5k-large has 15 transit nodes across 5 domains: all must be used,
    // hitting every domain.
    let mut domains: Vec<u32> = lms
        .iter()
        .map(|&l| match topo.kind(l) {
            DomainKind::Transit { domain } => domain,
            DomainKind::Stub { .. } => panic!("landmark should be transit node here"),
        })
        .collect();
    domains.sort_unstable();
    domains.dedup();
    assert_eq!(domains.len(), 5);
}

#[test]
fn landmarks_fill_from_stubs_when_needed() {
    let topo = small_topo(11); // only 4 transit nodes
    let mut rng = StdRng::seed_from_u64(6);
    let lms = select_landmarks(&topo, 10, &mut rng);
    assert_eq!(lms.len(), 10);
}

#[test]
fn oracle_matches_direct_dijkstra() {
    let topo = small_topo(2);
    let g = StdArc::new(topo.graph.clone());
    let oracle = DistanceOracle::new(g.clone());
    let direct = g.dijkstra(0);
    for v in 0..g.node_count() as NodeId {
        assert_eq!(oracle.distance(0, v), direct[v as usize]);
    }
    assert_eq!(oracle.cached_rows(), 1);
}

#[test]
fn oracle_precompute_parallel() {
    let topo = small_topo(8);
    let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));
    let sources: Vec<NodeId> = (0..topo.node_count() as NodeId).collect();
    oracle.precompute(&sources, 4);
    assert_eq!(oracle.cached_rows(), topo.node_count());
    // Spot-check symmetry (undirected graph ⇒ symmetric distances).
    for &u in sources.iter().step_by(3) {
        for &v in sources.iter().step_by(5) {
            assert_eq!(oracle.distance(u, v), oracle.distance(v, u));
        }
    }
}

#[test]
fn oracle_precompute_cursor_any_thread_count() {
    // Work is handed out through a shared atomic cursor, so every thread
    // count fills exactly the same rows with exactly the same contents.
    let topo = small_topo(9);
    let graph = StdArc::new(topo.graph.clone());
    let baseline = DistanceOracle::new(StdArc::clone(&graph));
    let sources: Vec<NodeId> = (0..topo.node_count() as NodeId).step_by(2).collect();
    baseline.precompute(&sources, 1);
    for threads in [1usize, 2, 8] {
        let oracle = DistanceOracle::new(StdArc::clone(&graph));
        oracle.precompute(&sources, threads);
        assert_eq!(oracle.cached_rows(), sources.len(), "threads={threads}");
        for &src in &sources {
            assert_eq!(
                oracle.row(src).to_vec(),
                baseline.row(src).to_vec(),
                "row {src} differs at threads={threads}"
            );
        }
    }
}

#[test]
fn pinned_rows_survive_eviction_pressure() {
    let topo = small_topo(3);
    let graph = StdArc::new(topo.graph.clone());
    let oracle = DistanceOracle::with_capacity(StdArc::clone(&graph), 4);
    let pinned: Vec<NodeId> = vec![0, 1];
    for &p in &pinned {
        oracle.pin(p);
    }
    // Touch every row in the graph — far more than capacity, so the clock
    // hand sweeps the queue many times over.
    let n = topo.node_count() as NodeId;
    for src in 0..n {
        let _ = oracle.row(src);
    }
    for &p in &pinned {
        assert!(oracle.is_cached(p), "pinned row {p} was evicted");
    }
    // Unpinned residency stays bounded by the capacity.
    assert!(oracle.cached_rows() <= oracle.capacity() + pinned.len());
    // Eviction only discards memoized values; answers never change.
    let unbounded = DistanceOracle::new(graph);
    for src in (0..n).step_by(5) {
        assert_eq!(oracle.distance(src, n - 1), unbounded.distance(src, n - 1));
    }
}

#[test]
fn landmark_vector_has_expected_shape() {
    let topo = small_topo(4);
    let mut rng = StdRng::seed_from_u64(4);
    let lms = select_landmarks(&topo, 4, &mut rng);
    let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));
    let stub = topo.stub_nodes()[0];
    let vec = oracle.landmark_vector(stub, &lms);
    assert_eq!(vec.len(), 4);
    // A landmark's own vector has a zero coordinate at its position.
    let own = oracle.landmark_vector(lms[2], &lms);
    assert_eq!(own[2], 0);
}

#[test]
fn same_stub_nodes_have_similar_landmark_vectors() {
    // The premise of landmark clustering (§4.1): physically close nodes have
    // similar landmark vectors. Two nodes in the same stub domain must have
    // coordinates differing by at most the stub's internal diameter, while a
    // node in a different transit domain differs by interdomain distances.
    let mut rng = StdRng::seed_from_u64(21);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let lms = select_landmarks(&topo, 15, &mut rng);
    let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));

    let stub0 = &topo.stub_by_domain[0];
    let a = oracle.landmark_vector(stub0[0], &lms);
    let b = oracle.landmark_vector(stub0[1], &lms);
    let same_diff: u32 = a.iter().zip(&b).map(|(x, y)| x.abs_diff(*y)).sum();

    // A node hanging off the *last* transit domain.
    let far = *topo.stub_by_domain.last().unwrap().first().unwrap();
    let c = oracle.landmark_vector(far, &lms);
    let far_diff: u32 = a.iter().zip(&c).map(|(x, y)| x.abs_diff(*y)).sum();

    assert!(
        same_diff < far_diff,
        "same-stub diff {same_diff} should be below cross-domain diff {far_diff}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_generated_topologies_connected(seed in 0u64..500) {
        let topo = small_topo(seed);
        prop_assert!(topo.graph.is_connected());
    }

    #[test]
    fn prop_bucket_dijkstra_matches_heap(seed in 0u64..200) {
        // The bucket-queue kernel must agree with the binary-heap baseline
        // on every source, in both weight regimes (hop costs well inside
        // the bucket threshold; latency weights that may fall back).
        let topo = small_topo(seed);
        let mut scratch = DijkstraScratch::new();
        for graph in [&topo.graph, &topo.latency_graph] {
            let n = graph.node_count() as NodeId;
            for src in (0..n).step_by(7) {
                let heap = graph.dijkstra_reference(src);
                prop_assert_eq!(&graph.dijkstra(src), &heap);
                // The scratch is deliberately reused across sources and
                // graphs — stale state must not leak between runs.
                prop_assert_eq!(graph.dijkstra_into(src, &mut scratch), &heap[..]);
            }
        }
    }

    #[test]
    fn prop_precompute_threads_match_sequential(seed in 0u64..50) {
        // Batched multi-source precompute fills exactly the same rows
        // regardless of thread count.
        let topo = small_topo(seed);
        let graph = StdArc::new(topo.graph.clone());
        let sequential = DistanceOracle::new(StdArc::clone(&graph));
        let threaded = DistanceOracle::new(graph);
        let n = topo.node_count() as NodeId;
        let sources: Vec<NodeId> = (0..n).step_by(3).collect();
        sequential.precompute(&sources, 1);
        threaded.precompute(&sources, 4);
        prop_assert_eq!(sequential.cached_rows(), threaded.cached_rows());
        for &src in &sources {
            let seq_row = sequential.row(src);
            let thr_row = threaded.row(src);
            prop_assert_eq!(seq_row.to_vec(), thr_row.to_vec());
        }
    }

    #[test]
    fn prop_compact_row_roundtrip(seed in 0u64..200) {
        // Block compression is lossless for arbitrary u32 rows, including
        // INFINITE_DISTANCE entries and spreads needing every width class.
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rand::Rng::gen_range(&mut rng, 0usize..2000);
        let values: Vec<u32> = (0..len)
            .map(|_| match rand::Rng::gen_range(&mut rng, 0u8..5) {
                0 => rand::Rng::gen_range(&mut rng, 0u32..4),
                1 => rand::Rng::gen_range(&mut rng, 0u32..300),
                2 => rand::Rng::gen_range(&mut rng, 0u32..100_000),
                3 => rand::Rng::gen(&mut rng),
                _ => INFINITE_DISTANCE,
            })
            .collect();
        let row = CompactRow::compress(&values);
        prop_assert_eq!(row.len(), values.len());
        prop_assert_eq!(row.to_vec(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(row.get(i), v);
        }
    }

    #[test]
    fn prop_landmark_bounds_bracket_exact_distance(seed in 0u64..50) {
        // The LandmarkOracle's triangle-inequality bounds must always
        // bracket the exact shortest-path distance, and the approximate
        // DistanceQuery answer (the upper bound) must never undershoot.
        let topo = small_topo(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let lms = select_landmarks(&topo, 6, &mut rng);
        let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));
        let lm = LandmarkOracle::build(&oracle, &lms, 2);
        let n = topo.node_count() as NodeId;
        for u in (0..n).step_by(5) {
            for v in (0..n).step_by(7) {
                let exact = oracle.distance(u, v);
                let (lo, hi) = lm.bounds(u, v);
                prop_assert!(lo <= exact, "lower {lo} > exact {exact} for ({u},{v})");
                prop_assert!(exact <= hi, "upper {hi} < exact {exact} for ({u},{v})");
                prop_assert!(DistanceQuery::distance(&lm, u, v) >= exact);
            }
        }
        // A landmark's own distances are recovered exactly.
        for &l in &lms {
            for v in (0..n).step_by(11) {
                let (lo, hi) = lm.bounds(l, v);
                let exact = oracle.distance(l, v);
                prop_assert_eq!(lo, exact);
                prop_assert_eq!(hi, exact);
            }
        }
    }

    #[test]
    fn prop_triangle_inequality(seed in 0u64..50) {
        let topo = small_topo(seed);
        let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));
        let n = topo.node_count() as NodeId;
        for u in (0..n).step_by(5) {
            for v in (0..n).step_by(7) {
                for w in (0..n).step_by(3) {
                    let duv = u64::from(oracle.distance(u, v));
                    let duw = u64::from(oracle.distance(u, w));
                    let dwv = u64::from(oracle.distance(w, v));
                    prop_assert!(duv <= duw + dwv);
                }
            }
        }
    }
}

#[test]
fn oracle_accounts_resident_bytes() {
    let topo = small_topo(12);
    let graph = StdArc::new(topo.graph.clone());
    let oracle = DistanceOracle::with_capacity(StdArc::clone(&graph), 2);
    assert_eq!(oracle.resident_bytes(), 0);
    let r0 = oracle.row(0).size_bytes();
    assert_eq!(oracle.resident_bytes(), r0);
    // Compression on the hop metric beats the raw 4 B/entry row by a wide
    // margin: stub domains share distances, so most blocks are 0–1 B/entry.
    // (Allow for the fixed struct + block-directory overhead, which
    // dominates on the tiny test topology.)
    let overhead = std::mem::size_of::<CompactRow>() + 64;
    assert!(
        r0 < overhead + graph.node_count() * 2,
        "row bytes {r0} too large for {} nodes",
        graph.node_count()
    );
    // Evictions release their bytes: residency stays bounded.
    for src in 0..graph.node_count() as NodeId {
        let _ = oracle.row(src);
    }
    let bound = 3 * (oracle.capacity() + 1) * r0;
    assert!(oracle.resident_bytes() <= bound);
}

#[test]
fn landmark_oracle_from_parts_matches_build() {
    let topo = small_topo(13);
    let mut rng = StdRng::seed_from_u64(13);
    let lms = select_landmarks(&topo, 5, &mut rng);
    let oracle = DistanceOracle::new(StdArc::new(topo.graph.clone()));
    let built = LandmarkOracle::build(&oracle, &lms, 1);
    // Reassemble node-major vectors by hand (what the sharded prepare does
    // per shard) and check the two oracles agree everywhere.
    let n = topo.node_count();
    let mut vectors = Vec::with_capacity(n * lms.len());
    for node in 0..n as NodeId {
        vectors.extend(oracle.landmark_vector(node, &lms));
    }
    let parts = LandmarkOracle::from_parts(lms.clone(), n, vectors);
    for u in (0..n as NodeId).step_by(17) {
        for v in (0..n as NodeId).step_by(13) {
            assert_eq!(built.bounds(u, v), parts.bounds(u, v));
        }
    }
    assert_eq!(built.landmarks(), parts.landmarks());
}

#[test]
fn latency_graph_shares_edges_with_hop_graph() {
    let topo = small_topo(31);
    assert_eq!(topo.graph.node_count(), topo.latency_graph.node_count());
    assert_eq!(topo.graph.edge_count(), topo.latency_graph.edge_count());
    for u in 0..topo.node_count() as NodeId {
        let mut hop_neighbors: Vec<NodeId> =
            topo.graph.neighbors(u).iter().map(|&(v, _)| v).collect();
        let mut lat_neighbors: Vec<NodeId> = topo
            .latency_graph
            .neighbors(u)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        hop_neighbors.sort_unstable();
        lat_neighbors.sort_unstable();
        assert_eq!(hop_neighbors, lat_neighbors);
    }
    assert!(topo.latency_graph.is_connected());
}

#[test]
fn coords_cluster_stub_members() {
    let mut rng = StdRng::seed_from_u64(33);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let dist = |a: NodeId, b: NodeId| -> f64 {
        let (ax, ay) = topo.coords[a as usize];
        let (bx, by) = topo.coords[b as usize];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    };
    // Same-stub pairs are far closer in the plane than cross-domain pairs.
    let s0 = &topo.stub_by_domain[0];
    let s_far = topo.stub_by_domain.last().unwrap();
    let same = dist(s0[0], s0[1]);
    let cross = dist(s0[0], s_far[0]);
    assert!(
        same * 5.0 < cross,
        "same-stub {same:.1} should be well below cross-domain {cross:.1}"
    );
}

#[test]
fn latency_distances_distinguish_sibling_stubs() {
    // The property the landmark mapping relies on (DESIGN.md §4b.2): two
    // stub domains hanging off the same transit node get different latency
    // signatures, even though their hop-count signatures are nearly equal.
    let mut rng = StdRng::seed_from_u64(34);
    let topo = TransitStubTopology::generate(TransitStubConfig::ts5k_large(), &mut rng);
    let lat = DistanceOracle::new(StdArc::new(topo.latency_graph.clone()));
    let lms = select_landmarks(&topo, 15, &mut rng);
    // Stub domains 0 and 1 hang off the same transit node by construction.
    let a = lat.landmark_vector(topo.stub_by_domain[0][0], &lms);
    let b = lat.landmark_vector(topo.stub_by_domain[1][0], &lms);
    let diff: u64 = a
        .iter()
        .zip(&b)
        .map(|(x, y)| u64::from(x.abs_diff(*y)))
        .sum();
    // Same-stub neighbours differ far less.
    let a2 = lat.landmark_vector(topo.stub_by_domain[0][1], &lms);
    let same_diff: u64 = a
        .iter()
        .zip(&a2)
        .map(|(x, y)| u64::from(x.abs_diff(*y)))
        .sum();
    assert!(
        diff > 3 * same_diff.max(1),
        "sibling stubs should separate: cross {diff} vs same {same_diff}"
    );
}
