use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency units per intradomain hop (paper §5.1).
pub const INTRA_DOMAIN_WEIGHT: u32 = 1;
/// Latency units per interdomain hop (paper §5.1: "each interdomain hop
/// counts as 3 hops of units of latency").
pub const INTER_DOMAIN_WEIGHT: u32 = 3;

/// Which kind of domain a physical node belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainKind {
    /// Backbone node inside a transit domain.
    Transit {
        /// Index of the transit domain.
        domain: u32,
    },
    /// Edge node inside a stub domain.
    Stub {
        /// Global index of the stub domain.
        domain: u32,
    },
}

/// Shape parameters for the transit-stub generator, mirroring GT-ITM's.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TransitStubConfig {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit node.
    pub stub_domains_per_transit_node: usize,
    /// Average number of nodes per stub domain (actual sizes are uniform in
    /// `[max(1, avg/2), 3·avg/2]`, preserving the mean).
    pub avg_stub_domain_size: usize,
    /// Extra random intradomain edges per transit domain beyond the
    /// connecting ring (adds redundancy, as GT-ITM does).
    pub extra_transit_edges: usize,
    /// Extra random interdomain transit–transit edges beyond the spanning
    /// chain between domains.
    pub extra_inter_domain_edges: usize,
    /// Probability of an edge between each pair of nodes inside a stub
    /// domain, on top of a connecting spanning tree. GT-ITM's default stub
    /// edge probability is ≈0.42, which makes stub domains dense (diameter
    /// ~2) — the paper's "67% of moved load within 2 hops" presumes such
    /// dense stubs.
    pub stub_edge_density: f64,
    /// Probability that a stub domain gets an extra uplink to a random
    /// transit node elsewhere (GT-ITM's extra stub–transit edges). These
    /// shortcuts differentiate the landmark vectors of sibling stub domains
    /// hanging off the same transit node — without them, landmark
    /// clustering cannot tell sibling stubs apart.
    pub extra_stub_uplink_prob: f64,
}

impl TransitStubConfig {
    /// "ts5k-large" (paper §5.1): 5 transit domains, 3 transit nodes per
    /// domain, 5 stub domains per transit node, ~60 nodes per stub domain.
    /// Chord nodes drawn from this topology live in a few big stub domains.
    pub fn ts5k_large() -> Self {
        TransitStubConfig {
            transit_domains: 5,
            transit_nodes_per_domain: 3,
            stub_domains_per_transit_node: 5,
            avg_stub_domain_size: 60,
            extra_transit_edges: 3,
            extra_inter_domain_edges: 3,
            stub_edge_density: 0.42,
            extra_stub_uplink_prob: 0.6,
        }
    }

    /// "ts5k-small" (paper §5.1): 120 transit domains, 5 transit nodes per
    /// domain, 4 stub domains per transit node, ~2 nodes per stub domain.
    /// Chord nodes drawn from this topology are scattered across the whole
    /// Internet.
    pub fn ts5k_small() -> Self {
        TransitStubConfig {
            transit_domains: 120,
            transit_nodes_per_domain: 5,
            stub_domains_per_transit_node: 4,
            avg_stub_domain_size: 2,
            extra_transit_edges: 3,
            extra_inter_domain_edges: 120,
            stub_edge_density: 0.42,
            extra_stub_uplink_prob: 0.6,
        }
    }

    /// "ts50k": the ts5k-large shape scaled to ~50k nodes (10 transit
    /// domains × 5 transit nodes × 10 stub domains of ~100 nodes), for the
    /// xl-scale runs that stress bounded-memory behaviour.
    pub fn ts50k() -> Self {
        TransitStubConfig {
            transit_domains: 10,
            transit_nodes_per_domain: 5,
            stub_domains_per_transit_node: 10,
            avg_stub_domain_size: 100,
            extra_transit_edges: 3,
            extra_inter_domain_edges: 10,
            stub_edge_density: 0.42,
            extra_stub_uplink_prob: 0.6,
        }
    }

    /// A tiny topology for unit tests and examples (a few dozen nodes).
    pub fn tiny() -> Self {
        TransitStubConfig {
            transit_domains: 2,
            transit_nodes_per_domain: 2,
            stub_domains_per_transit_node: 2,
            avg_stub_domain_size: 4,
            extra_transit_edges: 1,
            extra_inter_domain_edges: 1,
            stub_edge_density: 0.42,
            extra_stub_uplink_prob: 0.5,
        }
    }

    /// Expected total node count (transit + stub).
    pub fn expected_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        transit + transit * self.stub_domains_per_transit_node * self.avg_stub_domain_size
    }
}

/// A generated transit-stub topology: the weighted graph plus domain
/// metadata needed for landmark selection and overlay attachment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitStubTopology {
    /// The physical network with the paper's **hop-cost** weights
    /// (intradomain hop = 1, interdomain hop = 3) — the metric behind the
    /// moved-load figures.
    pub graph: Graph,
    /// The same edges with **latency** weights derived from GT-ITM-style
    /// planar node placement (Euclidean edge lengths). This is what RTT
    /// measurements — and therefore landmark vectors — see: rich enough to
    /// distinguish sibling stub domains, unlike coarse hop counts.
    pub latency_graph: Graph,
    /// Planar coordinates of every node (GT-ITM places domains in a plane).
    pub coords: Vec<(f64, f64)>,
    /// Domain membership of every node.
    pub kinds: Vec<DomainKind>,
    /// Node ids of all transit nodes, grouped by transit domain.
    pub transit_by_domain: Vec<Vec<NodeId>>,
    /// Node ids of all stub nodes, grouped by stub domain.
    pub stub_by_domain: Vec<Vec<NodeId>>,
    /// The generator config used.
    pub config: TransitStubConfig,
}

impl TransitStubTopology {
    /// Generates a topology from `config` using `rng`. The result is always
    /// connected.
    pub fn generate<R: Rng>(config: TransitStubConfig, rng: &mut R) -> Self {
        let mut kinds = Vec::new();
        let mut transit_by_domain = Vec::with_capacity(config.transit_domains);

        // 1. Allocate transit nodes.
        for d in 0..config.transit_domains {
            let mut ids = Vec::with_capacity(config.transit_nodes_per_domain);
            for _ in 0..config.transit_nodes_per_domain {
                ids.push(kinds.len() as NodeId);
                kinds.push(DomainKind::Transit { domain: d as u32 });
            }
            transit_by_domain.push(ids);
        }

        // 2. Allocate stub domains: `stub_domains_per_transit_node` per
        //    transit node, sizes uniform around the average.
        let mut stub_by_domain = Vec::new();
        let mut stub_home_transit = Vec::new(); // transit node each stub domain hangs off
        let lo = (config.avg_stub_domain_size / 2).max(1);
        let hi = config.avg_stub_domain_size + config.avg_stub_domain_size / 2;
        for domain_ids in &transit_by_domain {
            for &t in domain_ids {
                for _ in 0..config.stub_domains_per_transit_node {
                    let size = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
                    let sd = stub_by_domain.len() as u32;
                    let mut ids = Vec::with_capacity(size);
                    for _ in 0..size {
                        ids.push(kinds.len() as NodeId);
                        kinds.push(DomainKind::Stub { domain: sd });
                    }
                    stub_by_domain.push(ids);
                    stub_home_transit.push(t);
                }
            }
        }

        // Planar placement (GT-ITM scatters domains in a square): transit
        // domains far apart, their stubs nearby, stub members in a tight
        // cluster — Euclidean edge lengths then give each stub a distinct
        // latency signature.
        let mut coords: Vec<(f64, f64)> = vec![(0.0, 0.0); kinds.len()];
        let mut domain_centers = Vec::with_capacity(config.transit_domains);
        for _ in 0..config.transit_domains {
            domain_centers.push((rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)));
        }
        for (d, ids) in transit_by_domain.iter().enumerate() {
            let (cx, cy) = domain_centers[d];
            for &t in ids {
                coords[t as usize] = (
                    cx + rng.gen_range(-60.0..60.0),
                    cy + rng.gen_range(-60.0..60.0),
                );
            }
        }
        for (sd, ids) in stub_by_domain.iter().enumerate() {
            let (hx, hy) = coords[stub_home_transit[sd] as usize];
            let (sx, sy) = (
                hx + rng.gen_range(-120.0..120.0),
                hy + rng.gen_range(-120.0..120.0),
            );
            for &n in ids {
                coords[n as usize] = (sx + rng.gen_range(-4.0..4.0), sy + rng.gen_range(-4.0..4.0));
            }
        }

        let mut graph = Graph::new(kinds.len());

        // 3. Intradomain transit edges: ring + extra random chords (weight 1).
        for ids in &transit_by_domain {
            connect_ring(&mut graph, ids, INTRA_DOMAIN_WEIGHT);
            add_random_edges(
                &mut graph,
                ids,
                config.extra_transit_edges,
                INTRA_DOMAIN_WEIGHT,
                rng,
            );
        }

        // 4. Interdomain transit edges (weight 3): spanning chain between
        //    consecutive domains guarantees connectivity, plus extra random
        //    cross-domain links.
        for d in 1..config.transit_domains {
            let u = *transit_by_domain[d - 1]
                .choose(rng)
                .expect("non-empty domain");
            let v = *transit_by_domain[d].choose(rng).expect("non-empty domain");
            graph.add_edge(u, v, INTER_DOMAIN_WEIGHT);
        }
        if config.transit_domains > 1 {
            for _ in 0..config.extra_inter_domain_edges {
                let d1 = rng.gen_range(0..config.transit_domains);
                let mut d2 = rng.gen_range(0..config.transit_domains);
                if d1 == d2 {
                    d2 = (d2 + 1) % config.transit_domains;
                }
                let u = *transit_by_domain[d1].choose(rng).unwrap();
                let v = *transit_by_domain[d2].choose(rng).unwrap();
                graph.add_edge(u, v, INTER_DOMAIN_WEIGHT);
            }
        }

        // 5. Stub domains: internal spanning tree + density-driven extra
        //    edges (weight 1), and one interdomain uplink to the home
        //    transit node (weight 3).
        for (sd, ids) in stub_by_domain.iter().enumerate() {
            connect_random_tree(&mut graph, ids, INTRA_DOMAIN_WEIGHT, rng);
            let n = ids.len();
            if n >= 3 && config.stub_edge_density > 0.0 {
                // Bernoulli edge per pair — GT-ITM's pure random stub model.
                for a in 0..n {
                    for b in a + 1..n {
                        if rng.gen::<f64>() < config.stub_edge_density {
                            graph.add_edge(ids[a], ids[b], INTRA_DOMAIN_WEIGHT);
                        }
                    }
                }
            }
            let gateway = *ids.choose(rng).unwrap();
            graph.add_edge(gateway, stub_home_transit[sd], INTER_DOMAIN_WEIGHT);
            // Extra uplink to a random transit node elsewhere.
            if rng.gen::<f64>() < config.extra_stub_uplink_prob {
                let d = rng.gen_range(0..transit_by_domain.len());
                let t = *transit_by_domain[d].choose(rng).unwrap();
                let second_gateway = *ids.choose(rng).unwrap();
                graph.add_edge(second_gateway, t, INTER_DOMAIN_WEIGHT);
            }
        }

        // Latency weights: Euclidean length of each edge (at least 1 unit).
        let mut latency_graph = Graph::new(kinds.len());
        for u in 0..kinds.len() as NodeId {
            for &(v, _) in graph.neighbors(u) {
                if u < v {
                    let (ux, uy) = coords[u as usize];
                    let (vx, vy) = coords[v as usize];
                    let d = ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt();
                    latency_graph.add_edge(u, v, (d.round() as u32).max(1));
                }
            }
        }

        let topo = TransitStubTopology {
            graph,
            latency_graph,
            coords,
            kinds,
            transit_by_domain,
            stub_by_domain,
            config,
        };
        debug_assert!(topo.graph.is_connected());
        debug_assert!(topo.latency_graph.is_connected());
        topo
    }

    /// Total number of physical nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// All stub node ids (overlay peers attach to stub nodes, matching the
    /// paper's setting where DHT nodes are end hosts).
    pub fn stub_nodes(&self) -> Vec<NodeId> {
        self.stub_by_domain.iter().flatten().copied().collect()
    }

    /// Transit domain "responsible" for a node: its own domain for transit
    /// nodes; for a stub node, the domain of the transit node its stub
    /// domain hangs off (derived from graph structure on demand).
    pub fn kind(&self, n: NodeId) -> DomainKind {
        self.kinds[n as usize]
    }
}

/// Connects `ids` in a cycle (or a single edge for 2 nodes, nothing for <2).
fn connect_ring(graph: &mut Graph, ids: &[NodeId], w: u32) {
    match ids.len() {
        0 | 1 => {}
        2 => {
            graph.add_edge(ids[0], ids[1], w);
        }
        _ => {
            for i in 0..ids.len() {
                graph.add_edge(ids[i], ids[(i + 1) % ids.len()], w);
            }
        }
    }
}

/// Connects `ids` with a random spanning tree (each node links to a random
/// earlier node — a uniform random recursive tree).
fn connect_random_tree<R: Rng>(graph: &mut Graph, ids: &[NodeId], w: u32, rng: &mut R) {
    for i in 1..ids.len() {
        let j = rng.gen_range(0..i);
        graph.add_edge(ids[i], ids[j], w);
    }
}

/// Adds up to `count` random edges among `ids`.
fn add_random_edges<R: Rng>(graph: &mut Graph, ids: &[NodeId], count: usize, w: u32, rng: &mut R) {
    if ids.len() < 3 {
        return;
    }
    for _ in 0..count {
        let u = *ids.choose(rng).unwrap();
        let v = *ids.choose(rng).unwrap();
        if u != v {
            graph.add_edge(u, v, w);
        }
    }
}
