use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a physical node in a [`Graph`].
pub type NodeId = u32;

/// Distance value reported for unreachable nodes.
pub const INFINITE_DISTANCE: u32 = u32::MAX;

/// Undirected weighted graph in adjacency-list form.
///
/// Edge weights are small positive integers (1 for intradomain hops, 3 for
/// interdomain hops in the paper's cost model), so distances fit comfortably
/// in `u32`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    /// `adj[u]` lists `(v, weight)` pairs. Each undirected edge appears twice.
    adj: Vec<Vec<(NodeId, u32)>>,
    edge_count: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Duplicate edges are
    /// ignored (first weight wins); self-loops are rejected.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: u32) -> bool {
        assert!(w > 0, "edge weights must be positive");
        if u == v {
            return false;
        }
        let (u_us, v_us) = (u as usize, v as usize);
        assert!(u_us < self.adj.len() && v_us < self.adj.len());
        if self.adj[u_us].iter().any(|&(x, _)| x == v) {
            return false;
        }
        self.adj[u_us].push((v, w));
        self.adj[v_us].push((u, w));
        self.edge_count += 1;
        true
    }

    /// True iff the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].iter().any(|&(x, _)| x == v)
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, u32)] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Single-source shortest path distances from `src` (Dijkstra).
    /// Unreachable nodes get [`INFINITE_DISTANCE`].
    pub fn dijkstra(&self, src: NodeId) -> Vec<u32> {
        let n = self.adj.len();
        let mut dist = vec![INFINITE_DISTANCE; n];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0u32, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// True iff every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let dist = self.dijkstra(0);
        dist.iter().all(|&d| d != INFINITE_DISTANCE)
    }

    /// All-pairs shortest paths via repeated Dijkstra — O(V·E log V).
    /// Intended for tests and small graphs; large graphs should use
    /// [`crate::DistanceOracle`] which computes rows lazily and in parallel.
    pub fn all_pairs(&self) -> Vec<Vec<u32>> {
        (0..self.adj.len() as NodeId)
            .map(|u| self.dijkstra(u))
            .collect()
    }
}
