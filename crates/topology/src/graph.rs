use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a physical node in a [`Graph`].
pub type NodeId = u32;

/// Distance value reported for unreachable nodes.
pub const INFINITE_DISTANCE: u32 = u32::MAX;

/// Largest maximum edge weight for which [`Graph::dijkstra_into`] uses the
/// bucket queue (Dial's algorithm). Above this the circular bucket array —
/// `max_weight + 1` slots, swept one distance value per step — stops paying
/// for itself and the binary heap takes over.
const MAX_BUCKET_WEIGHT: u32 = 4096;

/// Undirected weighted graph in adjacency-list form.
///
/// Edge weights are small positive integers (1 for intradomain hops, 3 for
/// interdomain hops in the paper's cost model), so distances fit comfortably
/// in `u32`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    /// `adj[u]` lists `(v, weight)` pairs. Each undirected edge appears twice.
    adj: Vec<Vec<(NodeId, u32)>>,
    edge_count: usize,
    /// Largest edge weight present (0 while edgeless). Decides between the
    /// bucket-queue and binary-heap Dijkstra variants.
    max_weight: u32,
}

/// Reusable working memory for [`Graph::dijkstra_into`].
///
/// Holds the distance array, the touched-node list used to reset it in
/// O(|reached|), and both priority-queue variants (circular buckets for
/// small integer weights, binary heap otherwise). Reusing one scratch
/// across calls makes repeated single-source runs allocation-free; the
/// scratch adapts automatically when used against graphs of different
/// sizes.
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<u32>,
    touched: Vec<NodeId>,
    buckets: Vec<Vec<NodeId>>,
    heap: BinaryHeap<Reverse<(u32, NodeId)>>,
}

impl DijkstraScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DijkstraScratch::default()
    }
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
            max_weight: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Largest edge weight in the graph (0 while edgeless).
    pub fn max_weight(&self) -> u32 {
        self.max_weight
    }

    /// Adds the undirected edge `{u, v}` with weight `w`. Duplicate edges are
    /// ignored (first weight wins); self-loops are rejected.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: u32) -> bool {
        assert!(w > 0, "edge weights must be positive");
        if u == v {
            return false;
        }
        let (u_us, v_us) = (u as usize, v as usize);
        assert!(u_us < self.adj.len() && v_us < self.adj.len());
        if self.adj[u_us].iter().any(|&(x, _)| x == v) {
            return false;
        }
        self.adj[u_us].push((v, w));
        self.adj[v_us].push((u, w));
        self.edge_count += 1;
        self.max_weight = self.max_weight.max(w);
        true
    }

    /// True iff the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].iter().any(|&(x, _)| x == v)
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, u32)] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Single-source shortest path distances from `src`.
    /// Unreachable nodes get [`INFINITE_DISTANCE`].
    pub fn dijkstra(&self, src: NodeId) -> Vec<u32> {
        let mut scratch = DijkstraScratch::new();
        self.dijkstra_into(src, &mut scratch);
        scratch.dist
    }

    /// Single-source shortest path distances from `src`, written into
    /// `scratch` and returned as a slice (valid until the scratch is next
    /// used). With a reused scratch the call allocates nothing once the
    /// buffers have grown to the graph's size.
    ///
    /// Small integer edge weights (the paper's 1-intradomain /
    /// 3-interdomain cost model, and the bounded Euclidean latency model)
    /// route to a circular bucket queue — O(E + D) for maximum distance D —
    /// instead of the O(E log V) binary heap, which remains as the fallback
    /// for large weights.
    pub fn dijkstra_into<'a>(&self, src: NodeId, scratch: &'a mut DijkstraScratch) -> &'a [u32] {
        let n = self.adj.len();
        assert!((src as usize) < n, "source out of range");
        if scratch.dist.len() != n {
            scratch.dist.clear();
            scratch.dist.resize(n, INFINITE_DISTANCE);
        } else {
            for &u in &scratch.touched {
                scratch.dist[u as usize] = INFINITE_DISTANCE;
            }
        }
        scratch.touched.clear();
        if self.max_weight > 0 && self.max_weight <= MAX_BUCKET_WEIGHT {
            self.dijkstra_buckets(src, scratch);
        } else {
            self.dijkstra_heap(src, scratch);
        }
        &scratch.dist
    }

    /// Dial's algorithm: a circular array of `max_weight + 1` buckets
    /// indexed by distance modulo the ring size. Every tentative distance
    /// in flight lies within `max_weight` of the current sweep distance,
    /// so the ring never aliases two live distance values to one slot.
    fn dijkstra_buckets(&self, src: NodeId, scratch: &mut DijkstraScratch) {
        let ring = self.max_weight as usize + 1;
        if scratch.buckets.len() < ring {
            scratch.buckets.resize_with(ring, Vec::new);
        }
        let dist = &mut scratch.dist;
        dist[src as usize] = 0;
        scratch.touched.push(src);
        scratch.buckets[0].push(src);
        let mut pending = 1usize;
        let mut d = 0u32;
        while pending > 0 {
            let slot = d as usize % ring;
            while let Some(u) = scratch.buckets[slot].pop() {
                pending -= 1;
                if dist[u as usize] != d {
                    continue; // superseded entry
                }
                for &(v, w) in &self.adj[u as usize] {
                    let nd = d + w;
                    let dv = &mut dist[v as usize];
                    if nd < *dv {
                        if *dv == INFINITE_DISTANCE {
                            scratch.touched.push(v);
                        }
                        *dv = nd;
                        scratch.buckets[nd as usize % ring].push(v);
                        pending += 1;
                    }
                }
            }
            d += 1;
        }
    }

    /// Binary-heap Dijkstra over the scratch buffers (fallback for graphs
    /// whose weights are too large for the bucket ring).
    fn dijkstra_heap(&self, src: NodeId, scratch: &mut DijkstraScratch) {
        let dist = &mut scratch.dist;
        scratch.heap.clear();
        dist[src as usize] = 0;
        scratch.touched.push(src);
        scratch.heap.push(Reverse((0u32, src)));
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                let dv = &mut dist[v as usize];
                if nd < *dv {
                    if *dv == INFINITE_DISTANCE {
                        scratch.touched.push(v);
                    }
                    *dv = nd;
                    scratch.heap.push(Reverse((nd, v)));
                }
            }
        }
    }

    /// Reference binary-heap Dijkstra with per-call allocation — the
    /// pre-optimization kernel, kept as the correctness baseline for
    /// property tests and the `dijkstra_kernels` benchmark.
    pub fn dijkstra_reference(&self, src: NodeId) -> Vec<u32> {
        let n = self.adj.len();
        let mut dist = vec![INFINITE_DISTANCE; n];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0u32, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &self.adj[u as usize] {
                let nd = d + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }

    /// True iff every node is reachable from node 0 (or the graph is empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let dist = self.dijkstra(0);
        dist.iter().all(|&d| d != INFINITE_DISTANCE)
    }

    /// All-pairs shortest paths via repeated single-source runs sharing one
    /// scratch. Intended for tests and small graphs; large graphs should use
    /// [`crate::DistanceOracle`] which computes rows lazily and in parallel.
    pub fn all_pairs(&self) -> Vec<Vec<u32>> {
        let mut scratch = DijkstraScratch::new();
        (0..self.adj.len() as NodeId)
            .map(|u| self.dijkstra_into(u, &mut scratch).to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(seed: u64, n: usize, edges: usize, max_w: u32) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Graph::new(n);
        for _ in 0..edges {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u != v {
                g.add_edge(u, v, rng.gen_range(1..=max_w));
            }
        }
        g
    }

    #[test]
    fn bucket_queue_matches_reference_heap() {
        for seed in 0..8 {
            // Small weights → bucket path; include disconnected graphs.
            let g = random_graph(seed, 60, 90, 3);
            assert!(g.max_weight() <= MAX_BUCKET_WEIGHT);
            for src in [0, 17, 59] {
                assert_eq!(
                    g.dijkstra(src),
                    g.dijkstra_reference(src),
                    "seed {seed} src {src}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_sources_and_graphs() {
        let g1 = random_graph(1, 40, 80, 3);
        let g2 = random_graph(2, 70, 100, 5);
        let mut scratch = DijkstraScratch::new();
        for src in 0..40 {
            assert_eq!(
                g1.dijkstra_into(src, &mut scratch),
                &g1.dijkstra_reference(src)[..]
            );
        }
        // Same scratch against a different-sized graph.
        for src in [0u32, 33, 69] {
            assert_eq!(
                g2.dijkstra_into(src, &mut scratch),
                &g2.dijkstra_reference(src)[..]
            );
        }
        // And back again.
        assert_eq!(
            g1.dijkstra_into(5, &mut scratch),
            &g1.dijkstra_reference(5)[..]
        );
    }

    #[test]
    fn heap_fallback_matches_reference() {
        // Weights above the bucket threshold force the heap variant.
        let g = random_graph(3, 50, 80, MAX_BUCKET_WEIGHT * 4);
        assert!(g.max_weight() > MAX_BUCKET_WEIGHT);
        let mut scratch = DijkstraScratch::new();
        for src in [0u32, 25, 49] {
            assert_eq!(
                g.dijkstra_into(src, &mut scratch),
                &g.dijkstra_reference(src)[..]
            );
        }
    }
}
