use crate::graph::{DijkstraScratch, Graph, NodeId};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Entries per [`CompactRow`] block. Each block stores its minimum and a
/// fixed byte width for the deltas, so runs of equal or nearby distances
/// (the common case: whole stub domains share a distance to the source)
/// cost 0–1 bytes per entry instead of 4.
const BLOCK: usize = 256;

/// A losslessly compressed distance row.
///
/// The row is cut into [`BLOCK`]-entry blocks; each block stores its
/// minimum plus per-entry deltas quantized to the narrowest of
/// {0, 1, 2, 4} bytes that holds the block's largest delta. Decoding is a
/// two-array lookup and an add, so point queries stay O(1). Compression is
/// exact — `get` returns precisely the `u32` that went in — which is what
/// lets the bounded oracle keep its bit-identical-results contract while
/// holding several times more rows per byte of residency.
#[derive(Clone, Debug)]
pub struct CompactRow {
    len: usize,
    /// Per-block minimum value.
    mins: Vec<u32>,
    /// Per-block payload byte offset; `widths` is recoverable from the
    /// offset deltas but kept separate for branch-free decoding.
    offsets: Vec<u32>,
    /// Per-block delta width in bytes (0, 1, 2 or 4).
    widths: Vec<u8>,
    /// Delta payload, little-endian, `widths[b]` bytes per entry.
    payload: Vec<u8>,
}

impl CompactRow {
    /// Compresses `values` (lossless).
    pub fn compress(values: &[u32]) -> Self {
        let blocks = values.len().div_ceil(BLOCK);
        let mut mins = Vec::with_capacity(blocks);
        let mut offsets = Vec::with_capacity(blocks);
        let mut widths = Vec::with_capacity(blocks);
        let mut payload = Vec::new();
        for chunk in values.chunks(BLOCK) {
            let min = chunk.iter().copied().min().unwrap_or(0);
            let spread = chunk.iter().copied().max().unwrap_or(0) - min;
            let width: u8 = match spread {
                0 => 0,
                1..=0xFF => 1,
                0x100..=0xFFFF => 2,
                _ => 4,
            };
            mins.push(min);
            offsets.push(payload.len() as u32);
            widths.push(width);
            match width {
                0 => {}
                1 => payload.extend(chunk.iter().map(|&v| (v - min) as u8)),
                2 => {
                    for &v in chunk {
                        payload.extend_from_slice(&((v - min) as u16).to_le_bytes());
                    }
                }
                _ => {
                    for &v in chunk {
                        payload.extend_from_slice(&(v - min).to_le_bytes());
                    }
                }
            }
        }
        payload.shrink_to_fit();
        CompactRow {
            len: values.len(),
            mins,
            offsets,
            widths,
            payload,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the row has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry at `i` (exactly the value passed to `compress`).
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        let b = i / BLOCK;
        let r = i % BLOCK;
        let min = self.mins[b];
        match self.widths[b] {
            0 => min,
            1 => min + u32::from(self.payload[self.offsets[b] as usize + r]),
            2 => {
                let at = self.offsets[b] as usize + 2 * r;
                min + u32::from(u16::from_le_bytes([self.payload[at], self.payload[at + 1]]))
            }
            _ => {
                let at = self.offsets[b] as usize + 4 * r;
                min + u32::from_le_bytes([
                    self.payload[at],
                    self.payload[at + 1],
                    self.payload[at + 2],
                    self.payload[at + 3],
                ])
            }
        }
    }

    /// Decompresses the full row.
    pub fn to_vec(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Heap + inline bytes this row occupies (the measured-residency
    /// figure the cache accounts with).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.mins.capacity() * 4
            + self.offsets.capacity() * 4
            + self.widths.capacity()
            + self.payload.capacity()
    }
}

/// Distance queries answered the same way by the exact and the approximate
/// oracle: the filter-then-refine transfer path is generic over this, and
/// swapping one implementation for the other is what `distance_mode`
/// selects.
pub trait DistanceQuery {
    /// A distance estimate for the pair `(u, v)`. Exact implementations
    /// return the true shortest-path distance; approximate ones an upper
    /// bound.
    fn distance(&self, u: NodeId, v: NodeId) -> u32;
}

thread_local! {
    /// Per-thread Dijkstra working memory: row fills from any oracle on
    /// this thread reuse one scratch, so steady-state row computation
    /// allocates only the row itself.
    static SCRATCH: RefCell<DijkstraScratch> = RefCell::new(DijkstraScratch::new());
}

/// Row metadata bit: the row was touched since its last second chance.
const REF_BIT: u8 = 1;
/// Row metadata bit: the row is pinned and must never be evicted.
const PIN_BIT: u8 = 2;

/// Caching shortest-path oracle.
///
/// Landmark vectors need distances *from* 15 landmarks; transfer-cost
/// accounting (Figures 7 and 8) needs distances between arbitrary pairs of
/// overlay attach points. Rather than a full 5,000×5,000 all-pairs matrix,
/// the oracle runs Dijkstra per distinct source on demand and memoizes the
/// row. Rows can also be bulk-precomputed in parallel with
/// [`DistanceOracle::precompute`]. Point queries exploit symmetry: the
/// graph is undirected, so [`DistanceOracle::distance`] answers from
/// whichever endpoint's row is already cached before computing a new one.
///
/// # Bounded memory
///
/// At 50k-node scale a raw row is ~200 KB, so an unbounded cache can grow
/// to gigabytes. Rows are therefore stored as [`CompactRow`] blocks
/// (lossless, typically ~1 byte per entry for the hop metric) and
/// [`DistanceOracle::with_capacity`] bounds the number of resident
/// *unpinned* rows: once the bound is reached, inserting a new
/// row evicts an old one by second-chance (clock) replacement. Rows that
/// back repeated queries — the landmark rows — can be
/// [pinned](DistanceOracle::pin) so they never leave the cache and never
/// count against the bound. Eviction only ever discards memoized pure
/// functions of the graph, so query results are bit-identical for any
/// capacity, including unbounded.
pub struct DistanceOracle {
    graph: Arc<Graph>,
    rows: Vec<RwLock<Option<Arc<CompactRow>>>>,
    /// Per-row `REF_BIT`/`PIN_BIT` flags (addressed by source id).
    meta: Vec<AtomicU8>,
    /// Maximum resident unpinned rows; `0` means unbounded.
    capacity: usize,
    /// Number of resident unpinned rows.
    resident: AtomicUsize,
    /// Measured bytes of all resident rows (pinned included).
    resident_bytes: AtomicUsize,
    /// Second-chance queue of resident unpinned row ids, oldest first.
    clock: Mutex<VecDeque<NodeId>>,
    /// Lifetime cache accounting (relaxed counters; see [`CacheStats`]).
    hits: AtomicU64,
    computes: AtomicU64,
    evictions: AtomicU64,
}

/// Snapshot of an oracle's cache accounting.
///
/// `hits` counts queries answered from a resident row; `computes` counts
/// Dijkstra row fills; `evictions` counts rows discarded by the
/// second-chance sweep. With an **unbounded** cache the totals are a pure
/// function of the query sequence. With a bounded cache, eviction order —
/// and therefore hit/eviction totals — depends on thread interleaving, so
/// these numbers belong in diagnostics output, never in deterministic trace
/// files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub computes: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Component-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            computes: self.computes - earlier.computes,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

impl DistanceOracle {
    /// Creates an oracle over `graph` with an empty, **unbounded** cache.
    pub fn new(graph: Arc<Graph>) -> Self {
        Self::with_capacity(graph, 0)
    }

    /// Creates an oracle whose cache holds at most `capacity` unpinned
    /// rows (`0` = unbounded). Pinned rows live outside the bound.
    pub fn with_capacity(graph: Arc<Graph>, capacity: usize) -> Self {
        let n = graph.node_count();
        DistanceOracle {
            graph,
            rows: (0..n).map(|_| RwLock::new(None)).collect(),
            meta: (0..n).map(|_| AtomicU8::new(0)).collect(),
            capacity,
            resident: AtomicUsize::new(0),
            resident_bytes: AtomicUsize::new(0),
            clock: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The row-cache capacity (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached row from `src`, if one exists.
    fn cached(&self, src: NodeId) -> Option<Arc<CompactRow>> {
        let row = self.rows[src as usize].read().clone();
        if row.is_some() {
            // Second chance: a touched row survives one clock pass.
            self.meta[src as usize].fetch_or(REF_BIT, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        row
    }

    /// True iff the row from `src` is currently resident.
    pub fn is_cached(&self, src: NodeId) -> bool {
        self.rows[src as usize].read().is_some()
    }

    /// Shortest-path distance row from `src` (computing and caching it if
    /// needed). Rows are stored block-compressed; point lookups go through
    /// [`CompactRow::get`].
    pub fn row(&self, src: NodeId) -> Arc<CompactRow> {
        if let Some(row) = self.cached(src) {
            return row;
        }
        let computed = SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            Arc::new(CompactRow::compress(
                self.graph.dijkstra_into(src, &mut scratch),
            ))
        });
        self.computes.fetch_add(1, Ordering::Relaxed);
        {
            let mut slot = self.rows[src as usize].write();
            // Another thread may have raced us; keep whichever is present.
            if let Some(existing) = slot.clone() {
                return existing;
            }
            self.resident_bytes
                .fetch_add(computed.size_bytes(), Ordering::Relaxed);
            *slot = Some(computed.clone());
            self.meta[src as usize].fetch_or(REF_BIT, Ordering::Relaxed);
        }
        if self.meta[src as usize].load(Ordering::Relaxed) & PIN_BIT == 0 {
            self.resident.fetch_add(1, Ordering::Relaxed);
            self.clock.lock().push_back(src);
            if self.capacity > 0 {
                while self.resident.load(Ordering::Relaxed) > self.capacity {
                    if !self.evict_one() {
                        break; // nothing evictable (all pinned / in flight)
                    }
                }
            }
        }
        computed
    }

    /// Evicts one unpinned resident row by second-chance replacement.
    /// Returns `false` when the queue drains without finding a victim.
    fn evict_one(&self) -> bool {
        let mut clock = self.clock.lock();
        // Each entry is inspected at most twice per call (once to clear its
        // reference bit, once to evict), so the sweep terminates.
        let mut budget = 2 * clock.len();
        while budget > 0 {
            budget -= 1;
            let Some(src) = clock.pop_front() else {
                return false;
            };
            let meta = &self.meta[src as usize];
            let flags = meta.load(Ordering::Relaxed);
            if flags & PIN_BIT != 0 {
                // Pinned after insertion: leave resident, drop from the
                // clock, and stop counting it against the bound.
                self.resident.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            if flags & REF_BIT != 0 {
                meta.fetch_and(!REF_BIT, Ordering::Relaxed);
                clock.push_back(src);
                continue;
            }
            let mut slot = self.rows[src as usize].write();
            // Re-check under the slot lock: a concurrent `pin` sets the
            // bit before ensuring residency, so this is the last word.
            if meta.load(Ordering::Relaxed) & PIN_BIT != 0 {
                self.resident.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            if let Some(evicted) = slot.take() {
                self.resident.fetch_sub(1, Ordering::Relaxed);
                self.resident_bytes
                    .fetch_sub(evicted.size_bytes(), Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Pins the row from `src`: it is computed if absent and will never be
    /// evicted (nor count against the capacity bound).
    pub fn pin(&self, src: NodeId) {
        // Order matters: set the bit first so a concurrent eviction that
        // already popped this row re-checks and leaves it resident. If the
        // row was already resident (and counted), the clock sweep corrects
        // the resident count when it reaches the now-stale queue entry.
        self.meta[src as usize].fetch_or(PIN_BIT, Ordering::Relaxed);
        let _ = self.row(src);
    }

    /// Shortest-path distance between `u` and `v` in latency units.
    ///
    /// The graph is undirected, so `d(u, v) = d(v, u)`: if either
    /// endpoint's row is cached the answer is a lookup, and only when
    /// neither is does this compute (and cache) the row from `u`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        if let Some(row) = self.cached(u) {
            return row.get(v as usize);
        }
        if let Some(row) = self.cached(v) {
            return row.get(u as usize);
        }
        self.row(u).get(v as usize)
    }

    /// Landmark vector of `node`: distances to each of `landmarks`, in order.
    pub fn landmark_vector(&self, node: NodeId, landmarks: &[NodeId]) -> Vec<u32> {
        // Dijkstra from each landmark (few sources) rather than from every
        // node (many sources): the cache makes repeated calls cheap.
        landmarks
            .iter()
            .map(|&l| self.row(l).get(node as usize))
            .collect()
    }

    /// Precomputes rows for `sources` in parallel using scoped threads.
    /// Each worker thread fills rows through its own thread-local scratch,
    /// so the batch allocates nothing beyond the rows themselves.
    /// Already-cached sources are skipped without spawning work for them.
    ///
    /// Work is claimed through a shared atomic cursor rather than a static
    /// split: Dijkstra cost varies per source (stub vs transit, weight
    /// regime), so pre-chunked partitions leave tail threads idle while one
    /// worker drains an expensive chunk.
    pub fn precompute(&self, sources: &[NodeId], threads: usize) {
        let missing: Vec<NodeId> = sources
            .iter()
            .copied()
            .filter(|&src| self.rows[src as usize].read().is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        let threads = threads.max(1).min(missing.len());
        if threads == 1 {
            // Inline on the caller's thread: no spawn overhead, and the
            // caller's thread-local scratch keeps the batch allocation-free.
            for &src in &missing {
                let _ = self.row(src);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&src) = missing.get(i) else {
                        break;
                    };
                    let _ = self.row(src);
                });
            }
        });
    }

    /// Number of cached rows (for tests / diagnostics).
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.read().is_some()).count()
    }

    /// Measured bytes of all resident rows, pinned included. This is what
    /// "sized by measured residency" means for capacity planning: the
    /// `xl2` preset picks its row budget against this number, not against
    /// a `rows × 4 bytes × n` estimate that compression makes obsolete.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of the lifetime cache accounting. See [`CacheStats`] for
    /// the determinism caveat on bounded caches.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            computes: self.computes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl DistanceQuery for DistanceOracle {
    fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        DistanceOracle::distance(self, u, v)
    }
}
