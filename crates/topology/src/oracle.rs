use crate::graph::{Graph, NodeId};
use parking_lot::RwLock;
use std::sync::Arc;

/// Caching shortest-path oracle.
///
/// Landmark vectors need distances *from* 15 landmarks; transfer-cost
/// accounting (Figures 7 and 8) needs distances between arbitrary pairs of
/// overlay attach points. Rather than a full 5,000×5,000 all-pairs matrix,
/// the oracle runs Dijkstra per distinct source on demand and memoizes the
/// row. Rows can also be bulk-precomputed in parallel with
/// [`DistanceOracle::precompute`].
pub struct DistanceOracle {
    graph: Arc<Graph>,
    rows: Vec<RwLock<Option<Arc<Vec<u32>>>>>,
}

impl DistanceOracle {
    /// Creates an oracle over `graph` with an empty cache.
    pub fn new(graph: Arc<Graph>) -> Self {
        let n = graph.node_count();
        DistanceOracle {
            graph,
            rows: (0..n).map(|_| RwLock::new(None)).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shortest-path distance row from `src` (computing and caching it if
    /// needed).
    pub fn row(&self, src: NodeId) -> Arc<Vec<u32>> {
        if let Some(row) = self.rows[src as usize].read().clone() {
            return row;
        }
        let computed = Arc::new(self.graph.dijkstra(src));
        let mut slot = self.rows[src as usize].write();
        // Another thread may have raced us; keep whichever is present.
        if let Some(existing) = slot.clone() {
            return existing;
        }
        *slot = Some(computed.clone());
        computed
    }

    /// Shortest-path distance between `u` and `v` in latency units.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        self.row(u)[v as usize]
    }

    /// Landmark vector of `node`: distances to each of `landmarks`, in order.
    pub fn landmark_vector(&self, node: NodeId, landmarks: &[NodeId]) -> Vec<u32> {
        // Dijkstra from each landmark (few sources) rather than from every
        // node (many sources): the cache makes repeated calls cheap.
        landmarks.iter().map(|&l| self.row(l)[node as usize]).collect()
    }

    /// Precomputes rows for `sources` in parallel using scoped threads.
    pub fn precompute(&self, sources: &[NodeId], threads: usize) {
        let threads = threads.max(1);
        let chunk = sources.len().div_ceil(threads);
        if chunk == 0 {
            return;
        }
        crossbeam::scope(|s| {
            for part in sources.chunks(chunk) {
                s.spawn(move |_| {
                    for &src in part {
                        let _ = self.row(src);
                    }
                });
            }
        })
        .expect("precompute worker panicked");
    }

    /// Number of cached rows (for tests / diagnostics).
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.read().is_some()).count()
    }
}
