use crate::graph::{DijkstraScratch, Graph, NodeId};
use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Per-thread Dijkstra working memory: row fills from any oracle on
    /// this thread reuse one scratch, so steady-state row computation
    /// allocates only the row itself.
    static SCRATCH: RefCell<DijkstraScratch> = RefCell::new(DijkstraScratch::new());
}

/// Caching shortest-path oracle.
///
/// Landmark vectors need distances *from* 15 landmarks; transfer-cost
/// accounting (Figures 7 and 8) needs distances between arbitrary pairs of
/// overlay attach points. Rather than a full 5,000×5,000 all-pairs matrix,
/// the oracle runs Dijkstra per distinct source on demand and memoizes the
/// row. Rows can also be bulk-precomputed in parallel with
/// [`DistanceOracle::precompute`]. Point queries exploit symmetry: the
/// graph is undirected, so [`DistanceOracle::distance`] answers from
/// whichever endpoint's row is already cached before computing a new one.
pub struct DistanceOracle {
    graph: Arc<Graph>,
    rows: Vec<RwLock<Option<Arc<Vec<u32>>>>>,
}

impl DistanceOracle {
    /// Creates an oracle over `graph` with an empty cache.
    pub fn new(graph: Arc<Graph>) -> Self {
        let n = graph.node_count();
        DistanceOracle {
            graph,
            rows: (0..n).map(|_| RwLock::new(None)).collect(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The cached row from `src`, if one exists.
    fn cached(&self, src: NodeId) -> Option<Arc<Vec<u32>>> {
        self.rows[src as usize].read().clone()
    }

    /// Shortest-path distance row from `src` (computing and caching it if
    /// needed).
    pub fn row(&self, src: NodeId) -> Arc<Vec<u32>> {
        if let Some(row) = self.cached(src) {
            return row;
        }
        let computed = SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            Arc::new(self.graph.dijkstra_into(src, &mut scratch).to_vec())
        });
        let mut slot = self.rows[src as usize].write();
        // Another thread may have raced us; keep whichever is present.
        if let Some(existing) = slot.clone() {
            return existing;
        }
        *slot = Some(computed.clone());
        computed
    }

    /// Shortest-path distance between `u` and `v` in latency units.
    ///
    /// The graph is undirected, so `d(u, v) = d(v, u)`: if either
    /// endpoint's row is cached the answer is a lookup, and only when
    /// neither is does this compute (and cache) the row from `u`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        if u == v {
            return 0;
        }
        if let Some(row) = self.cached(u) {
            return row[v as usize];
        }
        if let Some(row) = self.cached(v) {
            return row[u as usize];
        }
        self.row(u)[v as usize]
    }

    /// Landmark vector of `node`: distances to each of `landmarks`, in order.
    pub fn landmark_vector(&self, node: NodeId, landmarks: &[NodeId]) -> Vec<u32> {
        // Dijkstra from each landmark (few sources) rather than from every
        // node (many sources): the cache makes repeated calls cheap.
        landmarks
            .iter()
            .map(|&l| self.row(l)[node as usize])
            .collect()
    }

    /// Precomputes rows for `sources` in parallel using scoped threads.
    /// Each worker thread fills rows through its own thread-local scratch,
    /// so the batch allocates nothing beyond the rows themselves.
    /// Already-cached sources are skipped without spawning work for them.
    pub fn precompute(&self, sources: &[NodeId], threads: usize) {
        let missing: Vec<NodeId> = sources
            .iter()
            .copied()
            .filter(|&src| self.rows[src as usize].read().is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        let threads = threads.max(1);
        if threads == 1 {
            // Inline on the caller's thread: no spawn overhead, and the
            // caller's thread-local scratch keeps the batch allocation-free.
            for &src in &missing {
                let _ = self.row(src);
            }
            return;
        }
        let chunk = missing.len().div_ceil(threads);
        std::thread::scope(|s| {
            for part in missing.chunks(chunk) {
                s.spawn(move || {
                    for &src in part {
                        let _ = self.row(src);
                    }
                });
            }
        });
    }

    /// Number of cached rows (for tests / diagnostics).
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.read().is_some()).count()
    }
}
