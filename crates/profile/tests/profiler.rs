//! Phase-tree profiler behavior: disabled guards are free, enabled guards
//! nest, repeated phases merge, and the wall-weighted fold has the right
//! stack shapes. Lives in its own integration binary because enabling the
//! profiler is process-global.

use proxbal_profile::{phase, profiler_enabled, report};

#[test]
fn guards_nest_and_merge() {
    // Before enabling: guards are inert and record nothing.
    assert!(!profiler_enabled());
    {
        let _g = phase("ignored");
    }
    assert!(report().rows.is_empty());

    proxbal_profile::enable_profiler();
    for _ in 0..3 {
        let _outer = phase("outer");
        let _inner = phase("inner");
        std::hint::black_box(vec![1u8; 4096]);
    }
    {
        let _other = phase("other");
    }

    let rep = report();
    let names: Vec<(usize, &str, u64)> = rep
        .rows
        .iter()
        .map(|r| (r.depth, r.name.as_str(), r.calls))
        .collect();
    assert_eq!(
        names,
        vec![(0, "outer", 3), (1, "inner", 3), (0, "other", 1)],
        "repeat phases merge; children nest under the open parent"
    );
    assert!(
        rep.rows[0].wall >= rep.rows[1].wall,
        "parent wall covers child wall"
    );

    // The volatile wall-weighted fold uses `;`-joined phase paths.
    let folded = rep.to_folded_wall();
    for line in folded.lines() {
        assert!(
            line.starts_with("outer") || line.starts_with("other"),
            "unexpected stack root in {line:?}"
        );
    }
    let text = rep.to_text();
    assert!(text.contains("outer"));
    assert!(text.contains("  inner"), "child row is indented");
}
