//! Allocator-counter determinism: with the counting allocator installed
//! and enabled, a fixed single-threaded workload performs exactly the
//! same number of allocations (and bytes) every time, as observed through
//! the per-thread ledger — even while the test harness runs other tests
//! (and allocates) on sibling threads.

use proxbal_profile::{AllocSnapshot, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A deterministic allocation-heavy workload: growing vectors, a BTreeMap
/// and string formatting — the shapes the simulator actually exercises.
fn workload() -> u64 {
    let mut acc = 0u64;
    let mut map = std::collections::BTreeMap::new();
    for i in 0..500u64 {
        let v: Vec<u64> = (0..(i % 17)).collect();
        acc = acc.wrapping_add(v.iter().sum::<u64>());
        map.insert(format!("key{i}"), v);
    }
    acc.wrapping_add(map.len() as u64)
}

fn measured_workload() -> (AllocSnapshot, u64) {
    let before = AllocSnapshot::current_thread();
    let out = workload();
    (AllocSnapshot::current_thread().since(before), out)
}

#[test]
fn per_thread_alloc_counts_are_deterministic() {
    proxbal_profile::enable_counting();
    let (d1, o1) = measured_workload();
    let (d2, o2) = measured_workload();
    let (d3, o3) = measured_workload();
    assert_eq!(o1, o2);
    assert_eq!(o2, o3);
    assert!(d1.allocs > 0, "workload must allocate");
    assert!(d1.bytes > 0, "workload must allocate bytes");
    assert_eq!(d1, d2, "alloc counts must repeat exactly");
    assert_eq!(d2, d3, "alloc counts must repeat exactly");
}

#[test]
fn global_ledger_moves_and_peak_tracks_live() {
    proxbal_profile::enable_counting();
    let before = AllocSnapshot::global();
    let big = vec![0u8; 1 << 20];
    let after = AllocSnapshot::global();
    assert!(after.since(before).bytes >= (1 << 20));
    assert!(proxbal_profile::alloc::peak_live_bytes() >= (1 << 20));
    drop(big);
}
