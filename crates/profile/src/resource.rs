//! Process resource probes: CPU time and resident-set size.
//!
//! All probes are Linux `/proc` readers and return `None` elsewhere (or
//! when the files are unreadable); callers treat every value here as
//! volatile — these numbers never feed a deterministic artifact.

use std::time::Duration;

/// CPU time (user + system) consumed by this process so far.
#[cfg(target_os = "linux")]
pub fn cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is whitespace-delimited: state is field 3, utime/stime are
    // fields 14/15, i.e. indices 11/12 after the paren.
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut it = rest.split_whitespace();
    let utime: u64 = it.nth(11)?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    // /proc's clock-tick unit is fixed at USER_HZ = 100 on Linux.
    Some(Duration::from_millis((utime + stime) * 10))
}

#[cfg(not(target_os = "linux"))]
pub fn cpu_time() -> Option<Duration> {
    None
}

#[cfg(target_os = "linux")]
fn status_kb(key: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(key))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// Peak resident-set size of this process in bytes (Linux `VmHWM`).
#[cfg(target_os = "linux")]
pub fn peak_rss_bytes() -> Option<u64> {
    status_kb("VmHWM:")
}

#[cfg(not(target_os = "linux"))]
pub fn peak_rss_bytes() -> Option<u64> {
    None
}

/// Current resident-set size of this process in bytes (Linux `VmRSS`).
#[cfg(target_os = "linux")]
pub fn current_rss_bytes() -> Option<u64> {
    status_kb("VmRSS:")
}

#[cfg(not(target_os = "linux"))]
pub fn current_rss_bytes() -> Option<u64> {
    None
}
