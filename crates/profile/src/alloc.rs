//! Opt-in counting wrapper around the system allocator.
//!
//! Binaries that want allocation accounting install [`CountingAlloc`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: proxbal_profile::CountingAlloc = proxbal_profile::CountingAlloc;
//! ```
//!
//! Until [`enable_counting`] is called the wrapper costs one relaxed atomic
//! load per allocator call and records nothing, so linking it in perturbs
//! no output. Once enabled it maintains two ledgers:
//!
//! * process-global totals (allocation count, bytes, live bytes and the
//!   live-bytes peak) — what a run reports as its memory footprint;
//! * per-thread allocation count/bytes — what the determinism tests use,
//!   because a single-threaded workload's own allocations are exactly
//!   reproducible even while unrelated threads (e.g. a parallel test
//!   harness) allocate concurrently.
//!
//! Counts are deterministic for a fixed (workload, thread count); live and
//! peak bytes depend on free timing across threads and are volatile-ish —
//! they go only into volatile artifacts and schema-gated BENCH fields.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};

/// Counting `#[global_allocator]` wrapper over [`System`].
pub struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
// Live bytes may dip below zero when memory allocated before counting was
// enabled is freed afterwards; the peak only ever grows from additions, so
// a signed ledger with a clamped read is exactly right.
static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Turn counting on for the rest of the process. Idempotent.
pub fn enable_counting() {
    ENABLED.store(true, Relaxed);
}

/// Whether [`enable_counting`] has been called.
pub fn counting_enabled() -> bool {
    ENABLED.load(Relaxed)
}

#[inline]
fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size as u64, Relaxed);
    let live = LIVE.fetch_add(size as i64, Relaxed) + size as i64;
    PEAK.fetch_max(live, Relaxed);
    // `try_with`: the allocator may be called while this thread's TLS is
    // being torn down; dropping the count beats aborting the process.
    let _ = T_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = T_BYTES.try_with(|c| c.set(c.get().wrapping_add(size as u64)));
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as i64, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Relaxed) {
            on_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ENABLED.load(Relaxed) {
            on_alloc(new_size);
            on_dealloc(layout.size());
        }
        p
    }
}

/// A point-in-time reading of an allocation ledger; subtract two to get a
/// phase delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Process-global totals since counting was enabled.
    pub fn global() -> Self {
        AllocSnapshot {
            allocs: ALLOCS.load(Relaxed),
            bytes: BYTES.load(Relaxed),
        }
    }

    /// This thread's totals since counting was enabled.
    pub fn current_thread() -> Self {
        AllocSnapshot {
            allocs: T_ALLOCS.try_with(Cell::get).unwrap_or(0),
            bytes: T_BYTES.try_with(Cell::get).unwrap_or(0),
        }
    }

    /// The delta from `earlier` to `self`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Currently live counted bytes (allocated minus freed since enable; may
/// read 0 when frees of pre-enable memory outweigh counted allocations).
pub fn live_bytes() -> u64 {
    LIVE.load(Relaxed).max(0) as u64
}

/// High-water mark of [`live_bytes`] — the counted-allocation peak.
pub fn peak_live_bytes() -> u64 {
    PEAK.load(Relaxed).max(0) as u64
}
