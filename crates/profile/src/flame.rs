//! Fold a span hierarchy into flamegraph artifacts: inferno
//! collapsed-stack text and speedscope JSON.
//!
//! Input is a borrowed view — `(track name, ts-ordered spans)` — so any
//! producer (in practice `proxbal-trace`'s `Trace::tracks()`) can feed it
//! without this crate depending on the producer. Track names split on `/`
//! into stack frames, so sibling tracks like `figure_7/graph0/aware` and
//! `figure_7/graph1/aware` merge under a shared `figure_7` frame; the
//! enclosing-span chain within a track extends the stack below that.
//!
//! Span nesting is reconstructed from intervals: spans arrive in recorded
//! (start-time) order per track, and a span is a child of the deepest
//! still-open span whose end lies after its start. Each span contributes
//! its *self* weight (duration minus direct children's durations) to its
//! stack. Weighted by virtual time the output is a pure function of the
//! trace, hence byte-identical at any thread count; the wall-weighted
//! variant lives on `ProfileReport` and is volatile.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Borrowed view of one span: name, start tick, duration in ticks.
#[derive(Clone, Copy, Debug)]
pub struct SpanView<'a> {
    pub name: &'a str,
    pub ts: u64,
    pub dur: u64,
}

/// Aggregated, deterministically ordered folded stacks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Folded {
    /// `stack -> total self weight`, stacks as `;`-joined frame paths.
    /// BTreeMap iteration order doubles as the output line order.
    stacks: BTreeMap<String, u64>,
}

fn frame(name: &str) -> String {
    // `;` separates frames and the trailing space separates the weight in
    // the collapsed format; keep frame names free of the former.
    name.replace(';', ",")
}

struct OpenSpan {
    name: String,
    end: u64,
    dur: u64,
    child_dur: u64,
}

fn close_top(stacks: &mut BTreeMap<String, u64>, base: &[String], open: &mut Vec<OpenSpan>) {
    let top = open.pop().expect("close_top on empty span stack");
    let self_w = top.dur.saturating_sub(top.child_dur);
    if self_w > 0 {
        let mut path = base.to_vec();
        path.extend(open.iter().map(|o| o.name.clone()));
        path.push(top.name);
        *stacks.entry(path.join(";")).or_insert(0) += self_w;
    }
}

/// Fold `(track, spans)` pairs into aggregated stacks. Spans must be in
/// start-time order within each track (the `proxbal-trace` contract).
pub fn fold<'a>(tracks: impl IntoIterator<Item = (&'a str, Vec<SpanView<'a>>)>) -> Folded {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for (track, spans) in tracks {
        let base: Vec<String> = track
            .split('/')
            .filter(|s| !s.is_empty())
            .map(frame)
            .collect();
        let mut open: Vec<OpenSpan> = Vec::new();
        for s in spans {
            // A span starting at or after the top's end is a sibling (or
            // uncle), not a child: close finished spans first.
            while open.last().map(|o| s.ts >= o.end).unwrap_or(false) {
                close_top(&mut stacks, &base, &mut open);
            }
            if let Some(parent) = open.last_mut() {
                parent.child_dur += s.dur;
            }
            open.push(OpenSpan {
                name: frame(s.name),
                end: s.ts.saturating_add(s.dur),
                dur: s.dur,
                child_dur: 0,
            });
        }
        while !open.is_empty() {
            close_top(&mut stacks, &base, &mut open);
        }
    }
    Folded { stacks }
}

impl Folded {
    /// Total number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack carried any self weight.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Sum of all self weights (== sum of root span durations).
    pub fn total_weight(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Inferno collapsed-stack text: one `frame;frame;frame weight` line
    /// per stack, in lexicographic stack order.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, w) in &self.stacks {
            let _ = writeln!(out, "{stack} {w}");
        }
        out
    }

    /// Speedscope JSON (`"sampled"` profile: one sample per stack).
    pub fn to_speedscope(&self, name: &str) -> String {
        // Frames are interned in order of first appearance over the
        // lexicographically ordered stacks — deterministic.
        let mut frame_ids: BTreeMap<&str, usize> = BTreeMap::new();
        let mut frames: Vec<&str> = Vec::new();
        let mut samples: Vec<Vec<usize>> = Vec::new();
        for stack in self.stacks.keys() {
            let mut sample = Vec::new();
            for fr in stack.split(';') {
                let id = *frame_ids.entry(fr).or_insert_with(|| {
                    frames.push(fr);
                    frames.len() - 1
                });
                sample.push(id);
            }
            samples.push(sample);
        }
        let mut out = String::new();
        out.push_str("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",");
        out.push_str("\"shared\":{\"frames\":[");
        for (i, fr) in frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, fr);
            out.push('}');
        }
        out.push_str("]},\"profiles\":[{\"type\":\"sampled\",\"name\":");
        push_json_str(&mut out, name);
        let _ = write!(
            out,
            ",\"unit\":\"none\",\"startValue\":0,\"endValue\":{},\"samples\":[",
            self.total_weight()
        );
        for (i, sample) in samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, id) in sample.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            out.push(']');
        }
        out.push_str("],\"weights\":[");
        for (i, w) in self.stacks.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{w}");
        }
        out.push_str("]}],\"name\":");
        push_json_str(&mut out, name);
        out.push_str(",\"exporter\":\"proxbal-profile\",\"activeProfileIndex\":0}\n");
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Folded {
        // Track "fig/graph0": root [0,100) with children [10,40) and
        // [40,90); the second child has its own child [50,60).
        let spans = vec![
            SpanView {
                name: "round",
                ts: 0,
                dur: 100,
            },
            SpanView {
                name: "lbi",
                ts: 10,
                dur: 30,
            },
            SpanView {
                name: "vsa",
                ts: 40,
                dur: 50,
            },
            SpanView {
                name: "hop",
                ts: 50,
                dur: 10,
            },
        ];
        fold([("fig/graph0", spans)])
    }

    #[test]
    fn nesting_and_self_weights() {
        let s = sample().to_collapsed();
        assert_eq!(
            s,
            "fig;graph0;round 20\n\
             fig;graph0;round;lbi 30\n\
             fig;graph0;round;vsa 40\n\
             fig;graph0;round;vsa;hop 10\n"
        );
    }

    #[test]
    fn sibling_at_exact_end_is_not_nested() {
        let spans = vec![
            SpanView {
                name: "a",
                ts: 0,
                dur: 10,
            },
            SpanView {
                name: "b",
                ts: 10,
                dur: 5,
            },
        ];
        let s = fold([("t", spans)]).to_collapsed();
        assert_eq!(s, "t;a 10\nt;b 5\n");
    }

    #[test]
    fn tracks_merge_and_weights_aggregate() {
        let f = fold([
            (
                "x/a",
                vec![SpanView {
                    name: "s",
                    ts: 0,
                    dur: 7,
                }],
            ),
            (
                "x/a",
                vec![SpanView {
                    name: "s",
                    ts: 9,
                    dur: 3,
                }],
            ),
            (
                "x/b",
                vec![SpanView {
                    name: "s",
                    ts: 0,
                    dur: 2,
                }],
            ),
        ]);
        assert_eq!(f.to_collapsed(), "x;a;s 10\nx;b;s 2\n");
        assert_eq!(f.total_weight(), 12);
    }

    #[test]
    fn zero_self_weight_spans_are_dropped() {
        let spans = vec![
            SpanView {
                name: "outer",
                ts: 0,
                dur: 10,
            },
            SpanView {
                name: "inner",
                ts: 0,
                dur: 10,
            },
        ];
        let s = fold([("t", spans)]).to_collapsed();
        assert_eq!(s, "t;outer;inner 10\n");
    }

    #[test]
    fn speedscope_shape() {
        let out = sample().to_speedscope("test");
        assert!(
            out.starts_with("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\"")
        );
        assert!(out.contains("\"frames\":[{\"name\":\"fig\"},{\"name\":\"graph0\"},{\"name\":\"round\"},{\"name\":\"lbi\"},{\"name\":\"vsa\"},{\"name\":\"hop\"}]"));
        assert!(out.contains("\"samples\":[[0,1,2],[0,1,2,3],[0,1,2,4],[0,1,2,4,5]]"));
        assert!(out.contains("\"weights\":[20,30,40,10]"));
        assert!(out.contains("\"endValue\":100"));
        assert!(out.ends_with("}\n"));
    }

    #[test]
    fn fold_is_reproducible() {
        assert_eq!(sample(), sample());
        assert_eq!(sample().to_speedscope("x"), sample().to_speedscope("x"));
    }

    #[test]
    fn frame_separator_is_sanitized() {
        let spans = vec![SpanView {
            name: "a;b",
            ts: 0,
            dur: 1,
        }];
        assert_eq!(fold([("t", spans)]).to_collapsed(), "t;a,b 1\n");
    }
}
