//! Process-global phase tree: wall/CPU clocks and allocation deltas,
//! scoped by guards that nest like trace spans.
//!
//! ```ignore
//! proxbal_profile::enable_profiler();
//! {
//!     let _outer = proxbal_profile::phase("xl2");
//!     let _inner = proxbal_profile::phase("prepare");
//!     // ... work ...
//! } // guards record on drop
//! let report = proxbal_profile::report();
//! ```
//!
//! The tree is global (no handle to thread through every signature) and
//! guards are free when the profiler is disabled, so instrumentation can
//! live anywhere in the workspace without perturbing un-profiled runs.
//! Nesting is per thread: a phase opened on a worker thread roots its own
//! subtree there. Re-entering a (parent, name) pair merges into one node
//! and bumps its call count, so per-item phases stay compact.
//!
//! Everything recorded here is volatile (wall, CPU, global alloc deltas
//! shared across threads) — the report and its wall-weighted flamegraph
//! must never be byte-compared across runs.

use crate::alloc::AllocSnapshot;
use crate::resource::cpu_time;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NODES: Mutex<Vec<Node>> = Mutex::new(Vec::new());

struct Node {
    name: String,
    parent: Option<usize>,
    calls: u64,
    wall: Duration,
    cpu: Duration,
    allocs: u64,
    alloc_bytes: u64,
}

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Turn the profiler on for the rest of the process. Idempotent.
pub fn enable() {
    ENABLED.store(true, Relaxed);
}

/// Whether [`enable`] has been called.
pub fn profiler_enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Open a profiling phase; it closes (and records) when the guard drops.
pub fn phase(name: &str) -> PhaseGuard {
    if !ENABLED.load(Relaxed) {
        return PhaseGuard {
            idx: None,
            start_wall: None,
            start_cpu: None,
            start_alloc: AllocSnapshot::default(),
        };
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    let idx = {
        let mut nodes = NODES.lock().unwrap();
        match nodes
            .iter()
            .position(|n| n.parent == parent && n.name == name)
        {
            Some(i) => i,
            None => {
                nodes.push(Node {
                    name: name.to_string(),
                    parent,
                    calls: 0,
                    wall: Duration::ZERO,
                    cpu: Duration::ZERO,
                    allocs: 0,
                    alloc_bytes: 0,
                });
                nodes.len() - 1
            }
        }
    };
    STACK.with(|s| s.borrow_mut().push(idx));
    PhaseGuard {
        idx: Some(idx),
        start_wall: Some(Instant::now()),
        start_cpu: cpu_time(),
        start_alloc: AllocSnapshot::global(),
    }
}

/// Open guard for one phase; records wall/CPU/alloc deltas on drop.
pub struct PhaseGuard {
    idx: Option<usize>,
    start_wall: Option<Instant>,
    start_cpu: Option<Duration>,
    start_alloc: AllocSnapshot,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        let wall = self.start_wall.map(|t| t.elapsed()).unwrap_or_default();
        let cpu = match (self.start_cpu, cpu_time()) {
            (Some(a), Some(b)) => b.saturating_sub(a),
            _ => Duration::ZERO,
        };
        let alloc = AllocSnapshot::global().since(self.start_alloc);
        {
            let mut nodes = NODES.lock().unwrap();
            let n = &mut nodes[idx];
            n.calls += 1;
            n.wall += wall;
            n.cpu += cpu;
            n.allocs = n.allocs.wrapping_add(alloc.allocs);
            n.alloc_bytes = n.alloc_bytes.wrapping_add(alloc.bytes);
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order; tolerate skips.
            if let Some(pos) = stack.iter().rposition(|&i| i == idx) {
                stack.truncate(pos);
            }
        });
    }
}

/// One phase in a [`ProfileReport`], preorder with its tree depth.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    pub depth: usize,
    pub name: String,
    pub calls: u64,
    pub wall: Duration,
    pub cpu: Duration,
    pub allocs: u64,
    pub alloc_bytes: u64,
}

/// Snapshot of the phase tree (preorder; children in creation order).
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    pub rows: Vec<PhaseRow>,
}

/// Snapshot the phase tree recorded so far.
pub fn report() -> ProfileReport {
    let nodes = NODES.lock().unwrap();
    let mut rows = Vec::new();
    fn walk(nodes: &[Node], parent: Option<usize>, depth: usize, rows: &mut Vec<PhaseRow>) {
        for (i, n) in nodes.iter().enumerate() {
            if n.parent == parent {
                rows.push(PhaseRow {
                    depth,
                    name: n.name.clone(),
                    calls: n.calls,
                    wall: n.wall,
                    cpu: n.cpu,
                    allocs: n.allocs,
                    alloc_bytes: n.alloc_bytes,
                });
                walk(nodes, Some(i), depth + 1, rows);
            }
        }
    }
    walk(&nodes, None, 0, &mut rows);
    ProfileReport { rows }
}

impl ProfileReport {
    /// Human-readable phase table (volatile: walls, CPU, alloc deltas).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>6} {:>10} {:>10} {:>12} {:>12}",
            "phase", "calls", "wall", "cpu", "allocs", "alloc bytes"
        );
        for r in &self.rows {
            let name = format!("{}{}", "  ".repeat(r.depth), r.name);
            let _ = writeln!(
                out,
                "{:<40} {:>6} {:>9.3}s {:>9.3}s {:>12} {:>12}",
                name,
                r.calls,
                r.wall.as_secs_f64(),
                r.cpu.as_secs_f64(),
                r.allocs,
                r.alloc_bytes
            );
        }
        out
    }

    /// Collapsed-stack lines weighted by *wall-clock* self time in
    /// microseconds — the explicitly volatile flamegraph variant.
    pub fn to_folded_wall(&self) -> String {
        // Pass 1: sum each row's direct children's wall time.
        let mut child_wall = vec![Duration::ZERO; self.rows.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, r) in self.rows.iter().enumerate() {
            stack.truncate(r.depth);
            if let Some(&p) = stack.last() {
                child_wall[p] += r.wall;
            }
            stack.push(i);
        }
        // Pass 2: emit one line per row with positive self time.
        let mut out = String::new();
        let mut path: Vec<String> = Vec::new();
        for (i, r) in self.rows.iter().enumerate() {
            path.truncate(r.depth);
            path.push(r.name.replace(';', ":"));
            let self_us = r.wall.saturating_sub(child_wall[i]).as_micros();
            if self_us > 0 {
                out.push_str(&path.join(";"));
                out.push(' ');
                out.push_str(&self_us.to_string());
                out.push('\n');
            }
        }
        out
    }
}
