//! Live progress telemetry: heartbeat lines while a long run is in flight.
//!
//! Producers (the engine epoch loop, xl/xl2 preparation, the fault sweep)
//! compose the domain half of a line — `engine: epoch 12/200 heavy=17` —
//! and hand it to a [`ProgressSink`]. The stderr sink appends the
//! resource half (current RSS, allocation delta since the last line) and
//! rate-limits high-frequency callers. Everything goes to stderr so
//! stdout's byte-identity contract is untouched, and the null sink makes
//! un-instrumented runs literally free.

use crate::alloc::AllocSnapshot;
use crate::resource::current_rss_bytes;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Receiver for heartbeat lines. Implementations must be `Sync`: the
/// fault sweep reports from parallel workers.
pub trait ProgressSink: Sync {
    /// Rate-limited heartbeat — may be dropped by the sink.
    fn event(&self, msg: &str);

    /// Unconditional milestone line (phase boundaries, final states).
    fn always(&self, msg: &str);
}

/// Discards everything; the default for non-interactive runs.
pub struct NullSink;

impl ProgressSink for NullSink {
    fn event(&self, _msg: &str) {}
    fn always(&self, _msg: &str) {}
}

/// Writes heartbeat lines to stderr, at most one per `min_interval` for
/// [`ProgressSink::event`] calls, decorated with RSS and alloc deltas.
pub struct StderrSink {
    min_interval: Duration,
    state: Mutex<SinkState>,
}

struct SinkState {
    last_emit: Option<Instant>,
    last_allocs: u64,
}

impl Default for StderrSink {
    fn default() -> Self {
        StderrSink::new(Duration::from_millis(500))
    }
}

impl StderrSink {
    pub fn new(min_interval: Duration) -> Self {
        StderrSink {
            min_interval,
            state: Mutex::new(SinkState {
                last_emit: None,
                last_allocs: 0,
            }),
        }
    }

    fn emit(&self, msg: &str, state: &mut SinkState) {
        let allocs = AllocSnapshot::global().allocs;
        let delta = allocs.wrapping_sub(state.last_allocs);
        state.last_allocs = allocs;
        state.last_emit = Some(Instant::now());
        let rss = current_rss_bytes()
            .map(fmt_bytes)
            .unwrap_or_else(|| "?".to_string());
        eprintln!("progress: {msg} | rss {rss} | +{delta} allocs");
    }
}

impl ProgressSink for StderrSink {
    fn event(&self, msg: &str) {
        let mut state = self.state.lock().unwrap();
        let due = state
            .last_emit
            .map(|t| t.elapsed() >= self.min_interval)
            .unwrap_or(true);
        if due {
            self.emit(msg, &mut state);
        }
    }

    fn always(&self, msg: &str) {
        let mut state = self.state.lock().unwrap();
        self.emit(msg, &mut state);
    }
}

/// `1532341` → `"1.5 MiB"`; human-readable byte counts for heartbeats.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{:.1} {}", v, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_picks_sensible_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(999), "999 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(1_572_864), "1.5 MiB");
        assert_eq!(fmt_bytes(1_675_669_504), "1.6 GiB");
    }

    #[test]
    fn null_sink_accepts_everything() {
        NullSink.event("x");
        NullSink.always("y");
    }

    #[test]
    fn stderr_sink_rate_limits_events() {
        // Smoke only: both paths execute without panicking; the second
        // `event` within the interval is dropped (observable only as "no
        // crash" here — output goes to stderr).
        let sink = StderrSink::new(Duration::from_secs(3600));
        sink.event("first");
        sink.event("suppressed");
        sink.always("forced");
    }
}
