//! Run-health profiling for `proxbal`: where did the wall time, CPU and
//! memory of a run actually go, and is the run still alive?
//!
//! Four small, independent pieces:
//!
//! * [`alloc`] — an opt-in counting wrapper around the system allocator.
//!   Binaries install [`CountingAlloc`] as their `#[global_allocator]`;
//!   counting stays off (one relaxed atomic load per call) until
//!   [`enable_counting`] flips it on at runtime.
//! * [`profiler`] — a process-global phase tree. [`phase`] returns a guard;
//!   guards nest like trace spans and record wall time, CPU time and
//!   allocation deltas on drop. Disabled guards are no-ops.
//! * [`flame`] — folds a span hierarchy (borrowed as [`flame::SpanView`]s,
//!   e.g. from `proxbal-trace` tracks) into inferno collapsed-stack text
//!   and speedscope JSON.
//! * [`progress`] — a [`ProgressSink`] trait plus stderr/null impls for
//!   periodic heartbeat lines while a long run is in flight.
//!
//! Determinism contract (mirrors `RoundWalls` from `proxbal-core`): span
//! *structure* and allocation *counts* are deterministic for a fixed
//! workload (counts additionally fix the thread count — parallel workers
//! allocate scratch); wall clocks, CPU time and RSS are volatile and must
//! never feed a deterministic artifact. The virtual-time flamegraph is
//! deterministic because it is a pure function of the trace; the
//! wall-weighted variant is explicitly volatile.

pub mod alloc;
pub mod flame;
pub mod profiler;
pub mod progress;
pub mod resource;

pub use alloc::{counting_enabled, enable_counting, AllocSnapshot, CountingAlloc};
pub use profiler::{enable as enable_profiler, phase, profiler_enabled, report, ProfileReport};
pub use progress::{fmt_bytes, NullSink, ProgressSink, StderrSink};
pub use resource::{cpu_time, current_rss_bytes, peak_rss_bytes};
