//! Exporters: newline-JSON event log and chrome://tracing `trace.json`.
//!
//! Both are rendered with a small hand-rolled JSON writer (the workspace is
//! offline; no serde needed here) and contain nothing but virtual-time data,
//! so the bytes are identical for a given `(seed, fault plan)` regardless of
//! thread count.

use crate::{ArgValue, EventKind, Trace};
use std::fmt::Write as _;
use std::io;

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `Display` for f64 is the shortest round-trip decimal form —
        // deterministic across platforms and rustc versions we target.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => push_f64(out, *x),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ArgValue::Str(s) => push_json_str(out, s),
    }
}

fn push_args_object(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_arg_value(out, v);
    }
    out.push('}');
}

impl Trace {
    /// Newline-delimited JSON event log: one meta line, then one line per
    /// event, counter and histogram, in deterministic order.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"format\":\"proxbal-trace\",\"version\":1,\"tracks\":{},\"events\":{}}}",
            self.tracks().count(),
            self.event_count()
        );
        for (track, events) in self.tracks() {
            for ev in events {
                out.push_str("{\"type\":");
                match ev.kind {
                    EventKind::Span => out.push_str("\"span\""),
                    EventKind::Instant => out.push_str("\"instant\""),
                }
                out.push_str(",\"track\":");
                push_json_str(&mut out, track);
                out.push_str(",\"name\":");
                push_json_str(&mut out, &ev.name);
                let _ = write!(out, ",\"ts\":{}", ev.ts);
                if ev.kind == EventKind::Span {
                    let _ = write!(out, ",\"dur\":{}", ev.dur);
                }
                if !ev.args.is_empty() {
                    out.push_str(",\"args\":");
                    push_args_object(&mut out, &ev.args);
                }
                out.push_str("}\n");
            }
        }
        for (name, v) in self.counters() {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            let _ = writeln!(out, ",\"value\":{v}}}");
        }
        for (name, v) in self.fcounters() {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_json_str(&mut out, name);
            out.push_str(",\"value\":");
            push_f64(&mut out, v);
            out.push_str("}\n");
        }
        for (name, h) in self.histograms() {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_json_str(&mut out, name);
            let _ = write!(
                out,
                ",\"count\":{},\"min\":{},\"max\":{},\"weight\":",
                h.count(),
                h.min(),
                h.max()
            );
            push_f64(&mut out, h.weight());
            out.push_str(",\"mean\":");
            push_f64(&mut out, h.mean());
            out.push_str(",\"buckets\":[");
            for (i, (lo, w)) in h.buckets().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{lo},");
                push_f64(&mut out, w);
                out.push(']');
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Chrome trace-event JSON (load via chrome://tracing or Perfetto).
    ///
    /// Tracks map to thread lanes (`tid` = 1-based track index); spans are
    /// "X" complete events and instants are "i" events, all in microsecond
    /// units of *virtual* time. Counters and histogram summaries ride in
    /// `otherData`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"traceEvents\":[\n");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"proxbal (virtual time)\"}}",
        );
        for (tid, (track, events)) in self.tracks().enumerate() {
            let tid = tid + 1;
            out.push_str(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
            let _ = write!(out, "{tid}");
            out.push_str(",\"args\":{\"name\":");
            push_json_str(&mut out, track);
            out.push_str("}}");
            for ev in events {
                out.push_str(",\n{\"name\":");
                push_json_str(&mut out, &ev.name);
                match ev.kind {
                    EventKind::Span => {
                        let _ = write!(
                            out,
                            ",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{}",
                            ev.ts, ev.dur
                        );
                    }
                    EventKind::Instant => {
                        let _ = write!(
                            out,
                            ",\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\"",
                            ev.ts
                        );
                    }
                }
                out.push_str(",\"args\":");
                push_args_object(&mut out, &ev.args);
                out.push('}');
            }
        }
        out.push_str("\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"counters\":{");
        let mut first = true;
        for (name, v) in self.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_str(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        for (name, v) in self.fcounters() {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_str(&mut out, name);
            out.push(':');
            push_f64(&mut out, v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count(),
                h.min(),
                h.max()
            );
            push_f64(&mut out, h.mean());
            out.push('}');
        }
        out.push_str("}}}\n");
        out
    }

    /// Write the NDJSON event log to `w`.
    pub fn write_ndjson<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_ndjson().as_bytes())
    }

    /// Write the chrome trace JSON to `w`.
    pub fn write_chrome_json<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_chrome_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::enabled("fig");
        t.span_args(
            "phase/lbi",
            0,
            11,
            &[
                ("messages", ArgValue::U64(63)),
                ("loss", ArgValue::F64(0.05)),
            ],
        );
        t.instant_args("quote\"me", 4, &[("why", ArgValue::Str("a\\b\n".into()))]);
        t.count("lbi_messages", 63);
        t.count_f64("moved_load", 2.5);
        t.record_weighted("vst_load_per_hop", 3, 1.5);
        t.record("vst_load_per_hop", 0);
        t
    }

    #[test]
    fn ndjson_shape_and_escaping() {
        let s = sample().to_ndjson();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 2 + 1);
        assert!(lines[0].contains("\"format\":\"proxbal-trace\""));
        assert!(lines[1].contains("\"dur\":11"));
        assert!(lines[2].contains("quote\\\"me"));
        assert!(lines[2].contains("a\\\\b\\n"));
        assert!(s.contains("{\"type\":\"counter\",\"name\":\"lbi_messages\",\"value\":63}"));
        assert!(s.contains("\"value\":2.5"));
        assert!(s.contains("\"buckets\":[[0,1],[2,1.5]]"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_json_has_metadata_and_events() {
        let s = sample().to_chrome_json();
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"thread_name\""));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"counters\":{\"lbi_messages\":63,\"moved_load\":2.5}"));
    }

    #[test]
    fn export_is_reproducible() {
        assert_eq!(sample().to_ndjson(), sample().to_ndjson());
        assert_eq!(sample().to_chrome_json(), sample().to_chrome_json());
    }

    #[test]
    fn nonfinite_floats_render_as_null() {
        let mut t = Trace::enabled("x");
        t.count_f64("bad", f64::NAN);
        assert!(t.to_ndjson().contains("\"value\":null"));
    }
}
