//! Reader for the NDJSON event log written by [`Trace::to_ndjson`].
//!
//! The exporter renders a closed set of line shapes (`meta`, `span`,
//! `instant`, `counter`, `histogram`), so this module carries its own small
//! JSON parser instead of pulling a dependency into the otherwise zero-dep
//! trace crate. Everything the exporter writes parses back losslessly, with
//! one documented exception: JSON cannot distinguish the *type* of an
//! integral number, so an `ArgValue::F64(2.0)` argument (exported as `2`)
//! parses back as `ArgValue::U64(2)`, and an integral `f64` counter joins
//! the integer counters. Numeric values are always preserved exactly —
//! floats round-trip through the shortest-decimal form `Display` emits.
//!
//! The analyze layer consumes [`ParsedTrace`] as its columnar event source;
//! `crates/trace/tests/ndjson_roundtrip.rs` pins the export → parse →
//! identical-event-stream contract.

use crate::{ArgValue, EventKind, Histogram, Trace, VirtualTime};

/// One span or instant read back from an event log, with its track name
/// denormalized onto the event (the log groups events by track already).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedEvent {
    /// Track the event was recorded on (e.g. `repro/epoch7`).
    pub track: String,
    /// Event name (e.g. `round/lbi`, `kt/repair`).
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Virtual-time stamp.
    pub ts: VirtualTime,
    /// Span duration (always 0 for instants).
    pub dur: VirtualTime,
    /// Event arguments in recorded order, keys owned.
    pub args: Vec<(String, ArgValue)>,
}

/// One histogram row read back from an event log.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedHistogram {
    /// Histogram name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Total observation weight.
    pub weight: f64,
    /// Weighted mean value.
    pub mean: f64,
    /// `(bucket lower bound, weight)` pairs in ascending bound order.
    pub buckets: Vec<(u64, f64)>,
}

/// A fully parsed NDJSON event log: the meta line's declared totals plus
/// every event, counter and histogram in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedTrace {
    /// Track count declared by the meta line.
    pub declared_tracks: usize,
    /// Event count declared by the meta line.
    pub declared_events: usize,
    /// Spans and instants in file order (grouped by track, tracks in
    /// export order).
    pub events: Vec<ParsedEvent>,
    /// Integer counters in file (name) order.
    pub counters: Vec<(String, u64)>,
    /// Floating-point counters in file (name) order.
    pub fcounters: Vec<(String, f64)>,
    /// Histograms in file (name) order.
    pub histograms: Vec<ParsedHistogram>,
}

impl ParsedTrace {
    /// Parses an NDJSON event log (the exact format [`Trace::to_ndjson`]
    /// writes). Fails with the 1-based line number of the first offending
    /// line.
    pub fn parse(text: &str) -> Result<ParsedTrace, NdjsonError> {
        let mut out = ParsedTrace::default();
        let mut saw_meta = false;
        for (i, line) in text.lines().enumerate() {
            let lineno = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v = parse_json_line(line).map_err(|msg| NdjsonError { lineno, msg })?;
            let obj = v.as_obj().ok_or_else(|| NdjsonError {
                lineno,
                msg: "expected a JSON object".into(),
            })?;
            let at = |msg: String| NdjsonError { lineno, msg };
            let kind = obj
                .get_str("type")
                .ok_or_else(|| at("missing \"type\"".into()))?;
            match kind {
                "meta" => {
                    if obj.get_str("format") != Some("proxbal-trace") {
                        return Err(at("meta line is not a proxbal-trace log".into()));
                    }
                    out.declared_tracks = obj.get_u64("tracks").unwrap_or(0) as usize;
                    out.declared_events = obj.get_u64("events").unwrap_or(0) as usize;
                    saw_meta = true;
                }
                "span" | "instant" => {
                    let args = match obj.get("args") {
                        None => Vec::new(),
                        Some(Json::Obj(entries)) => entries
                            .iter()
                            .map(|(k, v)| {
                                json_to_arg(v)
                                    .map(|a| (k.clone(), a))
                                    .ok_or_else(|| at(format!("bad arg value for {k:?}")))
                            })
                            .collect::<Result<_, _>>()?,
                        Some(_) => return Err(at("\"args\" is not an object".into())),
                    };
                    out.events.push(ParsedEvent {
                        track: obj
                            .get_str("track")
                            .ok_or_else(|| at("event missing \"track\"".into()))?
                            .to_owned(),
                        name: obj
                            .get_str("name")
                            .ok_or_else(|| at("event missing \"name\"".into()))?
                            .to_owned(),
                        kind: if kind == "span" {
                            EventKind::Span
                        } else {
                            EventKind::Instant
                        },
                        ts: obj
                            .get_u64("ts")
                            .ok_or_else(|| at("event missing \"ts\"".into()))?,
                        dur: obj.get_u64("dur").unwrap_or(0),
                        args,
                    });
                }
                "counter" => {
                    let name = obj
                        .get_str("name")
                        .ok_or_else(|| at("counter missing \"name\"".into()))?
                        .to_owned();
                    match obj.get("value") {
                        Some(Json::U64(v)) => out.counters.push((name, *v)),
                        Some(Json::I64(v)) => out.fcounters.push((name, *v as f64)),
                        Some(Json::F64(v)) => out.fcounters.push((name, *v)),
                        // The exporter renders non-finite f64 counters as null.
                        Some(Json::Null) => out.fcounters.push((name, f64::NAN)),
                        _ => return Err(at("counter missing numeric \"value\"".into())),
                    }
                }
                "histogram" => {
                    let buckets = match obj.get("buckets") {
                        Some(Json::Arr(items)) => items
                            .iter()
                            .map(|pair| match pair {
                                Json::Arr(kv) if kv.len() == 2 => {
                                    match (kv[0].as_u64(), kv[1].as_f64()) {
                                        (Some(lo), Some(w)) => Ok((lo, w)),
                                        _ => Err(at("bad bucket pair".into())),
                                    }
                                }
                                _ => Err(at("bad bucket pair".into())),
                            })
                            .collect::<Result<_, _>>()?,
                        _ => return Err(at("histogram missing \"buckets\"".into())),
                    };
                    out.histograms.push(ParsedHistogram {
                        name: obj
                            .get_str("name")
                            .ok_or_else(|| at("histogram missing \"name\"".into()))?
                            .to_owned(),
                        count: obj
                            .get_u64("count")
                            .ok_or_else(|| at("histogram missing \"count\"".into()))?,
                        min: obj.get_u64("min").unwrap_or(0),
                        max: obj.get_u64("max").unwrap_or(0),
                        weight: obj.get_f64("weight").unwrap_or(0.0),
                        mean: obj.get_f64("mean").unwrap_or(0.0),
                        buckets,
                    });
                }
                other => return Err(at(format!("unknown line type {other:?}"))),
            }
        }
        if !saw_meta {
            return Err(NdjsonError {
                lineno: 0,
                msg: "no meta line: not a proxbal-trace event log".into(),
            });
        }
        Ok(out)
    }

    /// Parses the NDJSON rendering of `trace` — a convenience for
    /// round-trip tests and in-process consumers.
    pub fn of(trace: &Trace) -> Result<ParsedTrace, NdjsonError> {
        ParsedTrace::parse(&trace.to_ndjson())
    }

    /// Value of an integer counter (0 when absent, matching
    /// [`Trace::counter`]).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of a floating-point counter (0.0 when absent). Integral f64
    /// counters land in [`ParsedTrace::counters`] instead — see the module
    /// docs — so check both when the producer's type is unknown.
    pub fn fcounter(&self, name: &str) -> f64 {
        self.fcounters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// A counter by name regardless of which table it parsed into, as f64.
    pub fn any_counter(&self, name: &str) -> f64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v as f64)
            .unwrap_or_else(|| self.fcounter(name))
    }

    /// Looks up a histogram row by name.
    pub fn histogram(&self, name: &str) -> Option<&ParsedHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Distinct track names in first-appearance (export) order.
    pub fn track_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for ev in &self.events {
            if names.last() != Some(&ev.track.as_str()) && !names.contains(&ev.track.as_str()) {
                names.push(&ev.track);
            }
        }
        names
    }

    /// Rebuilds a histogram from a parsed row's buckets (counts and bounds
    /// survive the power-of-two bucketing; exact observed values do not).
    pub fn rebuild_histogram(row: &ParsedHistogram) -> Histogram {
        let mut h = Histogram::default();
        for &(lo, w) in &row.buckets {
            h.observe_weighted(lo, w);
        }
        h
    }
}

/// Why an event log failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub struct NdjsonError {
    /// 1-based line number (0 when the whole file is at fault).
    pub lineno: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for NdjsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.lineno == 0 {
            write!(f, "ndjson: {}", self.msg)
        } else {
            write!(f, "ndjson line {}: {}", self.lineno, self.msg)
        }
    }
}

impl std::error::Error for NdjsonError {}

// ---- minimal JSON-line parser ---------------------------------------------

/// JSON value restricted to what the exporter emits.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&ObjView> {
        match self {
            Json::Obj(_) => Some(ObjView::of(self)),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            // The exporter writes non-finite floats as null.
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Field-lookup view over a `Json::Obj` (repr-transparent newtype so
/// `as_obj` can hand out a reference).
#[repr(transparent)]
struct ObjView(Json);

impl ObjView {
    fn of(v: &Json) -> &ObjView {
        // SAFETY: ObjView is #[repr(transparent)] over Json.
        unsafe { &*(v as *const Json as *const ObjView) }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match &self.0 {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }
}

fn json_to_arg(v: &Json) -> Option<ArgValue> {
    match v {
        Json::U64(n) => Some(ArgValue::U64(*n)),
        Json::I64(n) => Some(ArgValue::I64(*n)),
        Json::F64(x) => Some(ArgValue::F64(*x)),
        Json::Bool(b) => Some(ArgValue::Bool(*b)),
        Json::Str(s) => Some(ArgValue::Str(s.clone())),
        Json::Null => Some(ArgValue::F64(f64::NAN)),
        _ => None,
    }
}

fn parse_json_line(line: &str) -> Result<Json, String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|b| *b as char),
            pos
        )),
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let start = *pos;
        while let Some(&b) = bytes.get(*pos) {
            if b == b'"' || b == b'\\' {
                break;
            }
            *pos += 1;
        }
        out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or("short \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_trace_input() {
        assert!(ParsedTrace::parse("").is_err());
        assert!(ParsedTrace::parse("{\"type\":\"span\"}").is_err());
        let err = ParsedTrace::parse("not json at all").unwrap_err();
        assert_eq!(err.lineno, 1);
    }

    #[test]
    fn parses_meta_and_counter() {
        let text = "{\"type\":\"meta\",\"format\":\"proxbal-trace\",\"version\":1,\
                    \"tracks\":2,\"events\":3}\n\
                    {\"type\":\"counter\",\"name\":\"m\",\"value\":7}\n\
                    {\"type\":\"counter\",\"name\":\"f\",\"value\":2.5}\n";
        let p = ParsedTrace::parse(text).unwrap();
        assert_eq!(p.declared_tracks, 2);
        assert_eq!(p.declared_events, 3);
        assert_eq!(p.counter("m"), 7);
        assert_eq!(p.fcounter("f"), 2.5);
        assert_eq!(p.any_counter("m"), 7.0);
        assert_eq!(p.counter("absent"), 0);
    }

    #[test]
    fn line_numbers_in_errors() {
        let text = "{\"type\":\"meta\",\"format\":\"proxbal-trace\",\"version\":1,\
                    \"tracks\":0,\"events\":0}\n{\"type\":\"bogus\"}\n";
        let err = ParsedTrace::parse(text).unwrap_err();
        assert_eq!(err.lineno, 2);
        assert!(err.to_string().contains("bogus"));
    }
}
