//! Weighted power-of-two histogram.
//!
//! Bucket `0` holds the value `0`; bucket `i > 0` holds values in
//! `[2^(i-1), 2^i)`. Weights are `f64` and accumulate in observation /
//! merge order, which is deterministic because all recording happens on a
//! single thread per [`crate::Trace`] and merges happen in absorb order.

/// A fixed-shape histogram over `u64` values with `f64` weights.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    weight: f64,
    min: u64,
    max: u64,
    weighted_sum: f64,
    buckets: Vec<f64>,
}

pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value that lands in bucket `index`.
pub(crate) fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Record `value` with weight 1.
    pub fn observe(&mut self, value: u64) {
        self.observe_weighted(value, 1.0);
    }

    /// Record `value` carrying `weight`.
    pub fn observe_weighted(&mut self, value: u64, weight: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.weight += weight;
        self.weighted_sum += value as f64 * weight;
        let b = bucket_index(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0.0);
        }
        self.buckets[b] += weight;
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.weight += other.weight;
        self.weighted_sum += other.weighted_sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0.0);
        }
        for (i, w) in other.buckets.iter().enumerate() {
            self.buckets[i] += w;
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total weight across observations (equals `count` when unweighted).
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Smallest observed value; 0 on an empty histogram.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observed value; 0 on an empty histogram.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Weighted mean of observed values; 0.0 on an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.weight == 0.0 {
            0.0
        } else {
            self.weighted_sum / self.weight
        }
    }

    /// Weighted quantile estimate: the lower bound of the first bucket at
    /// which cumulative weight reaches `q * weight()`, clamped into
    /// `[min, max]`. `q` is clamped to `[0, 1]`; 0 on an empty histogram.
    ///
    /// Bucket resolution means the estimate is exact for values that are
    /// powers of two and otherwise a lower bound of the true quantile's
    /// bucket — deterministic, which is what the summary table needs.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.weight <= 0.0 {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * self.weight;
        let mut cum = 0.0;
        for (i, w) in self.buckets.iter().enumerate() {
            if *w == 0.0 {
                continue;
            }
            cum += w;
            if cum >= target {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower bound, weight)` in ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, w)| **w != 0.0)
            .map(|(i, w)| (bucket_lower_bound(i), *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(4), 8);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn weighted_mean_and_extremes() {
        let mut h = Histogram::default();
        h.observe_weighted(10, 1.0);
        h.observe_weighted(20, 3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 20);
        assert!((h.mean() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn merge_empty_and_nonempty() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        b.observe(5);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 5);
        let empty = Histogram::default();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        assert_eq!(a.max(), 5);
    }

    #[test]
    fn quantiles_walk_cumulative_bucket_weight() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Buckets are power-of-two: p50 of 1..=100 lands in [32,64) → 32,
        // p90/p99 land in [64,128) → 64 (clamped to max 100 if beyond).
        assert_eq!(h.quantile(0.5), 32);
        assert_eq!(h.quantile(0.9), 64);
        assert_eq!(h.quantile(0.99), 64);
        assert_eq!(h.quantile(1.0), 64);
        assert_eq!(h.quantile(0.0), 1, "q=0 clamps to the observed min");
        // Weighted: nearly all weight on one value pins every quantile.
        let mut w = Histogram::default();
        w.observe_weighted(3, 0.01);
        w.observe_weighted(40, 99.0);
        assert_eq!(w.quantile(0.5), 32);
        assert_eq!(w.quantile(0.99), 32);
        // Empty histogram is safe.
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut whole = Histogram::default();
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for v in [0u64, 1, 3, 9, 200, 4096] {
            whole.observe_weighted(v, 0.5 + v as f64);
            if v < 9 {
                left.observe_weighted(v, 0.5 + v as f64);
            } else {
                right.observe_weighted(v, 0.5 + v as f64);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }
}
