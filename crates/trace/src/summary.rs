//! End-of-run summary table: per-span-name virtual-time totals plus counter
//! and histogram roll-ups, aggregated across every track of a [`Trace`].

use crate::{EventKind, Histogram, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate of all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTotal {
    pub name: String,
    pub spans: u64,
    /// Sum of span durations, in virtual-time units.
    pub virtual_time: u64,
}

/// One counter row (integer counters render without a decimal point).
#[derive(Clone, Debug, PartialEq)]
pub enum CounterTotal {
    Int(String, u64),
    Float(String, f64),
}

/// One histogram row.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramRow {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub max: u64,
}

/// A renderable roll-up of a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    pub spans: Vec<SpanTotal>,
    pub counters: Vec<CounterTotal>,
    pub histograms: Vec<HistogramRow>,
    pub tracks: usize,
    pub events: usize,
}

impl TraceSummary {
    pub fn of(trace: &Trace) -> Self {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (_, events) in trace.tracks() {
            for ev in events {
                if ev.kind == EventKind::Span {
                    let slot = by_name.entry(&ev.name).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += ev.dur;
                }
            }
        }
        let spans = by_name
            .into_iter()
            .map(|(name, (spans, virtual_time))| SpanTotal {
                name: name.to_owned(),
                spans,
                virtual_time,
            })
            .collect();
        let mut counters: Vec<CounterTotal> = trace
            .counters()
            .map(|(n, v)| CounterTotal::Int(n.to_owned(), v))
            .collect();
        counters.extend(
            trace
                .fcounters()
                .map(|(n, v)| CounterTotal::Float(n.to_owned(), v)),
        );
        let histograms = trace
            .histograms()
            .map(|(n, h): (&str, &Histogram)| HistogramRow {
                name: n.to_owned(),
                count: h.count(),
                mean: h.mean(),
                max: h.max(),
            })
            .collect();
        TraceSummary {
            spans,
            counters,
            histograms,
            tracks: trace.tracks().count(),
            events: trace.event_count(),
        }
    }

    /// Total virtual time attributed to spans whose name starts with `prefix`.
    pub fn virtual_time_for(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.virtual_time)
            .sum()
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── trace summary: {} events on {} tracks ──",
            self.events, self.tracks
        )?;
        if !self.spans.is_empty() {
            writeln!(f, "{:<28} {:>8} {:>14}", "span", "count", "virtual time")?;
            for s in &self.spans {
                writeln!(f, "{:<28} {:>8} {:>14}", s.name, s.spans, s.virtual_time)?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>23}", "counter", "total")?;
            for c in &self.counters {
                match c {
                    CounterTotal::Int(name, v) => writeln!(f, "{name:<28} {v:>23}")?,
                    CounterTotal::Float(name, v) => writeln!(f, "{name:<28} {v:>23.3}")?,
                }
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "{:<28} {:>8} {:>12} {:>10}",
                "histogram", "count", "mean", "max"
            )?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "{:<28} {:>8} {:>12.2} {:>10}",
                    h.name, h.count, h.mean, h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_aggregates_spans_across_tracks() {
        let mut child = Trace::enabled("c");
        child.span("phase/lbi", 0, 7);
        child.span("phase/vsa", 7, 2);
        let mut root = Trace::enabled("r");
        root.span("phase/lbi", 0, 3);
        root.instant("marker", 1);
        root.count("messages", 9);
        root.record("depth", 4);
        root.absorb(child);
        let s = TraceSummary::of(&root);
        assert_eq!(s.tracks, 2);
        assert_eq!(s.events, 4);
        let lbi = s.spans.iter().find(|x| x.name == "phase/lbi").unwrap();
        assert_eq!(lbi.spans, 2);
        assert_eq!(lbi.virtual_time, 10);
        assert_eq!(s.virtual_time_for("phase/"), 12);
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        let rendered = s.to_string();
        assert!(rendered.contains("phase/lbi"));
        assert!(rendered.contains("messages"));
    }

    #[test]
    fn empty_trace_summary_renders() {
        let s = TraceSummary::of(&Trace::disabled());
        assert_eq!(s.events, 0);
        assert!(s.to_string().contains("0 events"));
    }
}
